"""Quickstart: one federated-learning task on the SimDC platform.

Builds the paper's default deployment (200-core logical cluster, 10 local
+ 20 MSP phones), submits a two-grade CTR training task with a
benchmarking phone per grade, lets the hybrid allocation optimizer split
devices across tiers, and prints what the platform measured.

Run:  python examples/quickstart.py
"""

from repro import GradeRequirement, ResourceBundle, SimDC, TaskSpec
from repro.ml import standard_fl_flow


def main(n_devices: int = 30, rounds: int = 3, feature_dim: int = 512) -> None:
    """``n_devices`` is per grade; the defaults reproduce the full demo."""
    platform = SimDC()  # the paper's experimental environment, seeded

    task = TaskSpec(
        name="quickstart-ctr",
        grades=[
            GradeRequirement(
                grade="High",
                n_devices=n_devices,
                n_benchmark=1,          # one phone measured while training
                bundles=40,             # 40 unit bundles -> 10 concurrent actors
                n_phones=3,
                device_bundle=ResourceBundle(cpus=4, memory_gb=12),
            ),
            GradeRequirement(
                grade="Low",
                n_devices=n_devices,
                n_benchmark=1,
                bundles=60,
                n_phones=3,
                device_bundle=ResourceBundle(cpus=1, memory_gb=6),
            ),
        ],
        rounds=rounds,
        flow=standard_fl_flow(epochs=5, learning_rate=0.05),
        feature_dim=feature_dim,
        records_per_device=20,
    )

    platform.submit(task)
    platform.run_until_idle(max_time=1e7)
    result = platform.result(task.task_id)

    print(f"task {task.task_id}: {result.state.value} in {result.makespan:.0f} simulated seconds")
    allocation = result.allocation
    print(f"allocation ({allocation.solver}): T={allocation.total_time:.0f}s")
    for grade in allocation.grades:
        print(
            f"  {grade.grade}: {grade.logical} devices on the logical tier, "
            f"{grade.physical} on phones"
        )
    print("round-by-round test metrics:")
    for record in result.rounds:
        print(
            f"  round {record.round_index}: {record.n_updates} updates, "
            f"loss={record.test_loss:.4f}, accuracy={record.test_accuracy:.4f}"
        )
    samples = platform.db.query("device_samples", task_id=task.task_id)
    serials = sorted({s["serial"] for s in samples})
    print(f"benchmarking phones sampled: {serials} ({len(samples)} samples)")
    for record in result.benchmark_records[:2]:
        for summary in record.stage_summaries():
            print(
                f"  {record.serial} stage {summary.stage} ({summary.label}): "
                f"{summary.power_mah:.3f} mAh over {summary.duration_min:.2f} min"
            )


if __name__ == "__main__":
    main()
