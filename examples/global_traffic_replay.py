"""Replay a global day of device traffic against a cloud service.

Fig. 3's real-world picture: phones spread over timezones, each willing
to train only when idle and charging, produce a fleet-level upload curve
that the cloud's aggregation service must ride.  This example closes that
loop with the behaviour models:

1. draw a timezone mixture for 100k (virtual) devices;
2. compose their diurnal availability into a population traffic curve;
3. hand that curve to DeviceFlow's time-interval strategy, replaying a
   24-hour window (scaled to 24 simulated minutes) of 100k update
   messages against a sample-threshold aggregation service;
4. report the cloud-side load profile and aggregation cadence.

Run:  python examples/global_traffic_replay.py
"""

import numpy as np

from repro.behavior import DiurnalAvailability, TimezoneMixture, population_traffic_curve
from repro.cloud import AggregationService, ObjectStorage, SampleThresholdTrigger
from repro.deviceflow import DeviceFlow, Message, TimeIntervalStrategy
from repro.simkernel import RandomStreams, Simulator

N_DEVICES = 100_000
WINDOW_S = 24 * 60.0  # one simulated "day", 1 minute per hour


def main(n_devices: int = N_DEVICES, window_s: float = WINDOW_S) -> None:
    timezones = TimezoneMixture(seed=3)
    availability = DiurnalAvailability(night_peak=2.0, evening_peak=21.0)
    curve = population_traffic_curve(timezones, availability)
    print(f"population curve over UTC: {curve.name}, peak-to-trough "
          f"{curve(np.linspace(0, 24, 200)).max() / curve(np.linspace(0, 24, 200)).min():.2f}x")

    sim = Simulator()
    storage = ObjectStorage()
    service = AggregationService(
        sim,
        storage,
        SampleThresholdTrigger(threshold_samples=max(100, n_devices // 10)),
        model=None,  # counting mode: the interest here is load, not ML
        name="global-agg",
    )
    service.start()

    flow = DeviceFlow(sim, streams=RandomStreams(3), capacity_per_second=700.0)
    flow.register_task(
        "day-replay",
        TimeIntervalStrategy(curve, interval_seconds=window_s, failure_prob=0.02),
        service.receive_message,
    )
    flow.round_started("day-replay", 1)
    for i in range(n_devices):
        flow.submit(
            Message(task_id="day-replay", device_id=f"dev-{i}", round_index=1,
                    payload_ref=f"u/{i}", n_samples=1)
        )
    flow.round_completed("day-replay", 1)
    sim.run()

    stats = flow.stats("day-replay")
    print(f"devices: {stats.received}, delivered {stats.delivered}, "
          f"dropped {stats.dropped} (network failures)")
    print(f"aggregations triggered: {service.rounds_completed}")

    # Cloud-side hourly load profile (each simulated minute = one hour).
    hourly = np.zeros(24, dtype=int)
    for t, n in service.receive_log:
        hourly[min(23, int(24 * t // window_s))] += n
    peak = hourly.max()
    print("cloud load by UTC hour (each bar = received updates):")
    for hour, count in enumerate(hourly):
        bar = "#" * int(40 * count / peak) if peak else ""
        print(f"  {hour:02d}:00  {count:>7,}  {bar}")
    quiet = int(np.argmin(hourly))
    busy = int(np.argmax(hourly))
    print(f"peak hour {busy:02d}:00 carries {hourly[busy] / max(1, hourly[quiet]):.1f}x "
          f"the quiet hour {quiet:02d}:00 — the fluctuating access load §I warns about")


if __name__ == "__main__":
    main()
