"""Two recommendation teams share one SimDC deployment.

The paper's motivating domain is device-cloud recommendation (CTR
prediction).  This scenario runs a realistic platform day: a
high-priority production retraining task and a lower-priority experiment
arrive together, contend for the hybrid resource pool, and the Task
Scheduler packs them greedily by priority while the Resource Manager
freezes and releases capacity.

Things to watch in the output:

* the production task starts first and the experiment queues until
  bundles free up;
* each task gets its own hybrid allocation (the optimizer solves per-task
  instances with different grade mixes);
* per-task DeviceFlow statistics differ: production ships updates in
  batches of 50, the experiment uses lossy real-time dispatch.

Run:  python examples/recommendation_ab_campaign.py
"""

from repro import (
    GradeRequirement,
    RealTimeAccumulatedStrategy,
    ResourceBundle,
    SimDC,
    TaskSpec,
)
from repro.ml import standard_fl_flow


def production_task() -> TaskSpec:
    """The nightly CTR model refresh: large, batched, high priority."""
    return TaskSpec(
        name="prod-ctr-refresh",
        priority=10,
        grades=[
            GradeRequirement(
                grade="High", n_devices=60, bundles=32, n_phones=3,
                device_bundle=ResourceBundle(cpus=4, memory_gb=12),
            ),
            GradeRequirement(
                grade="Low", n_devices=40, bundles=30, n_phones=3,
                device_bundle=ResourceBundle(cpus=1, memory_gb=6),
            ),
        ],
        rounds=2,
        flow=standard_fl_flow(epochs=5, learning_rate=0.05),
        deviceflow_strategy=RealTimeAccumulatedStrategy([50]),
        feature_dim=512,
        records_per_device=15,
        dataset_seed=11,
    )


def experiment_task() -> TaskSpec:
    """An A/B ranking experiment: smaller, lossy uplink, low priority."""
    return TaskSpec(
        name="exp-ranker-ab",
        priority=1,
        grades=[
            GradeRequirement(
                grade="High", n_devices=40, bundles=160, n_phones=2,
                device_bundle=ResourceBundle(cpus=4, memory_gb=12),
            ),
        ],
        rounds=2,
        flow=standard_fl_flow(epochs=5, learning_rate=0.05),
        deviceflow_strategy=RealTimeAccumulatedStrategy([1], failure_prob=0.2),
        feature_dim=512,
        records_per_device=15,
        dataset_seed=29,
    )


def main() -> None:
    platform = SimDC()
    prod = production_task()
    experiment = experiment_task()
    platform.submit(prod)
    platform.submit(experiment)
    platform.run_until_idle(max_time=1e8)

    for spec in (prod, experiment):
        result = platform.result(spec.task_id)
        print(f"== {spec.name} (priority {spec.priority}) ==")
        print(
            f"  window: {result.started_at:.0f}s -> {result.finished_at:.0f}s "
            f"({result.state.value})"
        )
        print(f"  allocation: {result.allocation.x} logical, T={result.allocation.total_time:.0f}s")
        final = result.rounds[-1]
        print(
            f"  final round: {final.n_updates} updates, "
            f"test acc {final.test_accuracy:.4f}"
        )
        if result.flow_stats is not None:
            stats = result.flow_stats
            print(
                f"  deviceflow: received {stats.received}, delivered {stats.delivered}, "
                f"dropped {stats.dropped}"
            )
        print()

    prod_result = platform.result(prod.task_id)
    exp_result = platform.result(experiment.task_id)
    if exp_result.started_at >= prod_result.started_at:
        print("scheduling: production entered the cluster first, as its priority demands")
    events = platform.monitor.of_kind("task_scheduled")
    print("scheduling order:", [e.fields["task_id"] for e in events])


if __name__ == "__main__":
    main()
