"""Two recommendation teams share one SimDC deployment — as a scenario.

The paper's motivating domain is device-cloud recommendation (CTR
prediction).  This example expresses the original hand-built two-task
campaign as a *declarative scenario spec*: a high-priority production
retraining tenant and a lower-priority experiment tenant arrive together
(trace arrivals at t=0), contend for the hybrid resource pool, and the
scenario engine replays the contention and distils per-tenant KPIs.

Things to watch in the output:

* the production tenant is scheduled first (its priority wins the greedy
  pass) and the experiment's queue-wait KPI shows it waiting for bundles;
* per-tenant DeviceFlow statistics differ: production ships updates in
  batches of 50, the experiment uses lossy real-time dispatch (dropout
  shows up as `lost` updates in the report);
* the whole campaign is one serializable dict — ``spec.to_dict()`` is a
  config file away from running the same study at another scale.

Run:  python examples/recommendation_ab_campaign.py
"""

from repro.scenarios import (
    ArrivalSpec,
    DispatchSpec,
    GradeSpec,
    ScenarioSpec,
    TenantSpec,
    run_scenario,
)


def campaign_scenario(device_scale: float = 1.0, feature_dim: int = 512) -> ScenarioSpec:
    """The A/B campaign as plain data; ``device_scale`` shrinks smoke runs."""

    def n(count: int) -> int:
        return max(1, round(count * device_scale))

    return ScenarioSpec(
        name="recommendation_ab",
        description="prod CTR refresh vs. A/B ranking experiment on one deployment",
        seed=0,
        horizon_s=600.0,
        tenants=[
            TenantSpec(
                name="prod-ctr-refresh",
                priority=10,
                rounds=2,
                numeric=True,
                feature_dim=feature_dim,
                records_per_device=15,
                flow_epochs=5,
                flow_learning_rate=0.05,
                grades=[
                    GradeSpec(
                        grade="High", n_devices=n(60), bundles=32, n_phones=3,
                        device_cpus=4, device_memory_gb=12,
                    ),
                    GradeSpec(
                        grade="Low", n_devices=n(40), bundles=30, n_phones=3,
                        device_cpus=1, device_memory_gb=6,
                    ),
                ],
                arrival=ArrivalSpec(kind="trace", times=[0.0]),
                dispatch=DispatchSpec(kind="realtime", thresholds=[50], failure_prob=0.0),
            ),
            TenantSpec(
                name="exp-ranker-ab",
                priority=1,
                rounds=2,
                numeric=True,
                feature_dim=feature_dim,
                records_per_device=15,
                flow_epochs=5,
                flow_learning_rate=0.05,
                grades=[
                    GradeSpec(
                        grade="High", n_devices=n(40), bundles=160, n_phones=2,
                        device_cpus=4, device_memory_gb=12,
                    ),
                ],
                arrival=ArrivalSpec(kind="trace", times=[0.0]),
                dispatch=DispatchSpec(kind="realtime", thresholds=[1], failure_prob=0.2),
            ),
        ],
    )


def main(device_scale: float = 1.0, feature_dim: int = 512) -> None:
    spec = campaign_scenario(device_scale=device_scale, feature_dim=feature_dim)
    report = run_scenario(spec)

    for line in report.summary_lines():
        print(line)
    print()
    prod = report.tenants["prod-ctr-refresh"]
    exp = report.tenants["exp-ranker-ab"]
    print(f"production queue wait: {prod.queue_wait.mean:.1f}s "
          f"(priority {spec.tenants[0].priority} enters the cluster first)")
    print(f"experiment queue wait: {exp.queue_wait.mean:.1f}s "
          "(160 bundles must free up before it fits)")
    print(f"experiment dropout losses: {exp.dropout_lost} of {exp.updates_expected} updates "
          "(lossy real-time uplink)")
    if exp.queue_wait.mean >= prod.queue_wait.mean:
        print("scheduling: production entered the cluster first, as its priority demands")


if __name__ == "__main__":
    main()
