"""Should you ship that aggregation rule?  A dropout robustness study.

A practitioner question the paper's Fig. 11 motivates: before deploying a
device-cloud training job to a flaky population, quantify how sensitive
the outcome is to transmission failures — and whether your data
distribution makes dropout dangerous.

The study sweeps dropout probability x data skew, runs each cell through
DeviceFlow + timed aggregation, and prints a decision table of final
accuracy and convergence volatility.

Run:  python examples/dropout_robustness_study.py
"""

from repro.experiments.fig11 import run_fig11_dropout_impact
from repro.experiments.render import format_table


def main(n_devices: int = 120, rounds: int = 10, feature_dim: int = 512) -> None:
    result = run_fig11_dropout_impact(
        dropouts=(0.0, 0.3, 0.7, 0.9),
        n_devices=n_devices,
        rounds=rounds,
        feature_dim=feature_dim,
        seed=1,
    )

    rows = []
    for distribution in ("iid", "skewed"):
        for dropout in (0.0, 0.3, 0.7, 0.9):
            series = result.accuracy[(distribution, dropout)]
            rows.append(
                (
                    distribution,
                    dropout,
                    round(series[-1], 4),
                    round(min(series), 4),
                    round(result.volatility(distribution, dropout), 4),
                )
            )
    print(
        format_table(
            "Dropout robustness: final/min accuracy and volatility by setting",
            ["distribution", "dropout p", "final acc", "worst acc", "volatility"],
            rows,
        )
    )

    iid_gap = abs(
        result.final_accuracy("iid", 0.9) - result.final_accuracy("iid", 0.0)
    )
    skew_vol = result.volatility("skewed", 0.9)
    print()
    print(f"IID population: dropout 0.9 moves final accuracy by only {iid_gap:.3f} "
          "-> timed aggregation is safe to ship.")
    print(f"Skewed population: dropout 0.9 volatility {skew_vol:.3f} "
          f"({skew_vol / max(result.volatility('skewed', 0.0), 1e-9):.1f}x the clean run) "
          "-> add DeviceFlow dropout simulation to staging before shipping.")


if __name__ == "__main__":
    main()
