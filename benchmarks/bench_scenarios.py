"""Bench: the scenario engine driving a many-tenant day end to end.

The scenario engine is the substrate every future workload plugs into, so
its end-to-end cost — deferred submissions, fault events, concurrent
tasks, KPI extraction — must ride the batched fast path.  This sweep
builds a synthetic grid scenario (a dozen tenants, mixed arrival
processes and dispatch strategies, a fault plan) and replays it at
2k→20k total simulated devices (~24 task submissions, ~20 of them
resident at once at the biggest point), batched vs. legacy.

Unlike the tier benchmarks, the end-to-end scenario cost is dominated by
work both paths share — per-outcome storage/message/aggregation Python,
DeviceFlow chunking, dataset generation — so the batched/legacy ratio
hovers near 1.1x rather than the tiers' 5-10x and is *reported*, not
gated.  ``measure_scenario_ci`` instead exposes what CI protects: total
scenario throughput (simulated devices per wall second, calibrated
against the runner's Python speed by ``ci_gate.py``) and the
report-identity check — the scenario-level extension of the repo's
differential-test pattern.
"""

import json
import time

from repro.observability.tracing import Tracer, assemble_trace
from repro.scenarios import (
    AlarmRule,
    ArrivalSpec,
    DispatchSpec,
    FaultSpec,
    GradeSpec,
    PopulationSpec,
    ScenarioRunner,
    ScenarioSpec,
    SLASpec,
    TenantSpec,
    TransportSpec,
    run_scenario,
)

try:
    from conftest import full_scale
except ImportError:  # pragma: no cover - direct module use from ci_gate
    def full_scale() -> bool:
        return False

#: Total-device sweep for the __main__ report.
SWEEP = (2_000, 5_000, 10_000, 20_000)
CI_TENANTS = 12


def build_grid_scenario(
    n_tenants: int = CI_TENANTS,
    total_devices: int = 10_000,
    seed: int = 0,
    with_alarms: bool = False,
) -> ScenarioSpec:
    """A synthetic many-tenant scenario sized to ``total_devices``.

    Tenants alternate grade, arrival process (periodic / poisson / trace)
    and dispatch recipe (direct / realtime / interval); two of them run
    numeric FL at small feature dims, the rest are time-only.  Each tenant
    submits two tasks inside a 20-minute window, and the fault plan adds a
    network-degradation window plus a phone crash/recovery pair.

    ``with_alarms`` arms the live observability loop on top: a handful of
    platform-wide alarm rules, one scoped queue-wait watch per tenant,
    and wildcard SLAs — the configuration the alarm-overhead gate prices.
    """
    if n_tenants < 2:
        raise ValueError("the grid scenario needs at least 2 tenants")
    # One small fixed-size numeric tenant keeps the ML path covered; the
    # scaled load is time-only (the numeric kernels have their own gated
    # benchmark in bench_fig8_scalability).
    per_task = max(1, total_devices // (2 * (n_tenants - 1)))
    tenants = []
    for i in range(n_tenants):
        grade = "High" if i % 2 == 0 else "Low"
        if i % 3 == 0:
            arrival = ArrivalSpec(kind="periodic", count=2, period_s=600.0, offset_s=7.0 * i)
        elif i % 3 == 1:
            arrival = ArrivalSpec(kind="poisson", count=2, rate_per_hour=12.0, offset_s=11.0 * i)
        else:
            arrival = ArrivalSpec(kind="trace", times=[13.0 * i, 500.0 + 13.0 * i])
        if i % 4 == 0:
            dispatch = DispatchSpec(kind="interval", interval_s=120.0)
        elif i % 4 == 1:
            dispatch = DispatchSpec(kind="realtime", thresholds=[25, 100])
        else:
            dispatch = DispatchSpec(kind="direct")
        numeric = i == n_tenants - 1
        tenants.append(
            TenantSpec(
                name=f"tenant-{i:02d}",
                priority=(i * 3) % 10,
                rounds=2,
                numeric=numeric,
                feature_dim=32,
                records_per_device=6,
                grades=[
                    GradeSpec(
                        grade=grade,
                        n_devices=48 if numeric else per_task,
                        bundles=min(24, max(4, per_task // 40)),
                        n_phones=1 if i % 5 == 0 else 0,
                    )
                ],
                arrival=arrival,
                dispatch=dispatch,
            )
        )
    alarms: list[AlarmRule] = []
    slas: list[SLASpec] = []
    if with_alarms:
        alarms = [
            # Guaranteed to transition (any running task trips it), so the
            # gate can assert the engine actually did live work.
            AlarmRule(name="busy", signal="running_tasks", warn=1.0, clear=0.0),
            AlarmRule(name="deep-queue", signal="queue_depth", warn=6.0,
                      critical=12.0, clear=2.0, min_hold_s=5.0),
            AlarmRule(name="slow-waits", signal="queue_wait_p95", warn=300.0, clear=120.0),
            AlarmRule(name="lossy-rounds", signal="dropout_loss_rate_mean", warn=0.3),
        ]
        alarms.extend(
            AlarmRule(name=f"qw-{t.name}", signal="queue_wait_p95", warn=600.0,
                      tenant=t.name)
            for t in tenants
        )
        slas = [
            SLASpec(metric="queue_wait_p95", limit=1e6),
            SLASpec(metric="dropout_loss_rate", limit=1.0),
        ]
    return ScenarioSpec(
        name="bench_grid",
        description=f"{n_tenants}-tenant synthetic grid at {total_devices} devices",
        seed=seed,
        horizon_s=1200.0,
        population=PopulationSpec(dropout_prob=0.02),
        tenants=tenants,
        faults=[
            FaultSpec(kind="network_degradation", at=200.0, until=700.0, factor=0.5),
            FaultSpec(kind="phone_crash", at=150.0, until=1000.0, grade="High", count=2),
        ],
        alarms=alarms,
        slas=slas,
    )


def scenario_run(total_devices: int, batch: bool, n_tenants: int = CI_TENANTS) -> dict:
    """Replay the grid scenario once; returns wall time and the report."""
    spec = build_grid_scenario(n_tenants=n_tenants, total_devices=total_devices)
    wall_start = time.perf_counter()
    report = run_scenario(spec, batch=batch)
    wall = time.perf_counter() - wall_start
    return {"wall": wall, "report": report}


def _comparable(report) -> str:
    """Report JSON with the execution-mode tag stripped."""
    data = report.to_dict()
    data.pop("batch")
    return json.dumps(data, sort_keys=True)


def measure_scenario_speedup(total_devices: int, n_tenants: int = CI_TENANTS) -> dict:
    """Batched vs. legacy replay of the grid scenario.

    Returns the wall times, the speedup ratio, the simulated makespan,
    the batched path's device throughput and ``identical`` — whether the
    two paths produced byte-identical reports (modulo the mode tag).
    """
    legacy = scenario_run(total_devices, batch=False, n_tenants=n_tenants)
    batched = scenario_run(total_devices, batch=True, n_tenants=n_tenants)
    report = batched["report"]
    return {
        "n_tenants": n_tenants,
        "total_devices": report.total_devices,
        "total_tasks": report.total_tasks,
        "finished_at": report.finished_at,
        "wall_legacy_s": legacy["wall"],
        "wall_batched_s": batched["wall"],
        "batched_speedup": legacy["wall"] / batched["wall"],
        "devices_per_sec": report.total_devices / batched["wall"],
        "identical": _comparable(legacy["report"]) == _comparable(report),
    }


def measure_scenario_ci(total_devices: int = 10_000, n_tenants: int = CI_TENANTS) -> dict:
    """The CI point: ``n_tenants`` tenants end-to-end at ``total_devices``.

    ``devices_per_sec`` is the gated throughput (calibrated by the gate);
    ``identical`` must hold — the batched path may never change what the
    scenario simulates.
    """
    best = None
    for _ in range(2):  # two trials absorb one-off warmup noise
        result = measure_scenario_speedup(total_devices, n_tenants=n_tenants)
        if not result["identical"]:
            return result
        if best is None or result["devices_per_sec"] > best["devices_per_sec"]:
            best = result
    return best


def measure_alarm_overhead(total_devices: int = 10_000, n_tenants: int = CI_TENANTS) -> dict:
    """Live-alarm cost: the alarmed grid vs. the plain grid, batched.

    The engine evaluates rules per *monitor* event (tasks and rounds),
    never per device, so the alarmed replay must stay within a few
    percent of the plain one — ``alarm_overhead_ratio`` (plain wall /
    alarmed wall) is gated at 0.95 by ``ci_gate.py``.  Runner throughput
    drifts ±10% over multi-second stretches — the same order as the
    overhead being priced — so a single comparison (or a min-of-N per
    variant) flakes.  Instead the two variants run interleaved for six
    pairs and the gate reads the *best* pair ratio: "in at least one
    back-to-back pairing the alarmed replay was within 5% of the plain
    one".  Under the measured noise that holds essentially always when
    the true overhead is small, while a per-device evaluation regression
    (the failure mode this gate exists for) slows *every* alarmed run
    severalfold and fails every pair.  ``alarm_events`` proves the run
    wasn't vacuous: the armed rules really transitioned.
    """

    def one_run(with_alarms: bool):
        spec = build_grid_scenario(
            n_tenants=n_tenants, total_devices=total_devices, with_alarms=with_alarms
        )
        wall_start = time.perf_counter()
        report = run_scenario(spec, batch=True)
        return time.perf_counter() - wall_start, report

    one_run(True)  # warmup: imports, allocator growth, cache fill
    best = None
    alarmed_report = None
    for _ in range(6):
        plain_wall, _plain_report = one_run(False)
        alarmed_wall, alarmed_report = one_run(True)
        pair = {
            "wall_plain_s": plain_wall,
            "wall_alarmed_s": alarmed_wall,
            "alarm_overhead_ratio": plain_wall / alarmed_wall,
        }
        if best is None or pair["alarm_overhead_ratio"] > best["alarm_overhead_ratio"]:
            best = pair
    return {
        "n_tenants": n_tenants,
        "total_devices": alarmed_report.total_devices,
        **best,
        "alarm_events": sum(alarmed_report.alarm_events.values()),
        "armed_rules": len(alarmed_report.alarms),
    }


def measure_transport_overhead(
    total_devices: int = 10_000, n_tenants: int = CI_TENANTS
) -> dict:
    """Pass-through transport cost: gated ingestion vs. the plain grid.

    A ``TransportSpec`` with only a (never-binding) round deadline arms
    the ingestion gate on every tenant without any channel impairment —
    the configuration every lossless-but-deadline-bound deployment runs.
    The gate's fast path is one vectorized deadline compare per block,
    so the gated replay must stay within a few percent of the plain one:
    ``transport_overhead_ratio`` (plain wall / gated wall) is gated at
    0.95 by ``ci_gate.py``, interleaved-best-of-6 exactly like the
    alarm-overhead gate (see :func:`measure_alarm_overhead` for why).
    ``identical`` re-proves the lossless differential property at the
    gate's scale: the gated report must be byte-identical to the plain
    one (modulo the mode tag).
    """

    def one_run(with_transport: bool):
        spec = build_grid_scenario(n_tenants=n_tenants, total_devices=total_devices)
        if with_transport:
            spec.transport = TransportSpec(deadline_s=1e6)
        wall_start = time.perf_counter()
        report = run_scenario(spec, batch=True)
        return time.perf_counter() - wall_start, report

    one_run(True)  # warmup: imports, allocator growth, cache fill
    best = None
    plain_report = gated_report = None
    for _ in range(6):
        plain_wall, plain_report = one_run(False)
        gated_wall, gated_report = one_run(True)
        pair = {
            "wall_plain_s": plain_wall,
            "wall_transport_s": gated_wall,
            "transport_overhead_ratio": plain_wall / gated_wall,
        }
        if best is None or pair["transport_overhead_ratio"] > best["transport_overhead_ratio"]:
            best = pair
    return {
        "n_tenants": n_tenants,
        "total_devices": gated_report.total_devices,
        **best,
        "identical": _comparable(plain_report) == _comparable(gated_report),
    }


def measure_tracing_overhead(
    total_devices: int = 10_000, n_tenants: int = CI_TENANTS
) -> dict:
    """Span-recording cost: the traced grid vs. the plain grid, batched.

    An armed :class:`Tracer` appends plain tuples at a handful of
    per-round / per-outcome instrumentation points; batched plans are
    captured as O(1) block references and everything expensive (wave
    derivation, span assembly, export) happens *after* the run.  The
    traced replay must therefore stay within a few percent of the plain
    one: ``tracing_overhead_ratio`` (plain wall / traced wall) is gated
    at 0.95 by ``ci_gate.py``, interleaved-best-of-6 exactly like the
    alarm-overhead gate (see :func:`measure_alarm_overhead` for why).
    ``identical`` re-proves the recording never touches simulation
    state: the traced report must be byte-identical to the plain one.
    ``trace_spans`` (assembled once, outside the timed region) proves
    the run wasn't vacuous — the tracer really captured the grid.
    """

    def one_run(traced: bool):
        spec = build_grid_scenario(n_tenants=n_tenants, total_devices=total_devices)
        tracer = Tracer() if traced else None
        runner = ScenarioRunner(spec, batch=True, tracer=tracer)
        wall_start = time.perf_counter()
        report = runner.run()
        return time.perf_counter() - wall_start, report, runner

    one_run(True)  # warmup: imports, allocator growth, cache fill
    best = None
    plain_report = traced_report = None
    traced_runner = None
    for _ in range(6):
        plain_wall, plain_report, _ = one_run(False)
        traced_wall, traced_report, traced_runner = one_run(True)
        pair = {
            "wall_plain_s": plain_wall,
            "wall_traced_s": traced_wall,
            "tracing_overhead_ratio": plain_wall / traced_wall,
        }
        if best is None or pair["tracing_overhead_ratio"] > best["tracing_overhead_ratio"]:
            best = pair
    trace = assemble_trace(
        traced_runner.platform.monitor, traced_runner.tracer, name="bench_grid"
    )
    return {
        "n_tenants": n_tenants,
        "total_devices": traced_report.total_devices,
        **best,
        "trace_spans": len(trace),
        "identical": _comparable(plain_report) == _comparable(traced_report),
    }


def measure_lossy_grid(total_devices: int = 10_000, n_tenants: int = CI_TENANTS) -> dict:
    """The grid replayed through a lossy channel (reported, not gated).

    1% loss + 0.5% duplication, capped-exponential retries and a 60 s
    per-round deadline — the lossy variant of the CI grid.  Reports the
    transport KPI totals, the retry pressure per simulated second, and
    overall round completeness.
    """
    spec = build_grid_scenario(n_tenants=n_tenants, total_devices=total_devices)
    spec.transport = TransportSpec(
        latency_s=1.0,
        jitter_s=0.5,
        loss_prob=0.01,
        dup_prob=0.005,
        retry_base_s=2.0,
        retry_cap_s=15.0,
        max_attempts=4,
        deadline_s=60.0,
    )
    wall_start = time.perf_counter()
    report = run_scenario(spec, batch=True)
    wall = time.perf_counter() - wall_start
    kpis = list(report.tenants.values())
    retries = sum(k.transport_retries for k in kpis)
    expected = sum(k.updates_expected for k in kpis)
    aggregated = sum(k.updates_aggregated for k in kpis)
    return {
        "n_tenants": n_tenants,
        "total_devices": report.total_devices,
        "wall_s": wall,
        "retries": retries,
        "retries_per_sim_s": retries / report.finished_at if report.finished_at else 0.0,
        "duplicate_drops": sum(k.transport_duplicates for k in kpis),
        "late_drops": sum(k.transport_late_drops for k in kpis),
        "abandoned": sum(k.transport_abandoned for k in kpis),
        "round_completeness": aggregated / expected if expected else 1.0,
    }


def main() -> None:
    from repro.experiments.render import format_table

    sweep = SWEEP if full_scale() else SWEEP[:3]
    rows = []
    for total in sweep:
        result = measure_scenario_speedup(total)
        rows.append(
            (
                total,
                result["total_tasks"],
                round(result["finished_at"], 1),
                round(result["wall_legacy_s"], 2),
                round(result["wall_batched_s"], 2),
                f"{result['batched_speedup']:.2f}x",
                int(result["devices_per_sec"]),
                result["identical"],
            )
        )
    print(
        format_table(
            f"Scenario engine: {CI_TENANTS}-tenant grid, legacy vs batched (end-to-end)",
            [
                "devices", "tasks", "sim end (s)", "legacy (s)", "batched (s)",
                "speedup", "dev/s", "identical",
            ],
            rows,
        )
    )
    overhead = measure_alarm_overhead(sweep[-1])
    print(
        f"live-alarm overhead @ {sweep[-1]} devices: ratio "
        f"{overhead['alarm_overhead_ratio']:.3f} plain/alarmed "
        f"({overhead['armed_rules']} rules, "
        f"{overhead['alarm_events']} observability events)"
    )
    transport = measure_transport_overhead(sweep[-1])
    print(
        f"transport-gate overhead @ {sweep[-1]} devices: ratio "
        f"{transport['transport_overhead_ratio']:.3f} plain/gated "
        f"(identical={transport['identical']})"
    )
    tracing = measure_tracing_overhead(sweep[-1])
    print(
        f"tracing overhead @ {sweep[-1]} devices: ratio "
        f"{tracing['tracing_overhead_ratio']:.3f} plain/traced "
        f"({tracing['trace_spans']} spans, identical={tracing['identical']})"
    )
    lossy = measure_lossy_grid(sweep[-1])
    print(
        f"lossy grid @ {sweep[-1]} devices: {lossy['retries']} retries "
        f"({lossy['retries_per_sim_s']:.2f}/sim-s), "
        f"{lossy['duplicate_drops']} duplicates dropped, "
        f"{lossy['late_drops']} late, {lossy['abandoned']} abandoned, "
        f"round completeness {lossy['round_completeness']:.3f} "
        f"in {lossy['wall_s']:.2f}s wall"
    )


if __name__ == "__main__":
    main()
