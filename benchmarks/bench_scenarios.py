"""Bench: the scenario engine driving a many-tenant day end to end.

The scenario engine is the substrate every future workload plugs into, so
its end-to-end cost — deferred submissions, fault events, concurrent
tasks, KPI extraction — must ride the batched fast path.  This sweep
builds a synthetic grid scenario (a dozen tenants, mixed arrival
processes and dispatch strategies, a fault plan) and replays it at
2k→20k total simulated devices (~24 task submissions, ~20 of them
resident at once at the biggest point), batched vs. legacy.

Unlike the tier benchmarks, the end-to-end scenario cost is dominated by
work both paths share — per-outcome storage/message/aggregation Python,
DeviceFlow chunking, dataset generation — so the batched/legacy ratio
hovers near 1.1x rather than the tiers' 5-10x and is *reported*, not
gated.  ``measure_scenario_ci`` instead exposes what CI protects: total
scenario throughput (simulated devices per wall second, calibrated
against the runner's Python speed by ``ci_gate.py``) and the
report-identity check — the scenario-level extension of the repo's
differential-test pattern.
"""

import json
import time

from repro.scenarios import (
    ArrivalSpec,
    DispatchSpec,
    FaultSpec,
    GradeSpec,
    PopulationSpec,
    ScenarioSpec,
    TenantSpec,
    run_scenario,
)

try:
    from conftest import full_scale
except ImportError:  # pragma: no cover - direct module use from ci_gate
    def full_scale() -> bool:
        return False

#: Total-device sweep for the __main__ report.
SWEEP = (2_000, 5_000, 10_000, 20_000)
CI_TENANTS = 12


def build_grid_scenario(
    n_tenants: int = CI_TENANTS, total_devices: int = 10_000, seed: int = 0
) -> ScenarioSpec:
    """A synthetic many-tenant scenario sized to ``total_devices``.

    Tenants alternate grade, arrival process (periodic / poisson / trace)
    and dispatch recipe (direct / realtime / interval); two of them run
    numeric FL at small feature dims, the rest are time-only.  Each tenant
    submits two tasks inside a 20-minute window, and the fault plan adds a
    network-degradation window plus a phone crash/recovery pair.
    """
    if n_tenants < 2:
        raise ValueError("the grid scenario needs at least 2 tenants")
    # One small fixed-size numeric tenant keeps the ML path covered; the
    # scaled load is time-only (the numeric kernels have their own gated
    # benchmark in bench_fig8_scalability).
    per_task = max(1, total_devices // (2 * (n_tenants - 1)))
    tenants = []
    for i in range(n_tenants):
        grade = "High" if i % 2 == 0 else "Low"
        if i % 3 == 0:
            arrival = ArrivalSpec(kind="periodic", count=2, period_s=600.0, offset_s=7.0 * i)
        elif i % 3 == 1:
            arrival = ArrivalSpec(kind="poisson", count=2, rate_per_hour=12.0, offset_s=11.0 * i)
        else:
            arrival = ArrivalSpec(kind="trace", times=[13.0 * i, 500.0 + 13.0 * i])
        if i % 4 == 0:
            dispatch = DispatchSpec(kind="interval", interval_s=120.0)
        elif i % 4 == 1:
            dispatch = DispatchSpec(kind="realtime", thresholds=[25, 100])
        else:
            dispatch = DispatchSpec(kind="direct")
        numeric = i == n_tenants - 1
        tenants.append(
            TenantSpec(
                name=f"tenant-{i:02d}",
                priority=(i * 3) % 10,
                rounds=2,
                numeric=numeric,
                feature_dim=32,
                records_per_device=6,
                grades=[
                    GradeSpec(
                        grade=grade,
                        n_devices=48 if numeric else per_task,
                        bundles=min(24, max(4, per_task // 40)),
                        n_phones=1 if i % 5 == 0 else 0,
                    )
                ],
                arrival=arrival,
                dispatch=dispatch,
            )
        )
    return ScenarioSpec(
        name="bench_grid",
        description=f"{n_tenants}-tenant synthetic grid at {total_devices} devices",
        seed=seed,
        horizon_s=1200.0,
        population=PopulationSpec(dropout_prob=0.02),
        tenants=tenants,
        faults=[
            FaultSpec(kind="network_degradation", at=200.0, until=700.0, factor=0.5),
            FaultSpec(kind="phone_crash", at=150.0, until=1000.0, grade="High", count=2),
        ],
    )


def scenario_run(total_devices: int, batch: bool, n_tenants: int = CI_TENANTS) -> dict:
    """Replay the grid scenario once; returns wall time and the report."""
    spec = build_grid_scenario(n_tenants=n_tenants, total_devices=total_devices)
    wall_start = time.perf_counter()
    report = run_scenario(spec, batch=batch)
    wall = time.perf_counter() - wall_start
    return {"wall": wall, "report": report}


def _comparable(report) -> str:
    """Report JSON with the execution-mode tag stripped."""
    data = report.to_dict()
    data.pop("batch")
    return json.dumps(data, sort_keys=True)


def measure_scenario_speedup(total_devices: int, n_tenants: int = CI_TENANTS) -> dict:
    """Batched vs. legacy replay of the grid scenario.

    Returns the wall times, the speedup ratio, the simulated makespan,
    the batched path's device throughput and ``identical`` — whether the
    two paths produced byte-identical reports (modulo the mode tag).
    """
    legacy = scenario_run(total_devices, batch=False, n_tenants=n_tenants)
    batched = scenario_run(total_devices, batch=True, n_tenants=n_tenants)
    report = batched["report"]
    return {
        "n_tenants": n_tenants,
        "total_devices": report.total_devices,
        "total_tasks": report.total_tasks,
        "finished_at": report.finished_at,
        "wall_legacy_s": legacy["wall"],
        "wall_batched_s": batched["wall"],
        "batched_speedup": legacy["wall"] / batched["wall"],
        "devices_per_sec": report.total_devices / batched["wall"],
        "identical": _comparable(legacy["report"]) == _comparable(report),
    }


def measure_scenario_ci(total_devices: int = 10_000, n_tenants: int = CI_TENANTS) -> dict:
    """The CI point: ``n_tenants`` tenants end-to-end at ``total_devices``.

    ``devices_per_sec`` is the gated throughput (calibrated by the gate);
    ``identical`` must hold — the batched path may never change what the
    scenario simulates.
    """
    best = None
    for _ in range(2):  # two trials absorb one-off warmup noise
        result = measure_scenario_speedup(total_devices, n_tenants=n_tenants)
        if not result["identical"]:
            return result
        if best is None or result["devices_per_sec"] > best["devices_per_sec"]:
            best = result
    return best


def main() -> None:
    from repro.experiments.render import format_table

    sweep = SWEEP if full_scale() else SWEEP[:3]
    rows = []
    for total in sweep:
        result = measure_scenario_speedup(total)
        rows.append(
            (
                total,
                result["total_tasks"],
                round(result["finished_at"], 1),
                round(result["wall_legacy_s"], 2),
                round(result["wall_batched_s"], 2),
                f"{result['batched_speedup']:.2f}x",
                int(result["devices_per_sec"]),
                result["identical"],
            )
        )
    print(
        format_table(
            f"Scenario engine: {CI_TENANTS}-tenant grid, legacy vs batched (end-to-end)",
            [
                "devices", "tasks", "sim end (s)", "legacy (s)", "batched (s)",
                "speedup", "dev/s", "identical",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
