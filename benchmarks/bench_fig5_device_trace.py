"""Bench: regenerate Fig. 5 (benchmarking-device CPU/memory trace)."""

from repro.experiments import format_fig5, run_fig5_device_trace


def test_fig5_device_trace(benchmark, persist_result):
    trace = benchmark.pedantic(
        run_fig5_device_trace, kwargs={"rounds": 3}, rounds=1, iterations=1
    )
    assert len(trace.round_windows) == 3
    active_cpu = [c for c in trace.cpu_percent if c > 0]
    assert max(active_cpu) <= 15.0  # the figure's 0-14% band
    active_mem = [m for m in trace.memory_mb if m > 1.0]
    assert max(active_mem) < 60.0  # the figure's 10-50 MB band
    persist_result("fig5_device_trace", format_fig5(trace))
