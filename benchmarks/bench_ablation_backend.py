"""Ablation: numeric-backend divergence vs model dimensionality.

The PyMNN-vs-MNN stand-ins (float64 natural order vs float32 reversed
reduction) should produce parameter divergence that grows with model size
yet never moves accuracy materially — quantifying the slack behind the
Fig. 6 claim.
"""

import numpy as np

from conftest import full_scale

from repro.data import SyntheticAvazu
from repro.experiments.render import format_table
from repro.ml import DEVICE_BACKEND, SERVER_BACKEND, LogisticRegressionModel


def backend_divergence(dims=(128, 512, 2048), seed=0):
    rows = []
    for dim in dims:
        data = SyntheticAvazu(
            n_devices=40, records_per_device=30, feature_dim=dim, base_ctr=0.5, seed=seed
        ).generate(test_records=1500)
        features = np.concatenate([data.shard(d).features for d in data.device_ids()])
        labels = np.concatenate([data.shard(d).labels for d in data.device_ids()])
        metrics = {}
        params = {}
        for backend in (SERVER_BACKEND, DEVICE_BACKEND):
            model = LogisticRegressionModel(dim, backend)
            model.fit_local(features, labels, epochs=5, learning_rate=0.05, batch_size=64)
            metrics[backend.name] = model.evaluate(data.test.features, data.test.labels)
            params[backend.name] = model.weights
        weight_gap = float(
            np.max(np.abs(params["pymnn-server"] - params["mnn-device"]))
        )
        accuracy_gap = 100.0 * abs(
            metrics["pymnn-server"]["accuracy"] - metrics["mnn-device"]["accuracy"]
        )
        rows.append((dim, f"{weight_gap:.2e}", round(accuracy_gap, 4)))
    return rows


def test_backend_divergence(benchmark, persist_result):
    dims = (128, 512, 2048, 4096) if full_scale() else (128, 512, 2048)
    rows = benchmark.pedantic(backend_divergence, kwargs={"dims": dims}, rounds=1, iterations=1)
    for _, weight_gap, accuracy_gap in rows:
        assert float(weight_gap) > 0.0  # backends genuinely diverge...
        assert accuracy_gap < 0.5  # ...but never by a material accuracy amount
    persist_result(
        "ablation_backend_divergence",
        format_table(
            "Ablation: server/device backend divergence vs model dimension",
            ["feature dim", "max |w_server - w_device|", "|ACC gap| pct pts"],
            rows,
        ),
    )
