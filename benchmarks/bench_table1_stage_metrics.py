"""Bench: regenerate Table I (per-stage power, duration, communication)."""

from conftest import full_scale

from repro.experiments import format_table1, run_table1_stage_metrics
from repro.experiments.table1 import PAPER_TABLE1


def test_table1_stage_metrics(benchmark, persist_result):
    scale = 500 if full_scale() else 60
    result = benchmark.pedantic(
        run_table1_stage_metrics,
        kwargs={"n_devices_per_grade": scale, "n_benchmark_per_grade": 5},
        rounds=1,
        iterations=1,
    )
    # Sanity of the regenerated rows against the paper's values.
    for grade, stage, _, mah, minutes, _ in result.rows:
        paper_mah, paper_min = PAPER_TABLE1[(grade, stage)]
        assert abs(minutes - paper_min) < 0.03
        assert abs(mah - paper_mah) / paper_mah < 0.4
    persist_result("table1_stage_metrics", format_table1(result))
