#!/usr/bin/env python
"""CI benchmark-regression gate.

Runs the kernel-throughput, Fig. 8 scalability (time-only and numeric
variants), phone-tier and multi-tenant scenario benchmarks at reduced
scale, writes the measurements to ``BENCH_ci.json``, and fails (exit 1)
when any gated metric regresses more than ``--tolerance`` (default 20%)
against the committed baseline ``benchmarks/baseline_ci.json``.

Raw events-per-second numbers vary wildly across runner hardware, so the
gate normalizes them by a pure-Python calibration loop timed on the same
machine ("kernel events per calibration op"); speedup ratios are
machine-relative already and are gated directly.  Refresh the baseline
with ``--update-baseline`` after an intentional performance change.

Run locally from the repo root:

    PYTHONPATH=src python benchmarks/ci_gate.py
    PYTHONPATH=src python benchmarks/ci_gate.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))

from bench_cloud_ingest import measure_cloud_block_speedup  # noqa: E402
from bench_fig8_scalability import (  # noqa: E402
    measure_numeric_sweep_speedup,
    measure_sweep_speedup,
)
from bench_kernel_throughput import measure_throughputs  # noqa: E402
from bench_phone_tier import measure_phone_tier_speedup  # noqa: E402
from bench_scenarios import (  # noqa: E402
    CI_TENANTS,
    measure_alarm_overhead,
    measure_scenario_ci,
    measure_tracing_overhead,
    measure_transport_overhead,
)

#: Metrics checked against the committed baseline (20% tolerance after
#: on-machine calibration absorbs runner-speed differences).
BASELINE_METRICS = (
    "calibrated_events_legacy",
    "calibrated_events_batched",
    "calibrated_events_pooled",
    "calibrated_scenario_devices",
)

#: Speedup ratios gated by absolute floors instead of the baseline: a
#: ratio already cancels machine speed, but its exact value still shifts
#: with core count and CPU generation, so pinning it to one machine's
#: baseline at 20% would flake across runners.  The floors encode the
#: regression we actually care about: batching must stay decisively
#: faster than per-event execution.
RATIO_FLOORS = {
    "sweep_batched_speedup": 3.0,
    "sweep_best_speedup": 5.0,
    "sweep_numeric_speedup": 3.0,
    "phone_batched_speedup": 3.0,
    "cloud_block_speedup": 2.0,
    # Live alarm evaluation is per monitor event, never per device; the
    # alarmed 12-tenant grid must replay within ~5% of the plain one.
    "alarm_overhead_ratio": 0.95,
    # The transport ingestion gate's lossless fast path is one vectorized
    # deadline compare per block; the gated grid must replay within ~5%
    # of the plain one.
    "transport_overhead_ratio": 0.95,
    # Span recording is tuple appends + O(1) block references with all
    # assembly deferred past the run; the traced grid must replay within
    # ~5% of the plain one.
    "tracing_overhead_ratio": 0.95,
}

GATED_METRICS = BASELINE_METRICS + tuple(RATIO_FLOORS)

CI_EVENT_SCALE = 50_000
CI_SWEEP_SCALE = 20_000
CI_NUMERIC_SCALE = 10_000
CI_PHONE_SCALE = 5_000
CI_PHONE_FLEET = 256
CI_SCENARIO_SCALE = 10_000
CI_CLOUD_SCALE = 12_000


def calibration_score(repeats: int = 3) -> float:
    """Operations/second of a fixed pure-Python loop on this machine."""

    def spin() -> int:
        total = 0
        for i in range(200_000):
            total += i * 3 % 7
        return total

    walls = []
    for _ in range(repeats):
        start = time.perf_counter()
        spin()
        walls.append(time.perf_counter() - start)
    return 200_000 / min(walls)


def run_benchmarks() -> dict:
    calibration = calibration_score()
    kernel = measure_throughputs(CI_EVENT_SCALE)
    sweep = measure_sweep_speedup(CI_SWEEP_SCALE)
    numeric = measure_numeric_sweep_speedup(CI_NUMERIC_SCALE)
    phone = measure_phone_tier_speedup(CI_PHONE_SCALE, CI_PHONE_FLEET)
    scenario = measure_scenario_ci(CI_SCENARIO_SCALE, n_tenants=CI_TENANTS)
    cloud = measure_cloud_block_speedup(CI_CLOUD_SCALE)
    alarm = measure_alarm_overhead(CI_SCENARIO_SCALE, n_tenants=CI_TENANTS)
    transport = measure_transport_overhead(CI_SCENARIO_SCALE, n_tenants=CI_TENANTS)
    tracing = measure_tracing_overhead(CI_SCENARIO_SCALE, n_tenants=CI_TENANTS)
    return {
        "calibration_ops_per_sec": calibration,
        "kernel": kernel,
        "sweep": sweep,
        "numeric_sweep": numeric,
        "phone_sweep": phone,
        "scenario": scenario,
        "cloud_ingest": cloud,
        "alarm_overhead": alarm,
        "transport_overhead": transport,
        "tracing_overhead": tracing,
        "gated": {
            "calibrated_events_legacy": kernel["events_per_sec_legacy"] / calibration,
            "calibrated_events_batched": kernel["events_per_sec_batched"] / calibration,
            "calibrated_events_pooled": kernel["events_per_sec_pooled"] / calibration,
            "calibrated_scenario_devices": scenario["devices_per_sec"] / calibration,
            "sweep_batched_speedup": sweep["batched_speedup"],
            "sweep_best_speedup": sweep["best_speedup"],
            "sweep_numeric_speedup": numeric["batched_speedup"],
            "phone_batched_speedup": phone["batched_speedup"],
            "cloud_block_speedup": cloud["block_speedup"],
            "alarm_overhead_ratio": alarm["alarm_overhead_ratio"],
            "transport_overhead_ratio": transport["transport_overhead_ratio"],
            "tracing_overhead_ratio": tracing["tracing_overhead_ratio"],
        },
    }


def compare(results: dict, baseline: dict, tolerance: float) -> list[str]:
    failures = []
    baseline_gated = baseline.get("gated", {})
    for metric in BASELINE_METRICS:
        reference = baseline_gated.get(metric)
        if reference is None:
            continue
        measured = results["gated"][metric]
        floor = reference * (1.0 - tolerance)
        status = "OK " if measured >= floor else "FAIL"
        print(
            f"  [{status}] {metric}: {measured:.3f} "
            f"(baseline {reference:.3f}, floor {floor:.3f})"
        )
        if measured < floor:
            failures.append(metric)
    for metric, floor in RATIO_FLOORS.items():
        measured = results["gated"][metric]
        status = "OK " if measured >= floor else "FAIL"
        print(f"  [{status}] {metric}: {measured:.3f} (absolute floor {floor:g})")
        if measured < floor:
            failures.append(metric)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_ci.json"))
    parser.add_argument("--baseline", type=Path, default=BENCH_DIR / "baseline_ci.json")
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured metrics to the baseline file and exit 0",
    )
    args = parser.parse_args(argv)

    print(
        f"Running CI benchmarks (events={CI_EVENT_SCALE}, sweep={CI_SWEEP_SCALE}, "
        f"numeric={CI_NUMERIC_SCALE}, phone={CI_PHONE_SCALE}, "
        f"scenario={CI_SCENARIO_SCALE}x{CI_TENANTS}t, cloud={CI_CLOUD_SCALE}) ..."
    )
    results = run_benchmarks()
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"Wrote {args.output}")
    for metric in GATED_METRICS:
        print(f"  {metric}: {results['gated'][metric]:.3f}")

    # The fast paths must preserve simulated results regardless of speed.
    sweep = results["sweep"]
    if not (sweep["batched_round_s"] == sweep["legacy_round_s"] == sweep["sharded4_round_s"]):
        print("FAIL: batched/sharded sweep changed the simulated round time")
        return 1
    if not results["numeric_sweep"]["identical"]:
        print("FAIL: batched numeric sweep changed the simulated results")
        return 1
    if not results["phone_sweep"]["identical"]:
        print("FAIL: wave-scheduled phone tier changed the simulated results")
        return 1
    if not results["scenario"]["identical"]:
        print("FAIL: batched scenario replay changed the simulated report")
        return 1
    if not results["cloud_ingest"]["identical"]:
        print("FAIL: columnar cloud ingestion changed the simulated cloud state")
        return 1
    if results["alarm_overhead"]["alarm_events"] < 1:
        print("FAIL: alarm-overhead run armed rules but no alarm ever transitioned")
        return 1
    if not results["transport_overhead"]["identical"]:
        print("FAIL: the transport ingestion gate changed a lossless scenario report")
        return 1
    if not results["tracing_overhead"]["identical"]:
        print("FAIL: span recording changed the simulated scenario report")
        return 1
    if results["tracing_overhead"]["trace_spans"] < 1:
        print("FAIL: tracing-overhead run armed a tracer but assembled no spans")
        return 1

    if args.update_baseline:
        baseline = {
            "note": "regenerate with: PYTHONPATH=src python benchmarks/ci_gate.py --update-baseline",
            "gated": results["gated"],
        }
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
        print(f"Baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"No baseline at {args.baseline}; run with --update-baseline to create one.")
        return 1

    print(f"Comparing against {args.baseline} (tolerance {args.tolerance:.0%}):")
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    failures = compare(results, baseline, args.tolerance)
    if failures:
        print(f"Benchmark regression in: {', '.join(failures)}")
        return 1
    print("Benchmark gate passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
