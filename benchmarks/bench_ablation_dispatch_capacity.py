"""Ablation: DeviceFlow's transmission capacity vs curve fidelity & latency.

The 700 msg/s single-threaded cap is a design constant; this sweep shows
what it costs: lower caps coarsen the discretisation (larger ticks to keep
per-point quantities legal) and stretch delivery past the nominal window,
while higher caps approach the ideal curve.
"""

from repro.deviceflow import (
    DeviceFlow,
    Message,
    TimeIntervalStrategy,
    right_tailed_normal,
)
from repro.deviceflow.discretize import DispatchTick, schedule_correlation
from repro.experiments.render import format_table
from repro.simkernel import RandomStreams, Simulator


def capacity_sweep(capacities=(100.0, 300.0, 700.0, 2000.0), n_messages=10_000):
    curve = right_tailed_normal(1.0)
    interval = 60.0
    rows = []
    for capacity in capacities:
        sim = Simulator()
        flow = DeviceFlow(sim, streams=RandomStreams(0), capacity_per_second=capacity)
        last_arrival = {"t": 0.0}

        def downstream(message, box=last_arrival, sim=sim):
            box["t"] = sim.now

        flow.register_task("cap", TimeIntervalStrategy(curve, interval), downstream)
        flow.round_started("cap", 1)
        for i in range(n_messages):
            flow.submit(Message(task_id="cap", device_id=f"d{i}", round_index=1,
                                payload_ref=f"p{i}"))
        flow.round_completed("cap", 1)
        base = sim.now
        sim.run()
        log = flow.dispatcher_for("cap").dispatch_log
        ticks = [DispatchTick(offset=t - base, count=n) for t, n in log]
        correlation = schedule_correlation(curve, ticks, interval)
        overrun = max(0.0, (last_arrival["t"] - base) - interval)
        rows.append((int(capacity), round(correlation, 4), len(ticks), round(overrun, 2)))
    return rows


def test_dispatch_capacity_ablation(benchmark, persist_result):
    rows = benchmark.pedantic(capacity_sweep, rounds=1, iterations=1)
    correlations = [r[1] for r in rows]
    # Fidelity never degrades when capacity grows.
    assert correlations == sorted(correlations) or min(correlations) > 0.98
    # The paper's 700 msg/s cap already achieves r > 0.99.
    by_capacity = {r[0]: r for r in rows}
    assert by_capacity[700][1] > 0.99
    persist_result(
        "ablation_dispatch_capacity",
        format_table(
            "Ablation: dispatcher capacity vs realised-curve fidelity",
            ["capacity msg/s", "Pearson r", "ticks", "window overrun (s)"],
            rows,
        ),
    )
