"""Bench: regenerate Fig. 10 (rule-based dispatch, both mechanisms)."""

from conftest import full_scale

from repro.experiments import format_fig10, run_fig10_dispatch_demo


def test_fig10_dispatch(benchmark, persist_result):
    n_messages = 10_000 if full_scale() else 10_000  # paper scale is cheap here
    result = benchmark.pedantic(
        run_fig10_dispatch_demo,
        kwargs={"interval_messages": n_messages, "interval_seconds": 60.0},
        rounds=1,
        iterations=1,
    )
    assert [n for _, n in result.point_dispatches] == [200, 400, 600]
    assert result.received_total(result.interval_cumulative_received) == n_messages
    # Right-tailed N(0,1): the bulk of traffic lands early in the window.
    early = sum(n for t, n in result.interval_dispatches if t < 20.0)
    assert early > 0.7 * n_messages
    persist_result("fig10_dispatch", format_fig10(result))
