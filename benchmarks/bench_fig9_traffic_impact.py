"""Bench: regenerate Fig. 9 (traffic curves vs aggregation outcomes)."""

from conftest import full_scale

from repro.experiments import format_fig9, run_fig9_traffic_impact


def test_fig9_traffic_impact(benchmark, persist_result):
    kwargs = (
        {"n_devices": 300, "window_s": 1200.0, "rounds": 10, "feature_dim": 512}
        if full_scale()
        else {"n_devices": 120, "window_s": 1200.0, "rounds": 10, "feature_dim": 512}
    )
    result = benchmark.pedantic(
        run_fig9_traffic_impact, kwargs=kwargs, rounds=1, iterations=1
    )
    # (a): tighter curves land more arrivals and never fewer aggregations.
    assert result.arrivals_in_window[1.0] >= result.arrivals_in_window[3.0]
    assert result.threshold_rounds[1.0] >= result.threshold_rounds[3.0]
    # (b): sigma=1 sees the most participants per scheduled round.
    def mean(xs):
        return sum(xs) / len(xs)

    assert mean(result.participation[1.0]) > mean(result.participation[3.0])
    persist_result("fig9_traffic_impact", format_fig9(result))
