"""Bench: regenerate Fig. 6 (hybrid allocation ratios vs accuracy)."""

from conftest import full_scale

from repro.experiments import format_fig6, run_fig6_hybrid_accuracy


def test_fig6_hybrid_accuracy(benchmark, persist_result):
    scales = ((4, 4), (20, 20), (100, 100), (500, 500)) if full_scale() else (
        (4, 4), (20, 20), (100, 100),
    )
    result = benchmark.pedantic(
        run_fig6_hybrid_accuracy,
        kwargs={"scales": scales, "rounds": 10 if full_scale() else 5, "feature_dim": 512},
        rounds=1,
        iterations=1,
    )
    # The paper's headline claim: every deviation within +/-0.5 pct pts.
    assert result.max_abs_diff() < 0.5
    persist_result("fig6_hybrid_accuracy", format_fig6(result))
