"""Ablation: the hybrid allocation optimizer.

Three studies around the §IV-B design choice:

* *optimizer-vs-fixed sweep* — how much makespan the optimizer saves over
  the best fixed ratio as the High/Low mix varies;
* *solver agreement* — the exact candidate search against the scipy MILP
  encoding on randomized instances;
* *solver scaling* — candidate-search latency as device counts grow
  (the scheduler runs it on every task submission).
"""

import numpy as np

from conftest import full_scale

from repro.experiments.fig6 import TYPE_RATIOS
from repro.experiments.fig7 import paper_problem
from repro.experiments.render import format_table
from repro.scheduler.allocation import (
    AllocationProblem,
    GradeAllocationParams,
    fixed_ratio_allocation,
    solve_allocation,
    solve_allocation_milp,
)


def optimizer_saving_sweep():
    """Makespan saving of the optimizer vs the best fixed ratio."""
    rows = []
    for n_high, n_low in ((50, 450), (250, 250), (450, 50), (100, 100), (500, 500)):
        problem = paper_problem(n_high, n_low)
        best_fixed = min(
            fixed_ratio_allocation(problem, f).total_time for _, f in TYPE_RATIOS
        )
        optimal = solve_allocation(problem).total_time
        rows.append((n_high, n_low, round(best_fixed, 1), round(optimal, 1),
                     round(100.0 * (best_fixed - optimal) / best_fixed, 2)))
    return rows


def test_optimizer_saving_sweep(benchmark, persist_result):
    rows = benchmark.pedantic(optimizer_saving_sweep, rounds=3, iterations=1)
    for _, _, best_fixed, optimal, _ in rows:
        assert optimal <= best_fixed + 1e-9
    persist_result(
        "ablation_allocation_saving",
        format_table(
            "Ablation: optimizer vs best fixed ratio",
            ["High", "Low", "best fixed (s)", "optimizer (s)", "saving %"],
            rows,
        ),
    )


def random_instances(count: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    instances = []
    for _ in range(count):
        grades = []
        for grade in ("High", "Low"):
            k = int(rng.integers(1, 8))
            grades.append(
                GradeAllocationParams(
                    grade=grade,
                    n_devices=int(rng.integers(1, 120)),
                    bundles=k * int(rng.integers(1, 15)),
                    units_per_device=k,
                    n_phones=int(rng.integers(1, 20)),
                    alpha=float(rng.uniform(1.0, 40.0)),
                    beta=float(rng.uniform(1.0, 40.0)),
                    lam=float(rng.uniform(0.0, 120.0)),
                )
            )
        instances.append(AllocationProblem(grades))
    return instances


def test_milp_agrees_with_search(benchmark, persist_result):
    instances = random_instances(20 if full_scale() else 8)

    def agree():
        worst_gap = 0.0
        for problem in instances:
            search = solve_allocation(problem)
            milp = solve_allocation_milp(problem)
            gap = abs(search.total_time - milp.total_time)
            worst_gap = max(worst_gap, gap)
        return worst_gap

    worst_gap = benchmark.pedantic(agree, rounds=1, iterations=1)
    assert worst_gap < 1e-6
    persist_result(
        "ablation_allocation_milp_agreement",
        f"Exact search vs scipy MILP on {len(instances)} random 2-grade "
        f"instances: worst makespan gap = {worst_gap:.2e} s",
    )


def test_search_solver_scaling(benchmark, persist_result):
    scale = 100_000 if full_scale() else 20_000

    def solve_large():
        problem = paper_problem(scale, scale)
        return solve_allocation(problem).total_time

    benchmark(solve_large)
    persist_result(
        "ablation_allocation_scaling",
        f"Candidate-search solver at N={scale}+{scale} devices: "
        f"mean {benchmark.stats['mean'] * 1e3:.2f} ms per solve",
    )
