"""Bench: regenerate Table II (dispatch fidelity for six curve families)."""

from repro.experiments import format_table2, run_table2_curve_fidelity


def test_table2_curve_fidelity(benchmark, persist_result):
    result = benchmark.pedantic(
        run_table2_curve_fidelity,
        kwargs={"n_messages": 10_000, "interval_seconds": 60.0},
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 6
    assert result.min_correlation() > 0.99  # the paper's claim for every row
    persist_result("table2_curve_fidelity", format_table2(result))
