"""Bench: regenerate Fig. 11 (dropout vs data distribution)."""

from conftest import full_scale

from repro.experiments import format_fig11, run_fig11_dropout_impact


def test_fig11_dropout(benchmark, persist_result):
    kwargs = (
        {"dropouts": (0.0, 0.3, 0.7, 0.9), "n_devices": 1000, "rounds": 10}
        if full_scale()
        else {"dropouts": (0.0, 0.3, 0.7, 0.9), "n_devices": 120, "rounds": 10,
              "feature_dim": 512}
    )
    result = benchmark.pedantic(
        run_fig11_dropout_impact, kwargs=kwargs, rounds=1, iterations=1
    )
    # (a) IID: dropout leaves final accuracy roughly unchanged.
    assert abs(
        result.final_accuracy("iid", 0.0) - result.final_accuracy("iid", 0.9)
    ) < 0.08
    # (b) skewed: high dropout destabilises convergence.
    assert result.volatility("skewed", 0.9) > result.volatility("skewed", 0.0)
    persist_result("fig11_dropout", format_fig11(result))
