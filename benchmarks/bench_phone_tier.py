"""Bench: the wave-scheduled physical tier vs the legacy generator path.

Table-I / Fig-5 style runs put hundreds of emulated devices per round on
the phone cluster; before the wave schedule every one of them cost a
generator process plus three heap events (push, training signal, upload),
and every benchmarking phone ran its own 1 Hz sampler process with five
ADB string round-trips per sample.  This sweep measures emulated devices
per round (500 -> 5k across 32-256 phones, legacy vs batched) with a pair
of benchmarking phones polling throughout, and asserts the fast path
changed *nothing* about the simulation: same makespan, same completion
times, same benchmark sample series.

``measure_phone_tier_speedup`` is a plain function so ``ci_gate.py`` can
gate the 5k-device point (>=3x floor).
"""

import time

import numpy as np
from conftest import full_scale

from repro.cluster.actor import DeviceAssignment
from repro.experiments.render import format_table
from repro.ml import standard_fl_flow
from repro.phones import PhoneAssignment, PhoneMgr, SimulatedAdb, VirtualPhone, build_fleet
from repro.simkernel import RandomStreams, Simulator

#: Devices-per-round sweep (paper-style Table-I rounds scaled up).
SWEEP = ((500, 32), (1_000, 64), (2_000, 128), (5_000, 256))
N_BENCH = 2


def phone_round_result(n_devices: int, n_phones: int, batch: bool, n_bench: int = N_BENCH) -> dict:
    """One actual simulated round of the physical tier at ``n_devices``.

    ``batch=False`` is the legacy per-event execution; ``batch=True``
    drives the same plan through per-phone cumsum wave schedules, the
    shared sampler ticker and columnar outcome blocks.  Fleet construction
    and task preparation (identical in both modes, and paid once per task
    rather than per round) run before the timer starts; the reported wall
    time covers exactly one round.  Returns the simulated makespan, the
    sorted completion times and the benchmark sample series so callers can
    assert the paths are identical.
    """
    sim = Simulator()
    adb = SimulatedAdb()
    streams = RandomStreams(0)
    phones = []
    for i, spec in enumerate(build_fleet(n_phones + n_bench, 0, prefix="BNCH")):
        phone = VirtualPhone(sim, f"bench-{i:04d}", spec, streams=streams)
        adb.register(phone)
        phones.append(phone)
    samples = []
    mgr = PhoneMgr(sim, adb, phones, streams=streams, batch=batch, on_sample=samples.append)
    plan = PhoneAssignment(
        grade="High",
        assignments=[DeviceAssignment(f"d{i:05d}", "High", 10 + (i % 7)) for i in range(n_devices)],
        benchmarking=[DeviceAssignment(f"b{i}", "High", 10) for i in range(n_bench)],
        n_phones=n_phones,
        flow=standard_fl_flow(),
        numeric=False,
    )
    sim.process(mgr.prepare([plan], task_id="bench"))
    sim.run(batch=batch)
    round_started = sim.now

    wall_start = time.perf_counter()
    proc = sim.process(mgr.run_round(1, None, 0.0, 33_000, None))
    sim.run(batch=batch)
    wall = time.perf_counter() - wall_start

    result = proc.result
    return {
        "wall": wall,
        "makespan": sim.now - round_started,
        "finished": np.sort(result.finished_times()),
        "n_outcomes": result.n_devices,
        "samples": samples,
        "sessions": sum(p.sessions_completed for p in phones),
    }


def measure_phone_tier_speedup(n_devices: int, n_phones: int, repeats: int = 2) -> dict:
    """Wall-clock comparison of legacy vs wave-scheduled phone rounds.

    ``identical`` is true only when both paths report the same simulated
    makespan, bit-identical sorted completion times, the same number of
    emulated sessions on the fleet, and an identical benchmark sample
    series (timestamps and contents).
    """

    def best(batch: bool) -> tuple[float, dict]:
        walls, result = [], None
        for _ in range(repeats):
            result = phone_round_result(n_devices, n_phones, batch=batch)
            walls.append(result["wall"])
        return min(walls), result

    legacy_wall, legacy = best(batch=False)
    batched_wall, batched = best(batch=True)
    identical = (
        legacy["makespan"] == batched["makespan"]
        and legacy["n_outcomes"] == batched["n_outcomes"]
        and legacy["sessions"] == batched["sessions"]
        and legacy["finished"].tobytes() == batched["finished"].tobytes()
        and len(legacy["samples"]) == len(batched["samples"])
        and all(a == b for a, b in zip(legacy["samples"], batched["samples"]))
    )
    return {
        "n_devices": n_devices,
        "n_phones": n_phones,
        "legacy_wall_s": legacy_wall,
        "batched_wall_s": batched_wall,
        "makespan_s": legacy["makespan"],
        "batched_speedup": legacy_wall / batched_wall,
        "identical": identical,
    }


def test_phone_tier_sweep(persist_result):
    """The wave schedule beats per-device generators across the sweep.

    The gate demands >=3x at the 5k-device point with zero change to the
    simulated round (makespan, completion times, sample series compared
    bit-for-bit); smaller points are reported for the scaling shape.
    """
    sweep = SWEEP if full_scale() else SWEEP[:1] + SWEEP[-1:]
    rows = []
    final = None
    for n_devices, n_phones in sweep:
        stats = measure_phone_tier_speedup(n_devices, n_phones)
        assert stats["identical"], (
            f"batched phone tier changed the simulated round at n={n_devices}"
        )
        rows.append(
            (
                n_devices,
                n_phones,
                round(stats["legacy_wall_s"] * 1e3, 1),
                round(stats["batched_wall_s"] * 1e3, 1),
                f"{stats['batched_speedup']:.1f}x",
            )
        )
        final = stats
    assert final["batched_speedup"] >= 3.0
    persist_result(
        "phone_tier_sweep",
        format_table(
            "Phone tier: emulated devices per round, legacy vs wave-scheduled "
            "(simulated results bit-identical)",
            ["devices", "phones", "legacy ms", "batched ms", "speedup"],
            rows,
        ),
    )
