"""Bench: columnar cloud ingestion vs the per-device scalar hot loop.

After PR 4 batched both execution tiers, the profiled per-device cost of
a large direct round lived entirely on the cloud side: one
``ObjectStorage.put``, one ``Message`` object, one ``receive_message``
(with its storage ``get``) and one ``FedAvgAggregator.add`` per simulated
device.  The columnar ingestion API collapses all of that to one
``put_block``, one ``MessageBlock`` and one ``receive_block`` exact fold
per round.  This sweep measures ingest-and-aggregate wall time for a
whole round at 5k-50k devices and asserts the two paths leave storage
and the aggregated model bit-identical.

``measure_cloud_block_speedup`` is a plain function so ``ci_gate.py``
can gate the 12k-device point (>=2x floor).
"""

import time

import numpy as np
from conftest import full_scale

from repro.cloud import AggregationService, ObjectStorage
from repro.cloud.aggregation import AggregationTrigger
from repro.deviceflow import Message, MessageBlock
from repro.experiments.render import format_table
from repro.ml.fedavg import ModelUpdate
from repro.ml.model import LogisticRegressionModel
from repro.simkernel import Simulator

#: Devices-per-round sweep (a Fig. 8-scale direct task's upload burst).
SWEEP = (5_000, 10_000, 20_000, 50_000)
FEATURE_DIM = 64
PAYLOAD_BYTES = FEATURE_DIM * 8 + 8 + 64


def make_round_updates(n_devices: int, seed: int = 0):
    """One round's stacked updates plus per-device metadata arrays."""
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((n_devices, FEATURE_DIM))
    biases = rng.standard_normal(n_devices)
    n_samples = rng.integers(5, 40, size=n_devices).astype(np.int64)
    finished_at = np.sort(rng.uniform(100.0, 200.0, size=n_devices))
    device_ids = [f"d{i:06d}" for i in range(n_devices)]
    refs = [f"bench/{d}/r1" for d in device_ids]
    return weights, biases, n_samples, finished_at, device_ids, refs


def ingest_round(n_devices: int, block: bool) -> dict:
    """Ingest and fold one round; returns wall time and result fingerprints."""
    weights, biases, n_samples, finished_at, device_ids, refs = make_round_updates(n_devices)
    sim = Simulator()
    storage = ObjectStorage()
    service = AggregationService(
        sim, storage, AggregationTrigger(), model=LogisticRegressionModel(FEATURE_DIM)
    )

    wall_start = time.perf_counter()
    if block:
        storage.put_block(
            refs,
            [None] * n_devices,  # payload never read on the block path
            PAYLOAD_BYTES,
            now=finished_at,
            writers=device_ids,
        )
        service.receive_block(
            MessageBlock(
                task_id="bench",
                round_index=1,
                device_ids=device_ids,
                payload_refs=refs,
                size_bytes=PAYLOAD_BYTES,
                n_samples=n_samples,
                finished_at=finished_at,
                update_weights=weights,
                update_biases=biases,
            )
        )
    else:
        for i, (device_id, ref) in enumerate(zip(device_ids, refs)):
            update = ModelUpdate(
                device_id=device_id,
                round_index=1,
                weights=weights[i],
                bias=float(biases[i]),
                n_samples=int(n_samples[i]),
            )
            storage.put(ref, update, PAYLOAD_BYTES, now=float(finished_at[i]), writer=device_id)
            service.receive_message(
                Message(
                    task_id="bench",
                    device_id=device_id,
                    round_index=1,
                    payload_ref=ref,
                    size_bytes=PAYLOAD_BYTES,
                    n_samples=int(n_samples[i]),
                )
            )
    record = service.aggregate_now()
    wall = time.perf_counter() - wall_start

    return {
        "wall": wall,
        "model_weights": service.model.weights.tobytes(),
        "model_bias": service.model.bias,
        "n_updates": record.n_updates,
        "n_samples": record.n_samples,
        "put_count": storage.put_count,
        "bytes_written": storage.total_bytes_written,
        "bytes_received": service.bytes_received,
        "stored_keys": storage.keys(),
        "stored_at": tuple(storage.head(k).stored_at for k in storage.keys()[:64]),
    }


def measure_cloud_block_speedup(n_devices: int, repeats: int = 2) -> dict:
    """Wall-clock comparison of scalar vs columnar cloud ingestion.

    ``identical`` is true only when both paths leave a bit-identical
    global model, the same aggregation record counters, and
    indistinguishable storage state (keys, byte accounting, per-key
    ``stored_at`` stamps).
    """

    def best(block: bool) -> tuple[float, dict]:
        walls, result = [], None
        for _ in range(repeats):
            result = ingest_round(n_devices, block=block)
            walls.append(result["wall"])
        return min(walls), result

    scalar_wall, scalar = best(block=False)
    block_wall, blocked = best(block=True)
    identical = all(scalar[key] == blocked[key] for key in scalar if key != "wall")
    return {
        "n_devices": n_devices,
        "scalar_wall_s": scalar_wall,
        "block_wall_s": block_wall,
        "block_speedup": scalar_wall / block_wall,
        "identical": identical,
    }


def test_cloud_ingest_sweep(persist_result):
    """Columnar ingestion beats the scalar loop across the sweep.

    The gate demands >=2x at the 12k-device point with the global model,
    aggregation counters and storage state compared bit-for-bit; smaller
    points are reported for the scaling shape.
    """
    sweep = SWEEP if full_scale() else SWEEP[:1] + SWEEP[1:2]
    rows = []
    final = None
    for n_devices in sweep:
        stats = measure_cloud_block_speedup(n_devices)
        assert stats["identical"], (
            f"block ingestion changed the simulated cloud state at n={n_devices}"
        )
        rows.append(
            (
                n_devices,
                round(stats["scalar_wall_s"] * 1e3, 1),
                round(stats["block_wall_s"] * 1e3, 1),
                f"{stats['block_speedup']:.1f}x",
            )
        )
        final = stats
    assert final["block_speedup"] >= 2.0
    persist_result(
        "cloud_ingest_sweep",
        format_table(
            "Cloud tier: one round ingested and folded, per-device scalar vs "
            "columnar block (results bit-identical)",
            ["devices", "scalar ms", "block ms", "speedup"],
            rows,
        ),
    )
