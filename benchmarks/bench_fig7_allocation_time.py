"""Bench: regenerate Fig. 7 (execution time vs scale for Types 1-5 + optimizer)."""

from repro.experiments import format_fig7, run_fig7_allocation_time
from repro.experiments.fig6 import TYPE_RATIOS


def test_fig7_allocation_time(benchmark, persist_result):
    result = benchmark.pedantic(run_fig7_allocation_time, rounds=3, iterations=1)
    for scale in result.scales:
        optimum = result.times[("Optimization", scale)]
        for type_name, _ in TYPE_RATIOS:
            assert optimum <= result.times[(type_name, scale)] + 1e-9
    # Paper shape: logical wins small scales, physical wins large ones.
    assert result.times[("Type 1", (4, 4))] < result.times[("Type 5", (4, 4))]
    assert result.times[("Type 5", (500, 500))] < result.times[("Type 1", (500, 500))]
    persist_result("fig7_allocation_time", format_fig7(result))
