"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, times
the regeneration with pytest-benchmark, and persists the rendered rows to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite them.

Scale knobs: benches default to *medium* scale so the whole harness
finishes in minutes.  Set ``SIMDC_BENCH_FULL=1`` to run the paper-scale
parameters (500+500 devices, 1000-device dropout runs, ...).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """Whether paper-scale parameters were requested."""
    return os.environ.get("SIMDC_BENCH_FULL", "") == "1"


@pytest.fixture()
def persist_result():
    """Write a rendered table to benchmarks/results/ and echo it."""

    def _persist(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _persist
