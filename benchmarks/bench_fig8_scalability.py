"""Bench: regenerate Fig. 8 (single-round time vs scale, three simulators).

Also validates the SimDC closed-form round model against an actual
event-driven round of the logical tier at a mid scale, so the sweep's
numbers are anchored to the executable platform rather than free-floating
constants.
"""

from conftest import full_scale

from repro.baselines import SimDCRoundModel
from repro.cluster import (
    DeviceAssignment,
    GradeExecutionPlan,
    K8sCluster,
    LogicalCostModel,
    LogicalSimulation,
    NodeSpec,
    ResourceBundle,
)
from repro.experiments import format_fig8, run_fig8_scalability
from repro.ml import standard_fl_flow
from repro.simkernel import Simulator


def event_driven_round_time(n_devices: int, total_cores: int = 200) -> float:
    """One actual simulated round of the logical tier at ``n_devices``."""
    model = SimDCRoundModel(total_cores=total_cores)
    sim = Simulator()
    cluster = K8sCluster([NodeSpec(cpus=20, memory_gb=30)] * (total_cores // 20))
    cost = LogicalCostModel(
        alpha={"Std": model.device_round_s},
        actor_startup=0.0,
        runner_setup=model.runner_setup_s,
        download_latency=model.download_s / 2,
        download_bandwidth_bps=1e18,
    )
    logical = LogicalSimulation(sim, cluster, cost)
    flow = standard_fl_flow()
    plan = GradeExecutionPlan(
        grade="Std",
        assignments=[DeviceAssignment(f"d{i}", "Std", 10) for i in range(n_devices)],
        n_actors=total_cores,
        bundle=ResourceBundle(cpus=1, memory_gb=1),
        flow=flow,
        numeric=False,
    )

    def run():
        start = sim.now
        yield sim.process(logical.prepare([plan]))
        yield sim.process(logical.run_round(1, None, 0.0, 0, lambda o: None))
        return sim.now - start

    proc = sim.process(run())
    sim.run()
    logical.teardown()
    return proc.result


def test_fig8_scalability(benchmark, persist_result):
    result = benchmark.pedantic(run_fig8_scalability, rounds=1, iterations=1)
    # Shape assertions from the paper's narrative.
    assert result.simdc[0] > result.fedscale[0]
    assert result.simdc[0] > result.federatedscope[0]
    assert result.crossover_scale() <= 10_000
    persist_result("fig8_scalability", format_fig8(result))


def test_fig8_event_driven_anchor(benchmark, persist_result):
    """The closed-form SimDC model matches the executable logical tier."""
    scale = 10_000 if full_scale() else 2_000
    measured = benchmark.pedantic(
        event_driven_round_time, kwargs={"n_devices": scale}, rounds=1, iterations=1
    )
    predicted = SimDCRoundModel().round_time(scale)
    assert abs(measured - predicted) / predicted < 0.25
    persist_result(
        "fig8_event_driven_anchor",
        f"Fig. 8 anchor at n={scale}: event-driven {measured:.1f}s "
        f"vs closed-form {predicted:.1f}s",
    )
