"""Bench: regenerate Fig. 8 (single-round time vs scale, three simulators).

Also validates the SimDC closed-form round model against an actual
event-driven round of the logical tier at a mid scale, so the sweep's
numbers are anchored to the executable platform rather than free-floating
constants — and measures the batched/sharded fast path against the legacy
per-event execution at the paper's 100k-device scale
(``test_fig8_batched_sharded_speedup``).
"""

import time

import numpy as np
from conftest import full_scale

from repro.baselines import SimDCRoundModel
from repro.cloud import CallbackSink
from repro.cluster import (
    DeviceAssignment,
    GradeExecutionPlan,
    K8sCluster,
    LogicalCostModel,
    LogicalSimulation,
    NodeSpec,
    ResourceBundle,
    ShardedLogicalSimulation,
)
from repro.data.avazu import DeviceDataset
from repro.experiments import format_fig8, run_fig8_scalability
from repro.ml import standard_fl_flow
from repro.ml.fedavg import FedAvgPartial
from repro.simkernel import RandomStreams, Simulator

#: Numeric-sweep workload: small shards and a modest model keep the ML math
#: per device light, so the comparison stresses execution strategy (per
#: device generators vs stacked waves), not BLAS throughput.
NUMERIC_FEATURE_DIM = 64
NUMERIC_RECORDS = 8
NUMERIC_FIELDS = 4
NUMERIC_EPOCHS = 1


def _sweep_cost_model(total_cores: int) -> LogicalCostModel:
    model = SimDCRoundModel(total_cores=total_cores)
    return LogicalCostModel(
        alpha={"Std": model.device_round_s},
        actor_startup=0.0,
        runner_setup=model.runner_setup_s,
        download_latency=model.download_s / 2,
        download_bandwidth_bps=1e18,
    )


def _sweep_plan(n_devices: int, total_cores: int) -> GradeExecutionPlan:
    return GradeExecutionPlan(
        grade="Std",
        assignments=[DeviceAssignment(f"d{i}", "Std", 10) for i in range(n_devices)],
        n_actors=total_cores,
        bundle=ResourceBundle(cpus=1, memory_gb=1),
        flow=standard_fl_flow(),
        numeric=False,
    )


def event_driven_round_time(
    n_devices: int,
    total_cores: int = 200,
    n_shards: int = 1,
    batch: bool = False,
) -> float:
    """One actual simulated round of the logical tier at ``n_devices``.

    ``batch=False, n_shards=1`` (the default) is the legacy per-event
    execution: every device advances through generator processes and two
    heap events.  ``batch=True`` switches to batched kernel stepping plus
    the pooled columnar round; ``n_shards > 1`` additionally partitions the
    plan over multiprocessing workers.  All configurations report the same
    simulated round time — the sharded path is bit-identical at
    ``n_shards=1`` and metric-identical beyond.
    """
    nodes = [NodeSpec(cpus=20, memory_gb=30)] * (total_cores // 20)
    cost = _sweep_cost_model(total_cores)
    if batch or n_shards > 1:
        sharded = ShardedLogicalSimulation(nodes, cost, n_shards=n_shards, batch=True)
        result = sharded.run_rounds(
            [_sweep_plan(n_devices, total_cores)],
            n_rounds=1,
            model_bytes=0,
            collect_outcomes=False,
        )
        # The shard clock starts at 0, so the last completion time equals
        # the legacy path's prepare + round elapsed measure.
        return result.rounds[0].finished_at

    sim = Simulator()
    cluster = K8sCluster(nodes)
    logical = LogicalSimulation(sim, cluster, cost, batch=False)
    plan = _sweep_plan(n_devices, total_cores)

    def run():
        start = sim.now
        yield sim.process(logical.prepare([plan]))
        yield sim.process(logical.run_round(1, None, 0.0, 0, CallbackSink(lambda o: None)))
        return sim.now - start

    proc = sim.process(run())
    sim.run()
    logical.teardown()
    return proc.result


def _numeric_sweep_plan(n_devices: int, total_cores: int) -> GradeExecutionPlan:
    rng = np.random.default_rng(12345)
    features = rng.integers(
        0, NUMERIC_FEATURE_DIM, size=(n_devices, NUMERIC_RECORDS, NUMERIC_FIELDS)
    ).astype(np.int32)
    labels = rng.integers(0, 2, size=(n_devices, NUMERIC_RECORDS)).astype(np.int8)
    return GradeExecutionPlan(
        grade="Std",
        assignments=[
            DeviceAssignment(
                f"d{i}",
                "Std",
                NUMERIC_RECORDS,
                dataset=DeviceDataset(f"d{i}", features[i], labels[i]),
            )
            for i in range(n_devices)
        ],
        n_actors=total_cores,
        bundle=ResourceBundle(cpus=1, memory_gb=1),
        flow=standard_fl_flow(epochs=NUMERIC_EPOCHS),
        feature_dim=NUMERIC_FEATURE_DIM,
        numeric=True,
    )


def numeric_round_result(n_devices: int, total_cores: int = 200, batch: bool = False) -> dict:
    """One actual *numeric* round: ML training executes inside the round.

    ``batch=False`` is the legacy path — one generator per device, each
    running its own per-device SGD.  ``batch=True`` drives the same plan
    through the wave schedule, training each wave as one stacked weight
    matrix.  Returns the simulated round time plus the FedAvg-aggregated
    global model, so callers can assert the fast path changed *nothing*
    about the simulation's results.
    """
    nodes = [NodeSpec(cpus=20, memory_gb=30)] * (total_cores // 20)
    cost = _sweep_cost_model(total_cores)
    sim = Simulator()
    logical = LogicalSimulation(
        sim, K8sCluster(nodes), cost, streams=RandomStreams(0), batch=batch
    )
    plan = _numeric_sweep_plan(n_devices, total_cores)

    def run():
        start = sim.now
        yield sim.process(logical.prepare([plan]))
        yield sim.process(
            logical.run_round(1, np.zeros(NUMERIC_FEATURE_DIM), 0.0, 4096, None)
        )
        return sim.now - start

    proc = sim.process(run())
    sim.run(batch=batch)
    weights, biases, n_samples = logical.rounds[0].fedavg_inputs()
    global_weights, global_bias = FedAvgPartial.from_arrays(weights, biases, n_samples).finalize()
    logical.teardown()
    return {
        "round_s": proc.result,
        "global_weights": global_weights,
        "global_bias": global_bias,
    }


def measure_numeric_sweep_speedup(
    n_devices: int, total_cores: int = 200, repeats: int = 2
) -> dict:
    """Wall-clock comparison of legacy vs batched *numeric* rounds.

    Plain-function form so ``ci_gate.py`` can reuse it.  ``identical`` is
    true only when both paths report the same simulated round time AND
    bit-identical FedAvg-aggregated global weights.
    """

    def best(batch: bool) -> tuple[float, dict]:
        walls, result = [], None
        for _ in range(repeats):
            start = time.perf_counter()
            result = numeric_round_result(n_devices, total_cores, batch=batch)
            walls.append(time.perf_counter() - start)
        return min(walls), result

    legacy_wall, legacy = best(batch=False)
    batched_wall, batched = best(batch=True)
    identical = (
        legacy["round_s"] == batched["round_s"]
        and legacy["global_weights"].tobytes() == batched["global_weights"].tobytes()
        and legacy["global_bias"] == batched["global_bias"]
    )
    return {
        "n_devices": n_devices,
        "legacy_wall_s": legacy_wall,
        "batched_wall_s": batched_wall,
        "legacy_round_s": legacy["round_s"],
        "batched_round_s": batched["round_s"],
        "batched_speedup": legacy_wall / batched_wall,
        "identical": identical,
    }


def measure_sweep_speedup(n_devices: int, total_cores: int = 200, repeats: int = 2) -> dict:
    """Wall-clock comparison of the legacy vs batched/sharded sweep.

    Plain-function form so ``ci_gate.py`` can reuse it.  Returns wall times
    (best of ``repeats``), the simulated round times (for the identity
    check) and the speedups of each new configuration over legacy.
    """

    def best(**kwargs) -> tuple[float, float]:
        walls, round_time = [], None
        for _ in range(repeats):
            start = time.perf_counter()
            round_time = event_driven_round_time(n_devices, total_cores, **kwargs)
            walls.append(time.perf_counter() - start)
        return min(walls), round_time

    legacy_wall, legacy_round = best()
    batched_wall, batched_round = best(batch=True, n_shards=1)
    sharded_wall, sharded_round = best(batch=True, n_shards=4)
    return {
        "n_devices": n_devices,
        "legacy_wall_s": legacy_wall,
        "batched_wall_s": batched_wall,
        "sharded4_wall_s": sharded_wall,
        "legacy_round_s": legacy_round,
        "batched_round_s": batched_round,
        "sharded4_round_s": sharded_round,
        "batched_speedup": legacy_wall / batched_wall,
        "sharded4_speedup": legacy_wall / sharded_wall,
        "best_speedup": legacy_wall / min(batched_wall, sharded_wall),
    }


def test_fig8_scalability(benchmark, persist_result):
    result = benchmark.pedantic(run_fig8_scalability, rounds=1, iterations=1)
    # Shape assertions from the paper's narrative.
    assert result.simdc[0] > result.fedscale[0]
    assert result.simdc[0] > result.federatedscope[0]
    assert result.crossover_scale() <= 10_000
    persist_result("fig8_scalability", format_fig8(result))


def test_fig8_event_driven_anchor(benchmark, persist_result):
    """The closed-form SimDC model matches the executable logical tier."""
    scale = 10_000 if full_scale() else 2_000
    measured = benchmark.pedantic(
        event_driven_round_time, kwargs={"n_devices": scale}, rounds=1, iterations=1
    )
    predicted = SimDCRoundModel().round_time(scale)
    assert abs(measured - predicted) / predicted < 0.25
    persist_result(
        "fig8_event_driven_anchor",
        f"Fig. 8 anchor at n={scale}: event-driven {measured:.1f}s "
        f"vs closed-form {predicted:.1f}s",
    )


def test_fig8_numeric_batched_speedup(persist_result):
    """Vectorized numeric rounds beat per-device generators at 10k devices.

    The paper's Fig. 9/10-style federated sweeps execute the ML round
    inside the simulator; this is the workload the batched numeric path
    exists for.  The gate demands >=3x at 10k devices with *zero* change
    to simulated results (round time and aggregated global weights are
    compared bit-for-bit against the generator path).
    """
    scale = 10_000
    stats = measure_numeric_sweep_speedup(scale)
    assert stats["identical"], "batched numeric path changed the simulated results"
    assert stats["batched_speedup"] >= 3.0
    persist_result(
        "fig8_numeric_batched_speedup",
        f"Fig. 8 numeric sweep at n={scale} (simulated round "
        f"{stats['legacy_round_s']:.1f}s, results bit-identical)\n"
        f"  legacy per-device generators : {stats['legacy_wall_s'] * 1e3:7.1f} ms\n"
        f"  batched stacked waves        : {stats['batched_wall_s'] * 1e3:7.1f} ms "
        f"({stats['batched_speedup']:.1f}x, target >=3x)",
    )


def test_fig8_batched_sharded_speedup(persist_result):
    """Batched stepping + sharding beat the legacy path at the 100k sweep.

    At full scale this is the paper's 100k-device non-numeric sweep; the
    default CI scale keeps the same shape at 20k devices.  On multi-core
    runners ``n_shards=4`` wins outright; on single-core containers the
    fork overhead makes the in-process batched path the best configuration,
    so the >=5x gate applies to the best of the two (both are reported).
    """
    scale = 100_000 if full_scale() else 20_000
    stats = measure_sweep_speedup(scale)
    # The fast paths must not change the simulated result: n_shards=1 is
    # bit-identical, n_shards=4 metric-identical.
    assert stats["batched_round_s"] == stats["legacy_round_s"]
    assert stats["sharded4_round_s"] == stats["legacy_round_s"]
    assert stats["best_speedup"] >= 5.0
    persist_result(
        "fig8_batched_sharded_speedup",
        f"Fig. 8 non-numeric sweep at n={scale} (simulated round "
        f"{stats['legacy_round_s']:.1f}s)\n"
        f"  legacy per-event   : {stats['legacy_wall_s'] * 1e3:7.1f} ms\n"
        f"  batched, 1 shard   : {stats['batched_wall_s'] * 1e3:7.1f} ms "
        f"({stats['batched_speedup']:.1f}x)\n"
        f"  batched, 4 shards  : {stats['sharded4_wall_s'] * 1e3:7.1f} ms "
        f"({stats['sharded4_speedup']:.1f}x)\n"
        f"  best speedup       : {stats['best_speedup']:.1f}x (target >=5x)",
    )
