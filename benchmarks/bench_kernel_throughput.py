"""Microbench: discrete-event kernel throughput.

Everything in SimDC reduces to kernel events; these numbers bound how big
a simulation one wall-clock second buys (the 100k-device sweeps of Fig. 8
schedule roughly one million events).

The paired ``*_batched`` / pooled variants exercise the fast paths added
for the scalability work: same-timestamp batch draining (``run(batch=
True)``) and the vectorized :class:`TimeoutPool`.  ``test_batched_vs_
legacy_report`` persists the old-vs-new ratios that the CI regression gate
(``benchmarks/ci_gate.py``) checks on every push.
"""

import time

from conftest import full_scale

from repro.simkernel import Semaphore, Simulator, Timeout, TimeoutPool


def schedule_and_drain(n_events: int, batch: bool = False) -> None:
    sim = Simulator()
    for i in range(n_events):
        sim.schedule(float(i % 97), lambda: None)
    sim.run(batch=batch)


def schedule_and_drain_batched(n_events: int) -> None:
    schedule_and_drain(n_events, batch=True)


def pooled_timeouts(n_entries: int) -> None:
    """The TimeoutPool counterpart of ``schedule_and_drain``."""
    sim = Simulator()
    pool = TimeoutPool(sim)

    def noop() -> None:
        return None

    for i in range(n_entries):
        pool.add(float(i % 97), noop)
    sim.run(batch=True)


def process_chains(n_processes: int, hops: int) -> None:
    sim = Simulator()

    def worker():
        for _ in range(hops):
            yield Timeout(1.0)

    for _ in range(n_processes):
        sim.process(worker())
    sim.run()


def contended_semaphore(n_workers: int) -> None:
    sim = Simulator()
    sem = Semaphore(sim, capacity=8)

    def worker():
        yield sem.acquire()
        yield Timeout(1.0)
        sem.release()

    for _ in range(n_workers):
        sim.process(worker())
    sim.run()


def bench_scale() -> int:
    return 200_000 if full_scale() else 50_000


def measure_throughputs(n_events: int, repeats: int = 3) -> dict:
    """Events/second for the legacy, batched and pooled drain paths.

    Plain-function form (no pytest-benchmark) so ``ci_gate.py`` can reuse
    it; takes the best of ``repeats`` runs to damp scheduler noise.
    """

    def best(fn) -> float:
        walls = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn(n_events)
            walls.append(time.perf_counter() - start)
        return n_events / min(walls)

    legacy = best(schedule_and_drain)
    batched = best(schedule_and_drain_batched)
    pooled = best(pooled_timeouts)
    return {
        "n_events": n_events,
        "events_per_sec_legacy": legacy,
        "events_per_sec_batched": batched,
        "events_per_sec_pooled": pooled,
        "batched_speedup": batched / legacy,
        "pooled_speedup": pooled / legacy,
    }


def test_event_throughput(benchmark):
    benchmark.pedantic(schedule_and_drain, args=(bench_scale(),), rounds=3, iterations=1)


def test_event_throughput_batched(benchmark):
    benchmark.pedantic(schedule_and_drain_batched, args=(bench_scale(),), rounds=3, iterations=1)


def test_timeout_pool_throughput(benchmark):
    benchmark.pedantic(pooled_timeouts, args=(bench_scale(),), rounds=3, iterations=1)


def test_process_switching(benchmark):
    benchmark.pedantic(process_chains, args=(2_000, 20), rounds=3, iterations=1)


def test_semaphore_contention(benchmark):
    benchmark.pedantic(contended_semaphore, args=(5_000,), rounds=3, iterations=1)


def test_batched_vs_legacy_report(persist_result):
    stats = measure_throughputs(bench_scale())
    # Batch draining must never be slower than one-at-a-time stepping on
    # this workload (~515 events share each of 97 timestamps at CI scale).
    assert stats["batched_speedup"] > 0.9
    assert stats["pooled_speedup"] > 0.9
    persist_result(
        "kernel_throughput_batched",
        "Kernel drain throughput (events/s, higher is better)\n"
        f"  legacy  : {stats['events_per_sec_legacy']:,.0f}\n"
        f"  batched : {stats['events_per_sec_batched']:,.0f} ({stats['batched_speedup']:.2f}x)\n"
        f"  pooled  : {stats['events_per_sec_pooled']:,.0f} ({stats['pooled_speedup']:.2f}x)",
    )
