"""Microbench: discrete-event kernel throughput.

Everything in SimDC reduces to kernel events; these numbers bound how big
a simulation one wall-clock second buys (the 100k-device sweeps of Fig. 8
schedule roughly one million events).
"""

from conftest import full_scale

from repro.simkernel import Semaphore, Simulator, Timeout


def schedule_and_drain(n_events: int) -> None:
    sim = Simulator()
    for i in range(n_events):
        sim.schedule(float(i % 97), lambda: None)
    sim.run()


def process_chains(n_processes: int, hops: int) -> None:
    sim = Simulator()

    def worker():
        for _ in range(hops):
            yield Timeout(1.0)

    for _ in range(n_processes):
        sim.process(worker())
    sim.run()


def contended_semaphore(n_workers: int) -> None:
    sim = Simulator()
    sem = Semaphore(sim, capacity=8)

    def worker():
        yield sem.acquire()
        yield Timeout(1.0)
        sem.release()

    for _ in range(n_workers):
        sim.process(worker())
    sim.run()


def test_event_throughput(benchmark):
    n = 200_000 if full_scale() else 50_000
    benchmark.pedantic(schedule_and_drain, args=(n,), rounds=3, iterations=1)


def test_process_switching(benchmark):
    benchmark.pedantic(process_chains, args=(2_000, 20), rounds=3, iterations=1)


def test_semaphore_contention(benchmark):
    benchmark.pedantic(contended_semaphore, args=(5_000,), rounds=3, iterations=1)
