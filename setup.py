"""Legacy setup shim.

The execution environment has setuptools 65 without the ``wheel`` package,
so PEP 517 editable installs (which build a wheel) are unavailable offline.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
take the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
