"""Observability tests: alarm hysteresis, SLA evaluation, autoscaling.

The property tests pin the two contracts the subsystem is built on: the
hysteresis state machine never chatters inside the (clear, warn) band,
and SLA evaluation is a pure, deterministic function of the KPIs.  The
integration tests close the loop — alarms raised from real platform
events drive the autoscaler, byte-identically across the batched and
legacy event loops.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.monitor import Monitor
from repro.observability import (
    AlarmEngine,
    AlarmRule,
    AutoscaleSpec,
    SLASpec,
    evaluate_slas,
    known_metrics,
    metric_value,
    signal_exists,
)
from repro.scenarios import (
    ArrivalSpec,
    DispatchSpec,
    GradeSpec,
    ScenarioRunner,
    ScenarioSpec,
    TenantSpec,
    run_scenario,
)
from repro.scenarios.kpis import StatSummary, TenantKPIs
from repro.simkernel import Simulator


def make_engine(*rules, **kwargs):
    monitor = Monitor(Simulator())
    return AlarmEngine(monitor, rules=rules, **kwargs), monitor


# ----------------------------------------------------------------------
# rule validation and the state machine
# ----------------------------------------------------------------------
class TestAlarmRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlarmRule(name="", signal="queue_depth", warn=1.0)
        with pytest.raises(ValueError):
            AlarmRule(name="r", signal="", warn=1.0)
        with pytest.raises(ValueError):
            AlarmRule(name="r", signal="queue_depth", warn=1.0, direction="sideways")
        with pytest.raises(ValueError):  # critical less severe than warn
            AlarmRule(name="r", signal="queue_depth", warn=5.0, critical=3.0)
        with pytest.raises(ValueError):  # clear on the unhealthy side
            AlarmRule(name="r", signal="queue_depth", warn=5.0, clear=7.0)
        with pytest.raises(ValueError):
            AlarmRule(name="r", signal="queue_depth", warn=1.0, window_s=0.0)
        # "below" direction mirrors the severity ordering.
        AlarmRule(name="r", signal="round_updates", warn=5.0, critical=2.0,
                  clear=8.0, direction="below")
        with pytest.raises(ValueError):
            AlarmRule(name="r", signal="round_updates", warn=5.0, critical=9.0,
                      direction="below")

    def test_target_state_above(self):
        rule = AlarmRule(name="r", signal="queue_depth", warn=5.0, critical=10.0, clear=2.0)
        assert rule.target_state(12.0) == "critical"
        assert rule.target_state(10.0) == "critical"
        assert rule.target_state(7.0) == "warning"
        assert rule.target_state(5.0) == "warning"
        assert rule.target_state(3.0) is None  # hold inside the band
        assert rule.target_state(2.0) == "ok"
        assert rule.target_state(0.0) == "ok"

    def test_target_state_below(self):
        rule = AlarmRule(name="r", signal="round_updates", warn=5.0, critical=2.0,
                         clear=8.0, direction="below")
        assert rule.target_state(1.0) == "critical"
        assert rule.target_state(4.0) == "warning"
        assert rule.target_state(6.0) is None
        assert rule.target_state(9.0) == "ok"

    def test_round_trip(self):
        rule = AlarmRule(name="r", signal="queue_wait_p95", warn=150.0,
                         critical=300.0, clear=100.0, min_hold_s=30.0, tenant="t")
        assert AlarmRule.from_dict(rule.to_dict()) == rule

    def test_signal_exists(self):
        assert signal_exists("queue_depth")
        assert signal_exists("queue_wait_p95")
        assert signal_exists("dropout_loss_rate_mean")
        assert not signal_exists("vibes")
        assert not signal_exists("vibes_p95")


class TestAlarmEngine:
    def test_duplicate_rule_rejected(self):
        engine, _ = make_engine(AlarmRule(name="dup", signal="queue_depth", warn=1.0))
        with pytest.raises(ValueError, match="duplicate"):
            engine.add_rule(AlarmRule(name="dup", signal="queue_depth", warn=9.0))

    def test_gauges_follow_task_lifecycle(self):
        depth = AlarmRule(name="qd", signal="queue_depth", warn=99.0)
        running = AlarmRule(name="run", signal="running_tasks", warn=99.0)
        engine, monitor = make_engine(depth, running)
        monitor.log("task_submitted", task_id="a")
        monitor.log("task_submitted", task_id="b")
        assert engine.value_of(depth) == 2.0
        assert engine.value_of(running) == 0.0
        monitor.log("task_scheduled", task_id="a")
        assert engine.value_of(depth) == 1.0
        assert engine.value_of(running) == 1.0
        monitor.log("task_scheduled", task_id="b")
        monitor.log("task_completed", task_id="a")
        monitor.log("task_failed", task_id="b")
        assert engine.value_of(depth) == 0.0
        assert engine.value_of(running) == 0.0

    def test_raise_and_clear_events(self):
        rule = AlarmRule(name="qd", signal="queue_depth", warn=2.0, clear=0.0)
        engine, monitor = make_engine(rule)
        monitor.log("task_submitted", task_id="a")
        monitor.log("task_submitted", task_id="b")  # depth 2 -> warning
        assert engine.state_of("qd") == "warning"
        assert engine.active_alarms() == {"qd": "warning"}
        raised = monitor.of_kind("alarm_raised")
        assert len(raised) == 1
        assert raised[0].fields["alarm"] == "qd"
        assert raised[0].fields["severity"] == "warning"
        monitor.log("task_scheduled", task_id="a")  # depth 1: in band, holds
        assert engine.state_of("qd") == "warning"
        monitor.log("task_scheduled", task_id="b")  # depth 0 <= clear
        assert engine.state_of("qd") == "ok"
        cleared = monitor.of_kind("alarm_cleared")
        assert len(cleared) == 1 and cleared[0].fields["previous"] == "warning"
        assert engine.summary()["qd"] == {"raised": 1, "cleared": 1, "state": "ok"}

    def test_queue_wait_series_feeds_percentile_rules(self):
        rule = AlarmRule(name="wait", signal="queue_wait_p95", warn=100.0)
        engine, monitor = make_engine(rule)
        sim = monitor.sim
        monitor.log("task_submitted", task_id="a")
        sim.schedule(150.0, lambda: monitor.log("task_scheduled", task_id="a"))
        sim.run()
        assert engine.value_of(rule) == pytest.approx(150.0)
        assert engine.state_of("wait") == "warning"

    def test_round_aggregated_feeds_dropout_loss(self):
        rule = AlarmRule(name="loss", signal="dropout_loss_rate", warn=0.2)
        engine, monitor = make_engine(rule)
        monitor.log("round_aggregated", task_id="t", round=0, n_updates=9, n_devices=10)
        assert engine.state_of("loss") == "ok"
        monitor.log("round_aggregated", task_id="t", round=1, n_updates=5, n_devices=10)
        # windowed mean of [0.1, 0.5] = 0.3 >= 0.2
        assert engine.state_of("loss") == "warning"

    def test_min_hold_defers_transitions(self):
        rule = AlarmRule(name="qd", signal="queue_depth", warn=1.0, min_hold_s=10.0)
        engine, monitor = make_engine(rule)
        sim = monitor.sim
        monitor.log("task_submitted", task_id="a")  # breach at t=0
        assert engine.state_of("qd") == "ok"  # held, not yet raised
        sim.schedule(5.0, lambda: monitor.log("task_scheduled", task_id="a"))  # heals
        sim.run()
        # The breach never held for 10s: no raise at all.
        assert engine.state_of("qd") == "ok"
        assert len(monitor.of_kind("alarm_raised")) == 0

    def test_min_hold_confirms_sustained_breach(self):
        rule = AlarmRule(name="qd", signal="queue_depth", warn=1.0, min_hold_s=10.0)
        engine, monitor = make_engine(rule)
        sim = monitor.sim
        monitor.log("task_submitted", task_id="a")
        sim.run()  # the scheduled confirmation at t=10 fires
        assert sim.now == pytest.approx(10.0)
        assert engine.state_of("qd") == "warning"

    def test_tenant_scoped_rules(self):
        scoped = AlarmRule(name="t1-qd", signal="queue_depth", warn=1.0, tenant="t1")
        glob = AlarmRule(name="all-qd", signal="queue_depth", warn=2.0)
        engine, monitor = make_engine(
            scoped, glob, scope_of=lambda task_id: task_id.split(".")[0]
        )
        monitor.log("task_submitted", task_id="t2.0001")
        assert engine.state_of("t1-qd") == "ok"  # other tenant's queue
        monitor.log("task_submitted", task_id="t1.0001")
        assert engine.state_of("t1-qd") == "warning"
        assert engine.state_of("all-qd") == "warning"  # global sees both

    def test_ingest_sample_custom_signal(self):
        rule = AlarmRule(name="temp", signal="gpu_temp_max", warn=90.0)
        engine, monitor = make_engine(rule)
        engine.ingest_sample("gpu_temp", 85.0)
        assert engine.state_of("temp") == "ok"
        engine.ingest_sample("gpu_temp", 95.0)
        assert engine.state_of("temp") == "warning"


# ----------------------------------------------------------------------
# property: no chatter inside the hysteresis band
# ----------------------------------------------------------------------
class TestHysteresisProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        clear=st.floats(min_value=-100, max_value=100, allow_nan=False),
        band=st.floats(min_value=0.1, max_value=50),
        values=st.lists(
            st.floats(min_value=-200, max_value=300, allow_nan=False),
            min_size=1, max_size=40,
        ),
    )
    def test_no_transition_from_inside_the_band(self, clear, band, values):
        """Values strictly inside (clear, warn) never change the state."""
        warn = clear + band
        rule = AlarmRule(name="p", signal="sig_max", warn=warn, clear=clear)
        engine, monitor = make_engine(rule)
        state = "ok"
        for value in values:
            before = len(monitor.of_kind("alarm_raised")) + len(
                monitor.of_kind("alarm_cleared")
            )
            engine.ingest_sample("sig", value)
            after = len(monitor.of_kind("alarm_raised")) + len(
                monitor.of_kind("alarm_cleared")
            )
            if clear < value < warn:
                # In the band: no events, no state change — ever.
                assert after == before
                assert engine.state_of("p") == state
            state = engine.state_of("p")

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-200, max_value=300, allow_nan=False),
            min_size=1, max_size=40,
        ),
    )
    def test_event_log_matches_state_transitions(self, values):
        """raised/cleared counts always equal the number of transitions."""
        rule = AlarmRule(name="p", signal="sig_max", warn=10.0, critical=20.0, clear=0.0)
        engine, monitor = make_engine(rule)
        transitions = 0
        state = "ok"
        for value in values:
            engine.ingest_sample("sig", value)
            new_state = engine.state_of("p")
            if new_state != state:
                transitions += 1
                state = new_state
        logged = len(monitor.of_kind("alarm_raised")) + len(
            monitor.of_kind("alarm_cleared")
        )
        assert logged == transitions
        summary = engine.summary()["p"]
        assert summary["raised"] + summary["cleared"] == transitions


# ----------------------------------------------------------------------
# SLA specs and evaluation
# ----------------------------------------------------------------------
def kpis_with(**overrides):
    base = TenantKPIs(tenant="t", submitted=4, completed=4)
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


class TestSLA:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLASpec(metric="made_up_metric", limit=1.0)
        with pytest.raises(ValueError):
            SLASpec(metric="queue_wait_p95", limit=1.0, direction="approx")
        assert "queue_wait_p95" in known_metrics()

    def test_round_trip(self):
        sla = SLASpec(metric="completion_rate", limit=0.95, direction="min", tenant="t")
        assert SLASpec.from_dict(sla.to_dict()) == sla

    def test_holds_directions(self):
        assert SLASpec(metric="queue_wait_p95", limit=100.0).holds(50.0)
        assert not SLASpec(metric="queue_wait_p95", limit=100.0).holds(150.0)
        low = SLASpec(metric="completion_rate", limit=0.9, direction="min")
        assert low.holds(0.95) and not low.holds(0.5)
        assert low.holds(None)  # no data = no violation

    def test_metric_value_resolution(self):
        kpis = kpis_with(
            queue_wait=StatSummary.of([10.0, 20.0, 30.0]),
            updates_expected=100, dropout_lost=5, failed=1,
            final_accuracy=0.9,
        )
        assert metric_value(kpis, "queue_wait_mean") == pytest.approx(20.0)
        assert metric_value(kpis, "queue_wait_max") == pytest.approx(30.0)
        assert metric_value(kpis, "dropout_loss_rate") == pytest.approx(0.05)
        assert metric_value(kpis, "completion_rate") == pytest.approx(1.0)
        assert metric_value(kpis, "failed_tasks") == 1.0
        assert metric_value(kpis, "final_accuracy") == pytest.approx(0.9)
        empty = kpis_with()
        assert metric_value(empty, "queue_wait_p95") is None  # no samples
        assert metric_value(empty, "queue_depth") is None  # live-only

    def test_evaluate_expands_wildcard_tenant(self):
        tenants = {
            "a": kpis_with(queue_wait=StatSummary.of([10.0])),
            "b": kpis_with(queue_wait=StatSummary.of([500.0])),
        }
        rows = evaluate_slas([SLASpec(metric="queue_wait_p95", limit=100.0)], tenants)
        assert [(r["tenant"], r["ok"]) for r in rows] == [("a", True), ("b", False)]

    def test_live_rule_compilation(self):
        live = SLASpec(metric="queue_wait_p95", limit=150.0)
        rule = live.live_rule()
        assert rule is not None
        assert rule.signal == "queue_wait_p95" and rule.warn == 150.0
        assert rule.clear_level == rule.warn  # pure threshold, no hysteresis
        # Metrics without a streaming counterpart never arm live watches.
        assert SLASpec(metric="makespan_p95", limit=10.0).live_rule() is None
        assert SLASpec(metric="queue_wait_p95", limit=1.0, live=False).live_rule() is None

    @settings(max_examples=50, deadline=None)
    @given(
        waits=st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            min_size=0, max_size=20,
        ),
        limit=st.floats(min_value=0, max_value=1000, allow_nan=False),
    )
    def test_sla_verdict_matches_direct_comparison(self, waits, limit):
        """evaluate_slas is a pure function of the KPI values."""
        tenants = {"t": kpis_with(queue_wait=StatSummary.of(waits))}
        sla = SLASpec(metric="queue_wait_p95", limit=limit)
        rows = evaluate_slas([sla], tenants)
        assert len(rows) == 1
        row = rows[0]
        if not waits:
            assert row["value"] is None and row["ok"]
        else:
            assert row["value"] == pytest.approx(tenants["t"].queue_wait.p95)
            assert row["ok"] == (row["value"] <= limit)
        # Evaluation never mutates its inputs: a second pass is identical.
        assert evaluate_slas([sla], tenants) == rows


# ----------------------------------------------------------------------
# autoscaling: spec validation and the closed loop
# ----------------------------------------------------------------------
def autoscale_scenario(**overrides) -> ScenarioSpec:
    """An undersized cluster + burst that must trip the autoscaler."""
    defaults = {
        "name": "as-test",
        "seed": 0,
        "horizon_s": 900.0,
        "cluster_nodes": 1,  # 20 bundles
        "tenants": [
            TenantSpec(
                name="burst",
                grades=[GradeSpec(grade="High", n_devices=4, bundles=10)],
                arrival=ArrivalSpec(kind="trace", times=[10.0 + 2.0 * i for i in range(8)]),
                dispatch=DispatchSpec(kind="realtime", thresholds=[1], failure_prob=0.0),
            ),
        ],
        "alarms": [
            AlarmRule(name="pressure", signal="queue_depth", warn=3.0, clear=1.0,
                      min_hold_s=5.0),
        ],
        "autoscale": AutoscaleSpec(alarm="pressure", step=1, max_extra_nodes=3,
                                cooldown_s=30.0),
    }
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestAutoscale:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AutoscaleSpec(alarm="")
        with pytest.raises(ValueError):
            AutoscaleSpec(alarm="a", step=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(alarm="a", max_extra_nodes=0)
        with pytest.raises(ValueError):
            AutoscaleSpec(alarm="a", cooldown_s=-1.0)
        spec = AutoscaleSpec(alarm="a", step=2)
        assert AutoscaleSpec.from_dict(spec.to_dict()) == spec

    def test_scenario_rejects_unknown_alarm_reference(self):
        with pytest.raises(ValueError, match="unknown alarm"):
            autoscale_scenario(autoscale=AutoscaleSpec(alarm="ghost"))

    def test_closed_loop_scales_up_and_back_down(self):
        runner = ScenarioRunner(autoscale_scenario())
        base_nodes = len(runner.platform.cluster.nodes)
        report = runner.run()
        assert report.alarms["pressure"]["raised"] >= 1
        assert report.alarms["pressure"]["state"] == "ok"  # cleared by the end
        assert report.autoscale["scale_ups"] >= 1
        assert report.autoscale["extra_nodes_left"] == 0
        assert len(runner.platform.cluster.nodes) == base_nodes  # drained
        assert report.alarm_events["autoscale_up"] == report.autoscale["scale_ups"]
        # The scale-up happened after the raise, before the clear.
        monitor = runner.platform.monitor
        raised_t = monitor.of_kind("alarm_raised")[0].time
        up_t = monitor.of_kind("autoscale_up")[0].time
        cleared_t = monitor.of_kind("alarm_cleared")[-1].time
        assert raised_t <= up_t <= cleared_t

    def test_cap_limits_extra_nodes(self):
        runner = ScenarioRunner(autoscale_scenario(
            autoscale=AutoscaleSpec(alarm="pressure", step=5, max_extra_nodes=2,
                                    cooldown_s=1.0),
        ))
        runner.run()
        ups = runner.platform.monitor.of_kind("autoscale_up")
        total_added = sum(len(e.fields["nodes"]) for e in ups)
        assert 0 < total_added <= 2

    def test_loop_identical_across_batch_modes_and_repeats(self):
        """The acceptance contract: the whole remediation loop is
        deterministic and bit-identical between the event loops."""
        batched = run_scenario(autoscale_scenario(), batch=True)
        legacy = run_scenario(autoscale_scenario(), batch=False)
        repeat = run_scenario(autoscale_scenario(), batch=True)
        assert batched.to_json() == repeat.to_json()
        bat, leg = batched.to_dict(), legacy.to_dict()
        assert bat.pop("batch") is True and leg.pop("batch") is False
        assert bat == leg
        assert batched.alarm_events.get("alarm_raised", 0) >= 1

    def test_alarm_event_timeline_identical_across_modes(self):
        """Not just the report: the full alarm/autoscale event timeline."""
        def timeline(batch):
            runner = ScenarioRunner(autoscale_scenario(), batch=batch)
            runner.run()
            return [
                (e.time, e.kind, dict(e.fields))
                for e in runner.platform.monitor.events
                if e.kind.startswith(("alarm_", "autoscale_", "sla_"))
            ]
        assert timeline(True) == timeline(False)
