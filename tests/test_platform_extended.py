"""Extended platform integration: MSP, scaling, strategies, reporting."""


from repro import (
    GradeRequirement,
    PlatformConfig,
    ResourceBundle,
    SimDC,
    TaskSpec,
    TaskState,
    TimeIntervalStrategy,
    TimePoint,
    TimePointStrategy,
)
from repro.cluster import NodeSpec, PlacementStrategy
from repro.deviceflow import right_tailed_normal
from repro.ml import standard_fl_flow


def two_grade_task(name="multi", rounds=1, strategy=None, skew=None):
    return TaskSpec(
        name=name,
        grades=[
            GradeRequirement(
                grade="High", n_devices=10, bundles=8, n_phones=2,
                device_bundle=ResourceBundle(cpus=2, memory_gb=2),
            ),
            GradeRequirement(
                grade="Low", n_devices=10, bundles=6, n_phones=2,
                device_bundle=ResourceBundle(cpus=1, memory_gb=2),
            ),
        ],
        rounds=rounds,
        flow=standard_fl_flow(epochs=1),
        deviceflow_strategy=strategy,
        feature_dim=128,
        records_per_device=8,
        skew=skew,
    )


class TestMspIntegration:
    def test_partial_msp_availability_shrinks_fleet(self):
        full = SimDC(PlatformConfig(seed=1, cluster_nodes=[NodeSpec(20, 30)]))
        partial = SimDC(
            PlatformConfig(seed=1, cluster_nodes=[NodeSpec(20, 30)], msp_availability=0.4)
        )
        assert len(partial.phones) < len(full.phones)
        assert len([p for p in partial.phones if not p.is_msp]) == 10  # locals unaffected

    def test_task_overflows_onto_msp_phones(self):
        platform = SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)] * 2))
        spec = TaskSpec(
            name="msp-heavy",
            grades=[
                GradeRequirement(
                    grade="High", n_devices=12, bundles=4, n_phones=8,  # > 4 local High
                    device_bundle=ResourceBundle(cpus=2, memory_gb=2),
                )
            ],
            rounds=1,
            flow=standard_fl_flow(epochs=1),
            feature_dim=128,
            records_per_device=8,
        )
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        assert platform.result(spec.task_id).state is TaskState.COMPLETED


class TestDynamicScaling:
    def test_scale_up_unblocks_queued_task(self):
        platform = SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(10, 10)]))
        spec = TaskSpec(
            name="needs-more",
            grades=[
                GradeRequirement(
                    grade="High", n_devices=4, bundles=30, n_phones=0,
                    device_bundle=ResourceBundle(cpus=1, memory_gb=1),
                )
            ],
            rounds=1,
            flow=standard_fl_flow(epochs=1),
            feature_dim=128,
            records_per_device=8,
        )
        platform.submit(spec)
        platform.run(until=50.0)
        assert spec.state is TaskState.QUEUED  # 30 bundles > 10 available
        platform.resource_manager.scale_up(NodeSpec(cpus=20, memory_gb=30), count=2)
        platform.run_until_idle(max_time=1e7)
        assert platform.result(spec.task_id).state is TaskState.COMPLETED

    def test_scale_down_idle_nodes_after_completion(self):
        platform = SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)] * 2))
        added = platform.resource_manager.scale_up(NodeSpec(10, 10))
        spec = two_grade_task()
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        platform.resource_manager.scale_down(added)
        assert platform.cluster.total_cpus == 40


class TestPlacementStrategies:
    def test_spread_places_across_nodes(self):
        from repro.cluster import K8sCluster, ResourceBundle as RB

        cluster = K8sCluster([NodeSpec(8, 16)] * 4)
        group = cluster.allocate([RB(cpus=2, memory_gb=2)] * 4, PlacementStrategy.SPREAD)
        assert len(set(group.node_ids)) == 4
        cluster.release(group)


class TestRuleBasedStrategiesThroughPlatform:
    def test_time_point_strategy_end_to_end(self):
        platform = SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)] * 2))
        strategy = TimePointStrategy([TimePoint(5.0, 10), TimePoint(20.0, 20)])
        spec = two_grade_task(strategy=strategy)
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        result = platform.result(spec.task_id)
        assert result.state is TaskState.COMPLETED
        assert result.flow_stats.delivered == 20
        # Aggregation happened after the dispatch points drained.
        assert result.rounds[0].n_updates == 20

    def test_time_interval_strategy_end_to_end(self):
        platform = SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)] * 2))
        strategy = TimeIntervalStrategy(right_tailed_normal(1.0), interval_seconds=30.0)
        spec = two_grade_task(strategy=strategy, rounds=2)
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        result = platform.result(spec.task_id)
        assert result.state is TaskState.COMPLETED
        assert result.flow_stats.delivered == 40  # 20 devices x 2 rounds
        assert len(result.rounds) == 2


class TestSkewThroughPlatform:
    def test_skewed_task_records_biases(self):
        platform = SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)] * 2))
        spec = two_grade_task(skew={"positive_fraction": 0.7, "spread": 2.0})
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        assert platform.result(spec.task_id).state is TaskState.COMPLETED


class TestStatusReport:
    def test_report_contains_key_sections(self):
        platform = SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)] * 2))
        spec = two_grade_task()
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        report = platform.status_report()
        assert "cluster:" in report
        assert "phones free by grade" in report
        assert spec.task_id in report
        assert "COMPLETED" in report
        assert "task_completed=1" in report

    def test_report_before_any_tasks(self):
        platform = SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)]))
        report = platform.status_report()
        assert "0 queued, 0 running, 0 finished" in report
