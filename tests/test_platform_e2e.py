"""End-to-end platform tests: SimDC tasks through every substrate."""


from repro import (
    GradeRequirement,
    PlatformConfig,
    RealTimeAccumulatedStrategy,
    ResourceBundle,
    SimDC,
    TaskSpec,
    TaskState,
)
from repro.cluster import NodeSpec
from repro.ml import standard_fl_flow


def small_platform(seed=0):
    config = PlatformConfig(
        seed=seed,
        cluster_nodes=[NodeSpec(cpus=20, memory_gb=30)] * 2,
        scheduling_interval=5.0,
    )
    return SimDC(config)


def small_task(name="e2e", rounds=2, n_devices=8, bundles=8, n_phones=2, n_benchmark=0,
               strategy=None, numeric=True, priority=0):
    return TaskSpec(
        name=name,
        priority=priority,
        grades=[
            GradeRequirement(
                grade="High",
                n_devices=n_devices,
                bundles=bundles,
                n_phones=n_phones,
                n_benchmark=n_benchmark,
                device_bundle=ResourceBundle(cpus=2, memory_gb=2),
            )
        ],
        rounds=rounds,
        flow=standard_fl_flow(epochs=1),
        deviceflow_strategy=strategy,
        numeric=numeric,
        feature_dim=128,
        records_per_device=10,
    )


class TestEndToEnd:
    def test_numeric_task_completes_and_learns(self):
        platform = small_platform()
        spec = small_task(rounds=3)
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        result = platform.result(spec.task_id)
        assert result.state is TaskState.COMPLETED
        assert len(result.rounds) == 3
        assert result.rounds[0].n_updates == 8
        assert result.rounds[-1].test_accuracy is not None
        # FedAvg over LR on learnable synthetic data: loss must improve.
        assert result.rounds[-1].test_loss <= result.rounds[0].test_loss + 1e-6
        assert result.makespan > 0

    def test_allocation_recorded(self):
        platform = small_platform()
        spec = small_task()
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        allocation = platform.result(spec.task_id).allocation
        assert allocation is not None
        assert allocation.x["High"] + allocation.grades[0].physical == 8

    def test_deviceflow_path(self):
        platform = small_platform()
        spec = small_task(strategy=RealTimeAccumulatedStrategy([3]), rounds=2)
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        result = platform.result(spec.task_id)
        assert result.state is TaskState.COMPLETED
        assert result.flow_stats is not None
        assert result.flow_stats.received == 16  # 8 devices x 2 rounds
        assert result.flow_stats.delivered == 16

    def test_deviceflow_dropout_reduces_aggregated_updates(self):
        platform = small_platform()
        spec = small_task(
            strategy=RealTimeAccumulatedStrategy([1], failure_prob=0.5),
            rounds=1, n_devices=20, bundles=20, n_phones=3,
        )
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        result = platform.result(spec.task_id)
        assert result.rounds[0].n_updates < 20
        assert result.flow_stats.dropped_failure > 0

    def test_benchmark_devices_measured(self):
        platform = small_platform()
        spec = small_task(n_benchmark=1, rounds=1)
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        samples = platform.db.query("device_samples", task_id=spec.task_id)
        assert len(samples) > 30  # ~76 s session at 1 Hz
        assert {"current_ua", "cpu_percent", "memory_kb"} <= set(samples[0])

    def test_fixed_allocation_override(self):
        platform = small_platform()
        spec = small_task()
        platform.submit(spec, fixed_allocation={"High": 8})
        platform.run_until_idle(max_time=1e7)
        allocation = platform.result(spec.task_id).allocation
        assert allocation.solver == "fixed"
        assert allocation.x["High"] == 8

    def test_time_only_task(self):
        platform = small_platform()
        spec = small_task(numeric=False, rounds=1, n_devices=30, bundles=10, n_phones=3)
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        result = platform.result(spec.task_id)
        assert result.state is TaskState.COMPLETED
        assert result.rounds[0].n_updates == 30
        assert result.rounds[0].test_accuracy is None  # counting mode

    def test_concurrent_tasks_share_resources(self):
        platform = small_platform()
        first = small_task("first", rounds=1, bundles=8, n_phones=1)
        second = small_task("second", rounds=1, bundles=8, n_phones=1)
        platform.submit(first)
        platform.submit(second)
        platform.run_until_idle(max_time=1e7)
        assert platform.result(first.task_id).state is TaskState.COMPLETED
        assert platform.result(second.task_id).state is TaskState.COMPLETED
        # Both fit side by side (16 bundles <= 40), so they overlap.
        r1, r2 = platform.result(first.task_id), platform.result(second.task_id)
        assert r1.started_at < r2.finished_at and r2.started_at < r1.finished_at

    def test_queued_task_waits_for_resources(self):
        platform = small_platform()  # 40 bundles total
        big = small_task("big", rounds=1, bundles=30, n_phones=2, priority=5)
        other = small_task("other", rounds=1, bundles=30, n_phones=2, priority=1)
        platform.submit(big)
        platform.submit(other)
        platform.run_until_idle(max_time=1e7)
        r_big = platform.result(big.task_id)
        r_other = platform.result(other.task_id)
        # 60 bundles cannot co-run on 40: the second starts after the first ends.
        assert r_other.started_at >= r_big.finished_at

    def test_monitor_records_lifecycle(self):
        platform = small_platform()
        spec = small_task(rounds=1)
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        kinds = platform.monitor.summary()
        assert kinds["task_submitted"] == 1
        assert kinds["task_scheduled"] == 1
        assert kinds["task_completed"] == 1
        assert kinds["round_aggregated"] == 1

    def test_resources_fully_released_after_tasks(self):
        platform = small_platform()
        spec = small_task(rounds=1)
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        assert platform.resource_manager.active_grants == 0
        assert platform.cluster.free_cpus == platform.cluster.total_cpus
        assert len(platform._busy_registry) == 0

    def test_deterministic_across_runs(self):
        def run_once():
            platform = small_platform(seed=7)
            spec = small_task(rounds=2)
            platform.submit(spec)
            platform.run_until_idle(max_time=1e7)
            result = platform.result(spec.task_id)
            return (result.makespan, result.rounds[-1].test_loss)

        assert run_once() == run_once()
