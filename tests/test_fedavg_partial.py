"""Property-based tests for FedAvg partial aggregation.

The sharded logical tier relies on one invariant: folding any partition
of an update set into per-shard partials and merging them must produce
*bit-identical* results to the flat :func:`repro.ml.fedavg.fedavg` call —
for any shard boundaries, any shard order, empty shards, and zero-sample
updates.  Hypothesis hunts for partitions that break it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.fedavg import FedAvgAggregator, FedAvgPartial, ModelUpdate, fedavg


def build_updates(n_updates: int, dim: int, seed: int, with_zero_samples: bool) -> list[ModelUpdate]:
    rng = np.random.default_rng(seed)
    updates = []
    for index in range(n_updates):
        n_samples = int(rng.integers(0 if with_zero_samples else 1, 40))
        updates.append(
            ModelUpdate(
                device_id=f"d{index}",
                round_index=1,
                # Spread magnitudes over many decades so naive summation
                # orders would actually disagree in the low bits.
                weights=rng.normal(size=dim) * 10.0 ** rng.integers(-8, 9),
                bias=float(rng.normal()),
                n_samples=n_samples,
            )
        )
    if all(u.n_samples == 0 for u in updates):
        updates[0].n_samples = 3  # keep the aggregate well-defined
    return updates


def partition(items: list, boundaries: list[int]) -> list[list]:
    bounds = sorted(min(b, len(items)) for b in boundaries)
    edges = [0, *bounds, len(items)]
    return [items[lo:hi] for lo, hi in zip(edges[:-1], edges[1:])]


class TestPartitionInvariance:
    @given(
        n_updates=st.integers(min_value=1, max_value=24),
        dim=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=10_000),
        boundaries=st.lists(st.integers(min_value=0, max_value=24), max_size=6),
        shard_order_seed=st.integers(min_value=0, max_value=1000),
        with_zero_samples=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_partition_merges_to_flat_fedavg(
        self, n_updates, dim, seed, boundaries, shard_order_seed, with_zero_samples
    ):
        updates = build_updates(n_updates, dim, seed, with_zero_samples)
        flat_weights, flat_bias = fedavg(updates)

        shards = partition(updates, boundaries)
        partials = [FedAvgPartial.from_updates(shard) for shard in shards]
        # Merge order must not matter either.
        order = np.random.default_rng(shard_order_seed).permutation(len(partials))
        merged_weights, merged_bias, n_merged = FedAvgAggregator.merge(
            [partials[i] for i in order]
        )

        assert n_merged == n_updates
        assert merged_weights.tobytes() == flat_weights.tobytes()
        assert np.float64(merged_bias).tobytes() == np.float64(flat_bias).tobytes()

    @given(
        n_updates=st.integers(min_value=1, max_value=16),
        dim=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=10_000),
        n_empty=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_empty_shards_are_identity(self, n_updates, dim, seed, n_empty):
        updates = build_updates(n_updates, dim, seed, with_zero_samples=True)
        flat_weights, flat_bias = fedavg(updates)
        partials = [FedAvgPartial.from_updates(updates)] + [
            FedAvgPartial.empty() for _ in range(n_empty)
        ]
        merged_weights, merged_bias, n_merged = FedAvgAggregator.merge(partials)
        assert n_merged == n_updates
        assert merged_weights.tobytes() == flat_weights.tobytes()
        assert np.float64(merged_bias).tobytes() == np.float64(flat_bias).tobytes()

    @given(
        n_updates=st.integers(min_value=1, max_value=16),
        dim=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_from_arrays_matches_from_updates(self, n_updates, dim, seed):
        updates = build_updates(n_updates, dim, seed, with_zero_samples=True)
        stacked = FedAvgPartial.from_arrays(
            np.stack([u.weights for u in updates]),
            np.array([u.bias for u in updates]),
            np.array([u.n_samples for u in updates]),
        )
        object_based = FedAvgPartial.from_updates(updates)
        assert stacked.finalize()[0].tobytes() == object_based.finalize()[0].tobytes()
        assert stacked.finalize()[1] == object_based.finalize()[1]
        assert stacked.total_samples == object_based.total_samples
        assert stacked.n_updates == object_based.n_updates

    @given(
        n_updates=st.integers(min_value=1, max_value=12),
        dim=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_aggregator_partial_equals_aggregate(self, n_updates, dim, seed):
        updates = build_updates(n_updates, dim, seed, with_zero_samples=False)
        by_aggregate = FedAvgAggregator()
        by_partial = FedAvgAggregator()
        for update in updates:
            by_aggregate.add(update)
            by_partial.add(update)
        agg_weights, agg_bias, agg_count = by_aggregate.aggregate()
        partial = by_partial.partial()
        assert len(by_partial) == 0  # partial() drains the buffer
        merged_weights, merged_bias, merged_count = FedAvgAggregator.merge([partial])
        assert merged_count == agg_count
        assert merged_weights.tobytes() == agg_weights.tobytes()
        assert np.float64(merged_bias).tobytes() == np.float64(agg_bias).tobytes()


class TestEdgeCases:
    def test_merge_of_only_empty_partials_cannot_finalize(self):
        merged = FedAvgPartial.merge([FedAvgPartial.empty(), FedAvgPartial.empty()])
        assert merged.n_updates == 0
        with pytest.raises(ValueError):
            merged.finalize()

    def test_all_zero_sample_updates_rejected(self):
        ghost = ModelUpdate("g", 1, np.ones(3), 0.5, n_samples=0)
        with pytest.raises(ValueError):
            FedAvgPartial.from_updates([ghost]).finalize()

    def test_dimension_mismatch_rejected(self):
        a = FedAvgPartial.from_updates([ModelUpdate("a", 1, np.ones(3), 0.0, 5)])
        b = FedAvgPartial.from_updates([ModelUpdate("b", 1, np.ones(4), 0.0, 5)])
        with pytest.raises(ValueError):
            FedAvgPartial.merge([a, b])

    def test_partials_survive_pickling(self):
        import pickle

        updates = build_updates(6, 8, seed=1, with_zero_samples=False)
        partial = FedAvgPartial.from_updates(updates)
        restored = pickle.loads(pickle.dumps(partial))
        assert restored.finalize()[0].tobytes() == partial.finalize()[0].tobytes()
        assert restored.total_samples == partial.total_samples
