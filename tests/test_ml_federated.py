"""Unit tests for FedAvg, clients, the synchronous trainer and operators."""

import numpy as np
import pytest

from repro.data import SyntheticAvazu
from repro.ml import (
    DEVICE_BACKEND,
    FLClient,
    FedAvgAggregator,
    ModelUpdate,
    OperatorContext,
    OperatorFlow,
    SynchronousTrainer,
    TrainOp,
    fedavg,
    standard_fl_flow,
)
from repro.ml.operators import DownloadModelOp, EvalOp, UploadUpdateOp


def make_update(device_id, weights, bias=0.0, n_samples=10, round_index=1):
    return ModelUpdate(
        device_id=device_id,
        round_index=round_index,
        weights=np.asarray(weights, dtype=np.float64),
        bias=bias,
        n_samples=n_samples,
    )


class TestFedAvg:
    def test_weighted_mean(self):
        a = make_update("a", [1.0, 0.0], bias=1.0, n_samples=30)
        b = make_update("b", [0.0, 1.0], bias=0.0, n_samples=10)
        weights, bias = fedavg([a, b])
        assert np.allclose(weights, [0.75, 0.25])
        assert bias == pytest.approx(0.75)

    def test_single_update_identity(self):
        update = make_update("a", [0.5, -0.5], bias=0.3)
        weights, bias = fedavg([update])
        assert np.allclose(weights, update.weights)
        assert bias == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fedavg([make_update("a", [1.0]), make_update("b", [1.0, 2.0])])

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            make_update("a", [1.0], n_samples=-1)

    def test_zero_sample_update_allowed_but_weightless(self):
        # Zero-sample updates may occur (a device lost its shard mid-round)
        # and must not move the aggregate.
        backed = make_update("a", [2.0], n_samples=4)
        ghost = make_update("g", [100.0], n_samples=0)
        weights, bias = fedavg([backed, ghost])
        assert np.allclose(weights, [2.0])
        with pytest.raises(ValueError):
            fedavg([ghost])  # zero total samples cannot be averaged

    def test_aggregator_lifecycle(self):
        aggregator = FedAvgAggregator()
        aggregator.add(make_update("a", [2.0], n_samples=5))
        aggregator.add(make_update("b", [4.0], n_samples=5))
        assert len(aggregator) == 2
        assert aggregator.pending_samples == 10
        assert aggregator.pending_devices == ["a", "b"]
        weights, bias, count = aggregator.aggregate()
        assert count == 2
        assert np.allclose(weights, [3.0])
        assert len(aggregator) == 0

    def test_aggregator_type_check(self):
        aggregator = FedAvgAggregator()
        with pytest.raises(TypeError):
            aggregator.add({"weights": [1.0]})

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            FedAvgAggregator().aggregate()

    def test_clear(self):
        aggregator = FedAvgAggregator()
        aggregator.add(make_update("a", [1.0]))
        aggregator.clear()
        assert len(aggregator) == 0

    def test_payload_bytes_scale_with_dim(self):
        small = make_update("a", np.zeros(10))
        large = make_update("a", np.zeros(1000))
        assert large.payload_bytes() > small.payload_bytes()


@pytest.fixture(scope="module")
def federated_data():
    return SyntheticAvazu(
        n_devices=20, records_per_device=30, feature_dim=256, seed=7
    ).generate(test_records=600)


class TestFLClient:
    def test_local_train_produces_update(self, federated_data):
        shard = federated_data.shard(federated_data.device_ids()[0])
        client = FLClient(shard, feature_dim=256, epochs=2, learning_rate=0.05)
        update = client.local_train(np.zeros(256), 0.0, round_index=3)
        assert update.device_id == shard.device_id
        assert update.round_index == 3
        assert update.n_samples == shard.n_samples
        assert update.weights.shape == (256,)
        assert np.abs(update.weights).sum() > 0

    def test_backend_recorded_in_metadata(self, federated_data):
        shard = federated_data.shard(federated_data.device_ids()[0])
        client = FLClient(shard, feature_dim=256, backend=DEVICE_BACKEND, epochs=1)
        update = client.local_train(np.zeros(256), 0.0, round_index=1)
        assert update.metadata["backend"] == "mnn-device"

    def test_evaluate(self, federated_data):
        shard = federated_data.shard(federated_data.device_ids()[0])
        client = FLClient(shard, feature_dim=256)
        metrics = client.evaluate(np.zeros(256), 0.0)
        assert set(metrics) == {"accuracy", "log_loss", "auc"}

    def test_invalid_epochs(self, federated_data):
        shard = federated_data.shard(federated_data.device_ids()[0])
        with pytest.raises(ValueError):
            FLClient(shard, feature_dim=256, epochs=0)


class TestSynchronousTrainer:
    def test_training_improves_test_loss(self, federated_data):
        clients = [
            FLClient(federated_data.shard(d), 256, epochs=3, learning_rate=0.05)
            for d in federated_data.device_ids()
        ]
        trainer = SynchronousTrainer(clients, federated_data.test, 256)
        history = trainer.run(rounds=4)
        assert len(history) == 4
        assert history[-1].test_loss < history[0].test_loss + 1e-9
        assert history[0].n_updates == len(clients)

    def test_participation_sampling(self, federated_data):
        clients = [
            FLClient(federated_data.shard(d), 256, epochs=1) for d in federated_data.device_ids()
        ]
        trainer = SynchronousTrainer(clients, federated_data.test, 256)
        rng = np.random.default_rng(0)
        history = trainer.run(rounds=1, participation=0.5, rng=rng)
        assert history[0].n_updates == 10

    def test_validation(self, federated_data):
        clients = [FLClient(federated_data.shard(federated_data.device_ids()[0]), 256)]
        trainer = SynchronousTrainer(clients, federated_data.test, 256)
        with pytest.raises(ValueError):
            trainer.run(rounds=0)
        with pytest.raises(ValueError):
            trainer.run(rounds=1, participation=0.0)
        with pytest.raises(ValueError):
            SynchronousTrainer([], federated_data.test, 256)


class TestOperatorFlow:
    def make_context(self, federated_data, with_model=True):
        shard = federated_data.shard(federated_data.device_ids()[0])
        context = OperatorContext(
            device_id=shard.device_id,
            grade="High",
            dataset=shard,
            feature_dim=256,
        )
        if with_model:
            context.global_weights = np.zeros(256)
            context.global_bias = 0.0
        return context

    def test_standard_flow_round_trip(self, federated_data):
        flow = standard_fl_flow(epochs=2, learning_rate=0.05)
        context = self.make_context(federated_data)
        flow.execute(context)
        update = context.outputs["update"]
        assert update.device_id == context.device_id
        assert "local_metrics" in context.outputs
        assert update.metadata["grade"] == "High"

    def test_flow_names(self):
        flow = standard_fl_flow()
        assert flow.describe() == ["download_model", "train", "evaluate", "upload_update"]
        assert flow.total_work == pytest.approx(10.4)

    def test_download_requires_staged_model(self, federated_data):
        flow = OperatorFlow([DownloadModelOp()])
        context = self.make_context(federated_data, with_model=False)
        with pytest.raises(RuntimeError):
            flow.execute(context)

    def test_train_requires_download(self, federated_data):
        flow = OperatorFlow([TrainOp(epochs=1)])
        context = self.make_context(federated_data)
        with pytest.raises(RuntimeError):
            flow.execute(context)

    def test_eval_requires_download(self, federated_data):
        context = self.make_context(federated_data)
        with pytest.raises(RuntimeError):
            OperatorFlow([EvalOp()]).execute(context)

    def test_upload_requires_model(self, federated_data):
        context = self.make_context(federated_data)
        with pytest.raises(RuntimeError):
            OperatorFlow([UploadUpdateOp()]).execute(context)

    def test_empty_flow_rejected(self):
        with pytest.raises(ValueError):
            OperatorFlow([])

    def test_non_operator_rejected(self):
        with pytest.raises(TypeError):
            OperatorFlow([lambda ctx: None])

    def test_train_work_scales_with_epochs(self):
        assert TrainOp(epochs=5).work == pytest.approx(5.0)
