"""Tests for the FedScale/FederatedScope-like comparator models."""

import numpy as np
import pytest

from repro.baselines import (
    FedScaleLikeSimulator,
    FederatedScopeLikeSimulator,
    SimDCRoundModel,
)
from repro.data import SyntheticAvazu
from repro.ml import FLClient, LogisticRegressionModel


class TestCostModels:
    def test_round_time_monotone_in_scale(self):
        for model in (FedScaleLikeSimulator(), FederatedScopeLikeSimulator(), SimDCRoundModel()):
            times = [model.round_time(n) for n in (100, 1000, 10_000, 100_000)]
            assert times == sorted(times)

    def test_breakdown_sums_to_total(self):
        for model in (FedScaleLikeSimulator(), FederatedScopeLikeSimulator(), SimDCRoundModel()):
            breakdown = model.round_breakdown(5000)
            assert breakdown.total == pytest.approx(model.round_time(5000))

    def test_fedscale_has_no_communication(self):
        breakdown = FedScaleLikeSimulator().round_breakdown(1000)
        assert breakdown.communication == 0.0
        assert breakdown.storage == 0.0
        assert breakdown.memory_copies > 0.0

    def test_federatedscope_pays_communication(self):
        breakdown = FederatedScopeLikeSimulator().round_breakdown(1000)
        assert breakdown.communication > 0.0

    def test_simdc_pays_storage(self):
        breakdown = SimDCRoundModel().round_breakdown(1000)
        assert breakdown.storage > 0.0

    def test_fig8_shape_small_scale(self):
        """Below 1000 devices SimDC is the slowest of the three."""
        simdc = SimDCRoundModel()
        fedscale = FedScaleLikeSimulator()
        fscope = FederatedScopeLikeSimulator()
        for scale in (100, 316):
            assert simdc.round_time(scale) > fedscale.round_time(scale)
            assert simdc.round_time(scale) > fscope.round_time(scale)

    def test_fig8_shape_large_scale(self):
        """At >= 10k devices SimDC and FederatedScope are comparable and
        FedScale stays fastest."""
        simdc = SimDCRoundModel()
        fedscale = FedScaleLikeSimulator()
        fscope = FederatedScopeLikeSimulator()
        for scale in (10_000, 100_000):
            ratio = simdc.round_time(scale) / fscope.round_time(scale)
            assert 0.5 < ratio < 1.5
            assert fedscale.round_time(scale) < simdc.round_time(scale)

    def test_validation(self):
        with pytest.raises(ValueError):
            FedScaleLikeSimulator(total_cores=0)
        with pytest.raises(ValueError):
            FederatedScopeLikeSimulator(instance_cores=0)
        with pytest.raises(ValueError):
            SimDCRoundModel(device_round_s=0)
        with pytest.raises(ValueError):
            FedScaleLikeSimulator().round_time(0)


class TestFunctionalEquivalence:
    def test_baselines_match_each_other_numerically(self):
        """Same clients + same seed: both baselines learn the same model.

        Their difference is execution architecture (Fig. 8), not the
        mathematics of the round.
        """
        data = SyntheticAvazu(
            n_devices=10, records_per_device=20, feature_dim=128, seed=4
        ).generate(test_records=400)
        ids = data.device_ids()

        def fresh_clients():
            return [
                FLClient(data.shard(d), 128, epochs=2, learning_rate=0.05)
                for d in ids
            ]

        fedscale_model = LogisticRegressionModel(128)
        FedScaleLikeSimulator().run_round(fresh_clients(), fedscale_model)
        fscope_model = LogisticRegressionModel(128)
        FederatedScopeLikeSimulator().run_round(fresh_clients(), fscope_model)
        assert np.allclose(fedscale_model.weights, fscope_model.weights)
        assert fedscale_model.bias == pytest.approx(fscope_model.bias)

    def test_round_improves_model(self):
        data = SyntheticAvazu(
            n_devices=10, records_per_device=30, feature_dim=128, seed=4
        ).generate(test_records=400)
        clients = [
            FLClient(data.shard(d), 128, epochs=3, learning_rate=0.05)
            for d in data.device_ids()
        ]
        model = LogisticRegressionModel(128)
        before = model.evaluate(data.test.features, data.test.labels)["log_loss"]
        for round_index in range(1, 4):
            FedScaleLikeSimulator().run_round(clients, model, round_index)
        after = model.evaluate(data.test.features, data.test.labels)["log_loss"]
        assert after < before
