"""Unit + property tests for traffic curves and AUC discretisation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deviceflow import (
    TABLE2_CURVES,
    TrafficCurve,
    discretize_curve,
    exponential_curve,
    gaussian_pdf,
    right_tailed_normal,
    sin_plus_one,
)
from repro.deviceflow.curves import diurnal_curve
from repro.deviceflow.discretize import DispatchTick, choose_tick_width, schedule_correlation


class TestTrafficCurveValidation:
    def test_negative_curve_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            TrafficCurve(lambda t: np.sin(t), (0.0, 2 * math.pi), name="sin")

    def test_unbounded_curve_rejected(self):
        with pytest.raises(ValueError, match="unbounded"):
            TrafficCurve(
                lambda t: np.where(t < 1.0, 1.0, np.inf), (0.0, 2.0), name="pole"
            )

    def test_zero_curve_rejected(self):
        with pytest.raises(ValueError, match="identically zero"):
            TrafficCurve(lambda t: np.zeros_like(t), (0.0, 1.0))

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            TrafficCurve(lambda t: t + 1.0, (2.0, 1.0))
        with pytest.raises(ValueError):
            TrafficCurve(lambda t: t + 1.0, (0.0, math.inf))

    def test_piecewise_continuous_accepted(self):
        """§V-B: piecewise continuity is explicitly supported."""
        curve = TrafficCurve(
            lambda t: np.where(t < 0.5, 1.0, 3.0), (0.0, 1.0), name="step"
        )
        assert curve.area() == pytest.approx(2.0, rel=0.01)

    def test_area_of_known_curves(self):
        assert gaussian_pdf(1.0).area() == pytest.approx(1.0, abs=1e-3)
        assert sin_plus_one().area() == pytest.approx(6 * math.pi, rel=1e-3)

    def test_to_actual_time_rescales_domain(self):
        curve = exponential_curve(2.0, (0.0, 3.0))
        rate = curve.to_actual_time(60.0)
        assert rate(np.array([0.0]))[0] == pytest.approx(1.0)
        assert rate(np.array([60.0]))[0] == pytest.approx(8.0)

    def test_table2_catalogue(self):
        names = [curve.name for curve in TABLE2_CURVES]
        assert names == ["N(0, 1)", "N(0, 2)", "sin(t)+1", "cos(t)+1", "2^t", "10^t"]

    def test_curve_factory_validation(self):
        with pytest.raises(ValueError):
            gaussian_pdf(0.0)
        with pytest.raises(ValueError):
            right_tailed_normal(-1.0)
        with pytest.raises(ValueError):
            exponential_curve(0.0)
        with pytest.raises(ValueError):
            diurnal_curve(peak_hour=25)


class TestDiscretization:
    def test_conservation_exact(self):
        ticks = discretize_curve(gaussian_pdf(1.0), 60.0, 10_000)
        assert sum(t.count for t in ticks) == 10_000

    def test_offsets_within_window_and_sorted(self):
        ticks = discretize_curve(sin_plus_one(), 120.0, 5_000)
        offsets = [t.offset for t in ticks]
        assert offsets == sorted(offsets)
        assert offsets[0] >= 0.0
        assert offsets[-1] < 120.0

    def test_capacity_respected_per_tick(self):
        capacity = 700.0
        ticks = discretize_curve(gaussian_pdf(1.0), 60.0, 10_000, capacity_per_second=capacity)
        widths = np.diff([t.offset for t in ticks])
        max_width = widths.max() if len(widths) else 60.0
        for tick in ticks:
            assert tick.count <= capacity * max(max_width, 1.0) + 1

    def test_peaky_curve_gets_fine_ticks(self):
        wide = choose_tick_width(sin_plus_one(), 60.0, 1000, 700.0)
        peaky = choose_tick_width(gaussian_pdf(0.05, (-1.0, 1.0)), 60.0, 100_000, 700.0)
        assert peaky < wide

    def test_manual_tick_width(self):
        ticks = discretize_curve(sin_plus_one(), 60.0, 600, tick_width=1.0)
        assert len(ticks) <= 60
        assert sum(t.count for t in ticks) == 600

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            discretize_curve(sin_plus_one(), -1.0, 100)
        with pytest.raises(ValueError):
            discretize_curve(sin_plus_one(), 60.0, 0)
        with pytest.raises(ValueError):
            discretize_curve(sin_plus_one(), 60.0, 100, tick_width=-0.1)
        with pytest.raises(ValueError):
            DispatchTick(offset=-1.0, count=5)
        with pytest.raises(ValueError):
            DispatchTick(offset=0.0, count=-1)

    def test_table2_correlations_above_99(self):
        """Table II: Pearson r > 0.99 for every evaluated curve."""
        for curve in TABLE2_CURVES:
            ticks = discretize_curve(curve, 60.0, 10_000, capacity_per_second=700.0)
            r = schedule_correlation(curve, ticks, 60.0)
            assert r > 0.99, f"{curve.name}: r={r:.4f}"

    def test_correlation_requires_two_ticks(self):
        with pytest.raises(ValueError):
            schedule_correlation(sin_plus_one(), [DispatchTick(0.0, 10)], 60.0)

    @given(
        total=st.integers(min_value=1, max_value=50_000),
        interval=st.floats(min_value=1.0, max_value=3600.0),
        sigma=st.floats(min_value=0.2, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, total, interval, sigma):
        """Message conservation holds for any total/window/shape combo."""
        ticks = discretize_curve(gaussian_pdf(sigma), interval, total)
        assert sum(t.count for t in ticks) == total
        assert all(t.count > 0 for t in ticks)
        assert all(0.0 <= t.offset < interval for t in ticks)

    @given(
        base=st.floats(min_value=1.1, max_value=10.0),
        total=st.integers(min_value=100, max_value=20_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_exponential_monotone_schedule(self, base, total):
        """For a growing curve, later ticks carry (weakly) more traffic."""
        ticks = discretize_curve(exponential_curve(base), 60.0, total, tick_width=2.0)
        counts = [t.count for t in ticks]
        # Allow rounding jitter of one message between adjacent ticks.
        assert all(b >= a - 1 for a, b in zip(counts, counts[1:]))
