"""Tests for the §IV-B hybrid allocation optimizer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import (
    AllocationProblem,
    GradeAllocationParams,
    evaluate_allocation,
    fixed_ratio_allocation,
    solve_allocation,
    solve_allocation_brute,
    solve_allocation_milp,
)


def grade(
    name="High",
    n=100,
    q=0,
    f=40,
    k=4,
    m=10,
    alpha=12.0,
    beta=16.2,
    lam=45.0,
):
    return GradeAllocationParams(
        grade=name, n_devices=n, n_benchmark=q, bundles=f, units_per_device=k,
        n_phones=m, alpha=alpha, beta=beta, lam=lam,
    )


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            grade(n=-1)
        with pytest.raises(ValueError):
            grade(q=200, n=100)
        with pytest.raises(ValueError):
            grade(k=0)
        with pytest.raises(ValueError):
            grade(alpha=0)
        with pytest.raises(ValueError):
            grade(f=0, m=0)  # devices but no resources

    def test_logical_slots(self):
        assert grade(f=80, k=8).logical_slots == 10

    def test_logical_time_formula(self):
        params = grade(f=40, k=4, alpha=10.0)
        # ceil(4 * 25 / 40) = 3 waves
        assert params.logical_time(25) == pytest.approx(30.0)
        assert params.logical_time(0) == 0.0

    def test_physical_time_formula(self):
        params = grade(m=10, beta=5.0, lam=45.0)
        assert params.physical_time(25) == pytest.approx(3 * 5.0 + 45.0)
        assert params.physical_time(0) == 0.0

    def test_missing_tier_is_infeasible_time(self):
        assert grade(f=0, m=10).logical_time(5) == math.inf
        assert grade(m=0, f=40).physical_time(5) == math.inf

    def test_duplicate_grades_rejected(self):
        with pytest.raises(ValueError):
            AllocationProblem([grade("A"), grade("A")])
        with pytest.raises(ValueError):
            AllocationProblem([])


class TestEvaluate:
    def test_matches_hand_computation(self):
        problem = AllocationProblem([grade(n=100, f=40, k=4, m=10, alpha=10.0, beta=5.0, lam=45.0)])
        result = evaluate_allocation(problem, [60])
        # logical: ceil(240/40)=6 waves * 10 = 60; physical: ceil(40/10)=4*5+45 = 65.
        assert result.logical_time == pytest.approx(60.0)
        assert result.physical_time == pytest.approx(65.0)
        assert result.total_time == pytest.approx(65.0)

    def test_bounds_checked(self):
        problem = AllocationProblem([grade(n=10)])
        with pytest.raises(ValueError):
            evaluate_allocation(problem, [11])
        with pytest.raises(ValueError):
            evaluate_allocation(problem, [5, 5])

    def test_benchmark_devices_excluded(self):
        problem = AllocationProblem([grade(n=100, q=10)])
        result = evaluate_allocation(problem, [90])
        assert result.grades[0].physical == 0


class TestSolvers:
    def test_all_logical_when_phones_slow(self):
        problem = AllocationProblem(
            [grade(n=20, f=80, k=4, m=2, alpha=1.0, beta=100.0, lam=1000.0)]
        )
        result = solve_allocation(problem)
        assert result.x["High"] == 20
        assert result.total_time == pytest.approx(1.0)  # one 1-second wave

    def test_all_physical_when_cluster_tiny(self):
        problem = AllocationProblem(
            [grade(n=20, f=4, k=4, m=20, alpha=1000.0, beta=1.0, lam=2.0)]
        )
        result = solve_allocation(problem)
        assert result.x["High"] == 0
        assert result.total_time == pytest.approx(3.0)

    def test_no_lambda_for_all_logical_split(self):
        """Refinement over the paper: unused phones cost no startup."""
        problem = AllocationProblem(
            [grade(n=10, f=100, k=1, m=5, alpha=1.0, beta=1.0, lam=10_000.0)]
        )
        result = solve_allocation(problem)
        assert result.x["High"] == 10
        assert result.total_time == pytest.approx(1.0)

    def test_hybrid_beats_pure_strategies(self):
        problem = AllocationProblem(
            [grade(n=500, f=40, k=4, m=15, alpha=20.0, beta=16.2, lam=45.0)]
        )
        optimal = solve_allocation(problem)
        pure_logical = fixed_ratio_allocation(problem, 1.0)
        pure_physical = fixed_ratio_allocation(problem, 0.0)
        assert optimal.total_time < pure_logical.total_time
        assert optimal.total_time < pure_physical.total_time
        assert 0 < optimal.x["High"] < 500

    def test_secondary_objective_prefers_logical(self):
        # Generous resources: many splits achieve the optimum; the tie
        # must break toward max logical usage.
        problem = AllocationProblem(
            [grade(n=10, f=1000, k=1, m=100, alpha=5.0, beta=5.0, lam=0.0)]
        )
        result = solve_allocation(problem, prefer="logical")
        assert result.x["High"] == 10
        opposite = solve_allocation(problem, prefer="physical")
        assert opposite.x["High"] < 10
        assert opposite.total_time == result.total_time

    def test_multi_grade_coupling(self):
        problem = AllocationProblem(
            [
                grade("High", n=100, f=40, k=4, m=17, alpha=20.0, beta=16.2, lam=45.0),
                grade("Low", n=100, f=60, k=6, m=13, alpha=30.0, beta=21.6, lam=60.0),
            ]
        )
        result = solve_allocation(problem)
        brute = solve_allocation_brute(problem)
        assert result.total_time == pytest.approx(brute.total_time)

    def test_milp_matches_search(self):
        problem = AllocationProblem(
            [
                grade("High", n=60, f=40, k=4, m=8, alpha=12.0, beta=16.2, lam=45.0),
                grade("Low", n=80, f=30, k=6, m=6, alpha=20.0, beta=21.6, lam=60.0),
            ]
        )
        search = solve_allocation(problem)
        milp = solve_allocation_milp(problem)
        assert milp.total_time == pytest.approx(search.total_time, rel=1e-9)
        assert milp.total_logical == search.total_logical

    def test_zero_devices(self):
        problem = AllocationProblem([grade(n=5, q=5)])
        result = solve_allocation(problem)
        assert result.total_time == 0.0

    def test_resourceless_grade_rejected_at_construction(self):
        with pytest.raises(ValueError, match="no resources"):
            GradeAllocationParams(
                grade="G", n_devices=10, n_benchmark=0, bundles=0, units_per_device=1,
                n_phones=0, alpha=1.0, beta=1.0, lam=0.0,
            )

    def test_undersized_bundles_detected_as_infeasible(self):
        # f > 0 but f < k: the logical tier exists on paper yet cannot
        # host a single device, and there are no phones -> infeasible.
        params = GradeAllocationParams(
            grade="G", n_devices=10, n_benchmark=0, bundles=2, units_per_device=4,
            n_phones=0, alpha=1.0, beta=1.0, lam=0.0,
        )
        with pytest.raises(RuntimeError, match="infeasible"):
            solve_allocation(AllocationProblem([params]))

    def test_fixed_ratio_types(self):
        problem = AllocationProblem([grade(n=100)])
        for fraction, expected in ((1.0, 100), (0.75, 75), (0.5, 50), (0.25, 25), (0.0, 0)):
            result = fixed_ratio_allocation(problem, fraction)
            assert result.x["High"] == expected
        with pytest.raises(ValueError):
            fixed_ratio_allocation(problem, 1.5)


class TestSolverCrossCheck:
    @given(
        n=st.integers(min_value=1, max_value=40),
        f=st.integers(min_value=0, max_value=30),
        k=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=0, max_value=8),
        alpha=st.floats(min_value=0.5, max_value=50.0),
        beta=st.floats(min_value=0.5, max_value=50.0),
        lam=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_search_equals_brute_force(self, n, f, k, m, alpha, beta, lam):
        """The candidate search is exact: it always matches brute force."""
        if f // k == 0 and m == 0:
            return  # no resources at all: construction rejects it
        params = GradeAllocationParams(
            grade="G", n_devices=n, n_benchmark=0, bundles=f, units_per_device=k,
            n_phones=m, alpha=alpha, beta=beta, lam=lam,
        )
        problem = AllocationProblem([params])
        # Skip instances where one tier exists on paper but cannot host
        # anything (f > 0 but f < k): the search treats them correctly but
        # brute force is the reference here.
        brute = solve_allocation_brute(problem)
        if not math.isfinite(brute.total_time):
            return
        search = solve_allocation(problem)
        assert search.total_time == pytest.approx(brute.total_time, rel=1e-9)

    @given(
        n1=st.integers(min_value=1, max_value=15),
        n2=st.integers(min_value=1, max_value=15),
        m1=st.integers(min_value=1, max_value=5),
        m2=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_two_grade_search_equals_brute(self, n1, n2, m1, m2):
        problem = AllocationProblem(
            [
                grade("A", n=n1, f=8, k=4, m=m1, alpha=7.0, beta=3.0, lam=11.0),
                grade("B", n=n2, f=12, k=6, m=m2, alpha=9.0, beta=4.0, lam=13.0),
            ]
        )
        brute = solve_allocation_brute(problem)
        search = solve_allocation(problem)
        assert search.total_time == pytest.approx(brute.total_time, rel=1e-9)
        # Secondary objective: equal makespan, max logical usage.
        assert search.total_logical >= brute.total_logical
