"""The OutcomeSink contract and the block-vs-scalar ingestion differential.

Three layers of the same guarantee:

1. Protocol mechanics — structural ``isinstance`` checks, the
   bare-callable deprecation shim, block materialization.
2. Tier level — a ``LogicalSimulation`` round delivered to a
   ``CloudIngestSink`` in block mode leaves storage and the aggregation
   service bit-identical to scalar streaming.
3. Platform level — a full multi-tenant scenario replayed with
   ``cloud_blocks=True`` and ``cloud_blocks=False`` produces
   byte-identical reports (including a DeviceFlow tenant, which always
   streams).
"""

import warnings

import numpy as np
import pytest

from repro.cloud import (
    AggregationService,
    CallbackSink,
    CloudIngestSink,
    ObjectStorage,
    OutcomeSink,
    coerce_sink,
)
from repro.cloud.aggregation import AggregationTrigger
from repro.cluster import (
    DeviceAssignment,
    GradeExecutionPlan,
    K8sCluster,
    LogicalCostModel,
    LogicalSimulation,
    NodeSpec,
    ResourceBundle,
)
from repro.data.avazu import DeviceDataset
from repro.deviceflow import DeviceFlow, RealTimeAccumulatedStrategy
from repro.ml import standard_fl_flow
from repro.ml.model import LogisticRegressionModel
from repro.scenarios import (
    ArrivalSpec,
    DispatchSpec,
    GradeSpec,
    ScenarioSpec,
    TenantSpec,
    run_scenario,
)
from repro.simkernel import RandomStreams, Simulator

FEATURE_DIM = 16
MODEL_BYTES = 2048
NODES = [NodeSpec(cpus=10, memory_gb=20)] * 2
COST = LogicalCostModel(alpha={"Std": 9.0}, actor_startup=0.5, runner_setup=2.0)


# ----------------------------------------------------------------------
# protocol mechanics
# ----------------------------------------------------------------------
class TestProtocol:
    def test_structural_isinstance(self):
        class Good:
            def accept(self, outcome):
                pass

            def accept_block(self, block):
                pass

        class Missing:
            def accept(self, outcome):
                pass

        assert isinstance(Good(), OutcomeSink)
        assert not isinstance(Missing(), OutcomeSink)
        assert isinstance(CallbackSink(lambda o: None), OutcomeSink)
        sim = Simulator()
        sink = CloudIngestSink(
            sim, "t", ObjectStorage(),
            AggregationService(sim, ObjectStorage(), AggregationTrigger()),
        )
        assert isinstance(sink, OutcomeSink)

    def test_coerce_passes_sinks_and_none_through(self):
        sink = CallbackSink(lambda o: None)
        assert coerce_sink(sink) is sink
        assert coerce_sink(None) is None

    def test_coerce_wraps_bare_callable_with_deprecation(self):
        seen = []
        with pytest.warns(DeprecationWarning, match="bare callable"):
            wrapped = coerce_sink(seen.append)
        assert isinstance(wrapped, CallbackSink)
        assert wrapped.prefers_blocks is False
        wrapped.accept("outcome")
        assert seen == ["outcome"]

    def test_coerce_rejects_non_callables(self):
        with pytest.raises(TypeError):
            coerce_sink(42)
        with pytest.raises(TypeError):
            CallbackSink("not-callable")

    def test_run_round_warns_on_bare_callable(self):
        sim = Simulator()
        logical = LogicalSimulation(sim, K8sCluster(NODES), COST, streams=RandomStreams(0))
        plan = make_plan(n_devices=4, numeric=False)

        def drive():
            yield sim.process(logical.prepare([plan]))
            yield sim.process(logical.run_round(1, None, 0.0, 0, lambda o: None))

        sim.process(drive())
        with pytest.warns(DeprecationWarning, match="bare callable"):
            sim.run()
        logical.teardown()

    def test_flow_connected_sink_always_streams(self):
        sim = Simulator()
        service = AggregationService(sim, ObjectStorage(), AggregationTrigger())
        flow = DeviceFlow(sim)
        flow.register_task("t", RealTimeAccumulatedStrategy(thresholds=[1]), service.receive_message)
        sink = CloudIngestSink(
            sim, "t", ObjectStorage(), service, deviceflow=flow, prefer_blocks=True
        )
        assert sink.prefers_blocks is False
        direct = CloudIngestSink(sim, "t", ObjectStorage(), service)
        assert direct.prefers_blocks is True


# ----------------------------------------------------------------------
# tier-level differential
# ----------------------------------------------------------------------
def make_plan(n_devices=12, n_actors=4, numeric=True):
    rng = np.random.default_rng(17)
    assignments = []
    for i in range(n_devices):
        features = rng.integers(0, FEATURE_DIM, size=(10, 4)).astype(np.int32)
        labels = rng.integers(0, 2, size=10).astype(np.int8)
        assignments.append(
            DeviceAssignment(
                f"d{i:04d}", "Std", 10,
                dataset=DeviceDataset(f"d{i:04d}", features, labels) if numeric else None,
            )
        )
    return GradeExecutionPlan(
        grade="Std",
        assignments=assignments,
        n_actors=n_actors,
        bundle=ResourceBundle(cpus=1, memory_gb=1),
        flow=standard_fl_flow(epochs=1, batch_size=8),
        feature_dim=FEATURE_DIM,
        numeric=numeric,
    )


def run_tier_round(prefer_blocks):
    """One numeric round delivered through a CloudIngestSink."""
    sim = Simulator()
    logical = LogicalSimulation(
        sim, K8sCluster(NODES), COST, streams=RandomStreams(3), batch=True
    )
    storage = ObjectStorage()
    service = AggregationService(
        sim, storage, AggregationTrigger(), model=LogisticRegressionModel(FEATURE_DIM)
    )
    sink = CloudIngestSink(sim, "t", storage, service, prefer_blocks=prefer_blocks)
    plan = make_plan()

    def drive():
        yield sim.process(logical.prepare([plan], task_id="t"))
        yield sim.process(
            logical.run_round(1, np.zeros(FEATURE_DIM), 0.0, MODEL_BYTES, sink)
        )

    sim.process(drive())
    sim.run(batch=True)
    record = service.aggregate_now()
    logical.teardown()
    return storage, service, record


class TestTierDifferential:
    def test_block_and_scalar_ingestion_identical(self):
        storage_s, service_s, record_s = run_tier_round(prefer_blocks=False)
        storage_b, service_b, record_b = run_tier_round(prefer_blocks=True)

        # Aggregation: same fold, bit-identical model.
        assert np.array_equal(service_b.model.weights, service_s.model.weights)
        assert service_b.model.bias == service_s.model.bias
        assert record_b.n_updates == record_s.n_updates
        assert record_b.n_samples == record_s.n_samples
        assert record_b.time == record_s.time
        assert service_b.messages_received == service_s.messages_received
        assert service_b.bytes_received == service_s.bytes_received

        # Storage: same keys, same payload bits, same metadata.
        shared_keys = storage_s.keys()
        assert storage_b.keys() == shared_keys
        assert storage_b.put_count == storage_s.put_count
        assert storage_b.total_bytes_written == storage_s.total_bytes_written
        for key in shared_keys:
            head_b, head_s = storage_b.head(key), storage_s.head(key)
            assert head_b.size_bytes == head_s.size_bytes
            assert head_b.stored_at == head_s.stored_at
            assert head_b.writer == head_s.writer
            update_b, update_s = storage_b.get(key), storage_s.get(key)
            assert np.array_equal(update_b.weights, update_s.weights)
            assert update_b.bias == update_s.bias
            assert update_b.n_samples == update_s.n_samples

    def test_callback_sink_materializes_blocks_in_completion_order(self):
        # A CallbackSink handed to a batched tier must observe the same
        # per-device stream the legacy path produced (covered broadly by
        # test_numeric_equivalence; this pins the block-materialize path).
        block_seen, scalar_seen = [], []
        for collect, prefer in ((block_seen, True), (scalar_seen, False)):
            sim = Simulator()
            logical = LogicalSimulation(
                sim, K8sCluster(NODES), COST, streams=RandomStreams(3), batch=True
            )
            plan = make_plan(numeric=False)
            sink = CallbackSink(collect.append)
            assert sink.prefers_blocks is False or prefer

            def drive():
                yield sim.process(logical.prepare([plan], task_id="t"))
                yield sim.process(logical.run_round(1, None, 0.0, 0, sink))

            sim.process(drive())
            sim.run(batch=True)
            logical.teardown()
        assert [o.device_id for o in block_seen] == [o.device_id for o in scalar_seen]
        assert [o.finished_at for o in block_seen] == [o.finished_at for o in scalar_seen]


# ----------------------------------------------------------------------
# platform-level differential
# ----------------------------------------------------------------------
def sink_scenario() -> ScenarioSpec:
    """Two tenants: a DeviceFlow (always-streaming) one and a direct
    numeric one whose rounds take the columnar block path."""
    return ScenarioSpec(
        name="sink-differential",
        seed=0,
        horizon_s=600.0,
        cluster_nodes=2,
        tenants=[
            TenantSpec(
                name="flow",
                priority=5,
                rounds=2,
                grades=[GradeSpec(grade="High", n_devices=8, bundles=8, n_phones=1)],
                arrival=ArrivalSpec(kind="periodic", count=1, period_s=200.0, offset_s=10.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[3], failure_prob=0.1),
            ),
            TenantSpec(
                name="direct",
                priority=1,
                numeric=True,
                feature_dim=32,
                records_per_device=6,
                rounds=2,
                grades=[GradeSpec(grade="Low", n_devices=6, bundles=6)],
                arrival=ArrivalSpec(kind="trace", times=[20.0]),
            ),
        ],
    )


class TestPlatformDifferential:
    def test_cloud_blocks_report_byte_identical(self):
        block = run_scenario(sink_scenario(), cloud_blocks=True)
        scalar = run_scenario(sink_scenario(), cloud_blocks=False)
        assert block.to_json() == scalar.to_json()

    def test_cloud_blocks_matches_legacy_generator_path(self):
        block = run_scenario(sink_scenario(), batch=True, cloud_blocks=True).to_dict()
        legacy = run_scenario(sink_scenario(), batch=False, cloud_blocks=False).to_dict()
        assert block.pop("batch") is True and legacy.pop("batch") is False
        assert block == legacy
