"""Unit tests for the LR model, backends, optimizer and metrics."""

import numpy as np
import pytest

from repro.data import SyntheticAvazu
from repro.ml import (
    DEVICE_BACKEND,
    SERVER_BACKEND,
    LogisticRegressionModel,
    SGD,
    accuracy,
    log_loss,
    roc_auc,
)
from repro.ml.backends import backend_by_name


def small_dataset(seed=0, n_devices=30, records=40, dim=256):
    data = SyntheticAvazu(
        n_devices=n_devices, records_per_device=records, feature_dim=dim, seed=seed
    ).generate(test_records=500)
    features = np.concatenate([data.shard(d).features for d in data.device_ids()])
    labels = np.concatenate([data.shard(d).labels for d in data.device_ids()])
    return features, labels, data.test, dim


class TestMetrics:
    def test_accuracy_basic(self):
        labels = np.array([1, 0, 1, 0])
        probs = np.array([0.9, 0.1, 0.4, 0.6])
        assert accuracy(labels, probs) == pytest.approx(0.5)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_log_loss_perfect_prediction_near_zero(self):
        labels = np.array([1, 0])
        probs = np.array([1.0, 0.0])
        assert log_loss(labels, probs) < 1e-10

    def test_log_loss_uniform_is_ln2(self):
        labels = np.array([1, 0, 1, 0])
        probs = np.full(4, 0.5)
        assert log_loss(labels, probs) == pytest.approx(np.log(2))

    def test_roc_auc_perfect(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == pytest.approx(1.0)

    def test_roc_auc_inverted(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(labels, scores) == pytest.approx(0.0)

    def test_roc_auc_ties_averaged(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_roc_auc_single_class(self):
        assert roc_auc(np.array([1, 1]), np.array([0.1, 0.9])) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([1, 0]), np.array([0.5]))


class TestBackends:
    def test_registry(self):
        assert backend_by_name("pymnn-server") is SERVER_BACKEND
        assert backend_by_name("mnn-device") is DEVICE_BACKEND
        with pytest.raises(KeyError):
            backend_by_name("tensorflow")

    def test_gather_scores_matches_naive(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=64)
        features = rng.integers(0, 64, size=(10, 4))
        scores = SERVER_BACKEND.gather_scores(weights, 0.5, features)
        naive = weights[features].sum(axis=1) + 0.5
        assert np.allclose(scores, naive)

    def test_device_backend_is_float32(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=64)
        features = rng.integers(0, 64, size=(10, 4))
        scores = DEVICE_BACKEND.gather_scores(weights, 0.0, features)
        assert scores.dtype == np.float32

    def test_backends_agree_approximately_not_exactly(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=512)
        features = rng.integers(0, 512, size=(200, 10))
        server = SERVER_BACKEND.gather_scores(weights, 0.1, features)
        device = DEVICE_BACKEND.gather_scores(weights, 0.1, features)
        assert np.allclose(server, device, atol=1e-4)
        assert not np.array_equal(server.astype(np.float64), device.astype(np.float64))

    def test_sigmoid_extremes_stable(self):
        probs = SERVER_BACKEND.sigmoid(np.array([-800.0, 0.0, 800.0]))
        assert probs[0] == pytest.approx(0.0)
        assert probs[1] == pytest.approx(0.5)
        assert probs[2] == pytest.approx(1.0)


class TestSGD:
    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0)
        with pytest.raises(ValueError):
            SGD(l2=-1)
        with pytest.raises(ValueError):
            SGD(batch_size=0)

    def test_epoch_reduces_loss(self):
        features, labels, _, dim = small_dataset()
        model = LogisticRegressionModel(dim)
        before = log_loss(labels, model.predict_proba(features))
        optimizer = SGD(learning_rate=0.05, batch_size=32)
        weights, bias = optimizer.run_epochs(
            model.weights, model.bias, features, labels, epochs=5
        )
        model.set_params(weights, bias)
        after = log_loss(labels, model.predict_proba(features))
        assert after < before

    def test_deterministic_without_rng(self):
        features, labels, _, dim = small_dataset()
        optimizer = SGD(learning_rate=0.01)
        run_a = optimizer.run_epoch(np.zeros(dim), 0.0, features, labels)
        run_b = optimizer.run_epoch(np.zeros(dim), 0.0, features, labels)
        assert np.array_equal(run_a[0], run_b[0])
        assert run_a[1] == run_b[1]

    def test_l2_shrinks_weights(self):
        features, labels, _, dim = small_dataset()
        plain = SGD(learning_rate=0.05).run_epochs(np.zeros(dim), 0.0, features, labels, 3)
        decayed = SGD(learning_rate=0.05, l2=1.0).run_epochs(
            np.zeros(dim), 0.0, features, labels, 3
        )
        assert np.linalg.norm(decayed[0]) < np.linalg.norm(plain[0])

    def test_misaligned_rejected(self):
        optimizer = SGD()
        with pytest.raises(ValueError):
            optimizer.run_epoch(np.zeros(8), 0.0, np.zeros((3, 2), dtype=int), np.zeros(4))


class TestLogisticRegressionModel:
    def test_learns_synthetic_signal(self):
        features, labels, test, dim = small_dataset(records=60)
        model = LogisticRegressionModel(dim)
        baseline = model.evaluate(test.features, test.labels)
        model.fit_local(features, labels, epochs=30, learning_rate=0.1, batch_size=64)
        trained = model.evaluate(test.features, test.labels)
        assert trained["log_loss"] < baseline["log_loss"]
        assert trained["auc"] > 0.6

    def test_serialize_round_trip(self):
        model = LogisticRegressionModel(128)
        rng = np.random.default_rng(0)
        model.set_params(rng.normal(size=128), -0.7)
        restored = LogisticRegressionModel.deserialize(model.serialize())
        assert np.array_equal(restored.weights, model.weights)
        assert restored.bias == model.bias
        assert restored.feature_dim == 128

    def test_payload_size_matches_serialization(self):
        model = LogisticRegressionModel(4096)
        assert model.payload_size() == len(model.serialize())
        # The paper's ~33 KB uplink: 4096 float64 weights + envelope.
        assert 32_000 < model.payload_size() < 34_000

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(ValueError):
            LogisticRegressionModel.deserialize(b"XXXX" + b"\x00" * 16)

    def test_set_params_validates_shape(self):
        model = LogisticRegressionModel(16)
        with pytest.raises(ValueError):
            model.set_params(np.zeros(8), 0.0)

    def test_clone_is_independent(self):
        model = LogisticRegressionModel(16)
        model.set_params(np.ones(16), 1.0)
        copy = model.clone(backend=DEVICE_BACKEND)
        copy.weights[0] = 99.0
        assert model.weights[0] == 1.0
        assert copy.backend is DEVICE_BACKEND

    def test_backend_divergence_is_small(self):
        """Fig. 6 premise: backends cause tiny but nonzero divergence."""
        features, labels, test, dim = small_dataset(records=50)
        server_model = LogisticRegressionModel(dim, SERVER_BACKEND)
        device_model = LogisticRegressionModel(dim, DEVICE_BACKEND)
        for model in (server_model, device_model):
            model.fit_local(features, labels, epochs=5, learning_rate=0.05, batch_size=64)
        server_acc = server_model.evaluate(test.features, test.labels)["accuracy"]
        device_acc = device_model.evaluate(test.features, test.labels)["accuracy"]
        assert abs(server_acc - device_acc) < 0.01
        assert not np.array_equal(server_model.weights, device_model.weights)
