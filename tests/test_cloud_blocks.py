"""Unit tests for the columnar cloud path: put_block, MessageBlock,
submit_block, receive_block and insert_many.

The contract under test everywhere: the block variant of each cloud
operation is *observably equivalent* to its n scalar counterparts —
same counters, same reads, same folded model bits — while performing a
constant number of Python-level bookkeeping operations per block.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import (
    AggregationService,
    MetricsDatabase,
    ObjectStorage,
    SampleThresholdTrigger,
)
from repro.cloud.aggregation import AggregationTrigger
from repro.deviceflow import DeviceFlow, Message, MessageBlock, RealTimeAccumulatedStrategy
from repro.ml.fedavg import ModelUpdate
from repro.ml.model import LogisticRegressionModel
from repro.simkernel import RandomStreams, Simulator


def make_update(device_id, dim=8, value=1.0, n_samples=10, round_index=1):
    return ModelUpdate(
        device_id=device_id,
        round_index=round_index,
        weights=np.full(dim, value),
        bias=float(value),
        n_samples=n_samples,
    )


# ----------------------------------------------------------------------
# ObjectStorage.put_block
# ----------------------------------------------------------------------
class TestPutBlock:
    def test_accounting_equivalent_to_scalar_puts(self):
        scalar, block = ObjectStorage(), ObjectStorage()
        keys = [f"t/d{i}/r1" for i in range(7)]
        values = [{"i": i} for i in range(7)]
        sizes = [100 + i for i in range(7)]
        times = [float(10 + i) for i in range(7)]
        writers = [f"d{i}" for i in range(7)]
        for k, v, s, t, w in zip(keys, values, sizes, times, writers):
            scalar.put(k, v, s, now=t, writer=w)
        block.put_block(keys, values, np.array(sizes), now=np.array(times), writers=writers)

        assert block.put_count == scalar.put_count == 7
        assert block.total_bytes_written == scalar.total_bytes_written
        assert len(block) == len(scalar) == 7
        assert block.keys() == scalar.keys()

    def test_reads_and_heads_indistinguishable_from_scalar(self):
        scalar, block = ObjectStorage(), ObjectStorage()
        keys = [f"k{i}" for i in range(5)]
        values = list(range(5))
        for i, key in enumerate(keys):
            scalar.put(key, values[i], 64, now=float(i), writer=f"w{i}")
        block.put_block(keys, values, 64, now=np.arange(5.0), writers=[f"w{i}" for i in range(5)])

        for key in keys:
            assert block.get(key) == scalar.get(key)
            bh, sh = block.head(key), scalar.head(key)
            assert (bh.key, bh.value, bh.size_bytes, bh.stored_at, bh.writer) == (
                sh.key, sh.value, sh.size_bytes, sh.stored_at, sh.writer,
            )
        assert block.get_count == scalar.get_count
        assert block.total_bytes_read == scalar.total_bytes_read

    def test_broadcast_scalars_for_size_time_writer(self):
        storage = ObjectStorage()
        storage.put_block(["a", "b"], [1, 2], 50, now=3.0, writers="shared")
        assert storage.total_bytes_written == 100
        head = storage.head("b")
        assert head.size_bytes == 50 and head.stored_at == 3.0 and head.writer == "shared"

    def test_block_keys_support_delete_and_overwrite(self):
        storage = ObjectStorage()
        storage.put_block(["a", "b"], [1, 2], 10)
        storage.delete("a")
        assert "a" not in storage and "b" in storage
        storage.put("b", 99, 20, now=7.0)
        assert storage.get("b") == 99
        assert storage.head("b").stored_at == 7.0

    def test_validation(self):
        storage = ObjectStorage()
        with pytest.raises(ValueError):
            storage.put_block(["a"], [1, 2], 10)
        with pytest.raises(ValueError):
            storage.put_block(["a", "b"], [1, 2], 10, writers=["only-one"])
        with pytest.raises(ValueError):
            storage.put_block(["a"], [1], -5)
        assert storage.put_block([], [], 10) == 0
        assert len(storage) == 0 and storage.put_count == 0

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=12),
        scalar_size=st.booleans(),
        scalar_time=st.booleans(),
        shared_writer=st.booleans(),
    )
    def test_property_block_equals_scalar_for_any_shape(
        self, n, scalar_size, scalar_time, shared_writer
    ):
        keys = [f"k{i}" for i in range(n)]
        values = [i * 2 for i in range(n)]
        sizes = 32 if scalar_size else np.arange(n, dtype=np.int64) * 8
        times = 1.5 if scalar_time else np.arange(n, dtype=np.float64) / 2
        writers = "w" if shared_writer else [f"w{i}" for i in range(n)]

        scalar, block = ObjectStorage(), ObjectStorage()
        for i, key in enumerate(keys):
            scalar.put(
                key,
                values[i],
                int(sizes) if scalar_size else int(sizes[i]),
                now=float(times) if scalar_time else float(times[i]),
                writer=writers if shared_writer else writers[i],
            )
        assert block.put_block(keys, values, sizes, now=times, writers=writers) == n

        assert block.put_count == scalar.put_count
        assert block.total_bytes_written == scalar.total_bytes_written
        assert block.keys() == scalar.keys()
        for key in keys:
            assert block.get(key) == scalar.get(key)
            bh, sh = block.head(key), scalar.head(key)
            assert (bh.value, bh.size_bytes, bh.stored_at, bh.writer) == (
                sh.value, sh.size_bytes, sh.stored_at, sh.writer,
            )
        assert block.total_bytes_read == scalar.total_bytes_read


# ----------------------------------------------------------------------
# MetricsDatabase.insert_many
# ----------------------------------------------------------------------
class TestInsertMany:
    def test_appends_in_order_and_counts(self):
        db = MetricsDatabase()
        inserted = db.insert_many("rows", ({"i": i} for i in range(4)))
        assert inserted == 4
        assert db.column("rows", "i") == [0, 1, 2, 3]

    def test_records_are_copied(self):
        db = MetricsDatabase()
        record = {"a": 1}
        db.insert_many("t", [record])
        record["a"] = 99
        assert db.query("t") == [{"a": 1}]

    def test_rejects_bad_records(self):
        db = MetricsDatabase()
        with pytest.raises(TypeError):
            db.insert_many("t", [{"ok": 1}, "nope"])


# ----------------------------------------------------------------------
# MessageBlock
# ----------------------------------------------------------------------
class TestMessageBlock:
    def test_materializes_to_equivalent_scalar_messages(self):
        block = MessageBlock(
            task_id="t",
            round_index=3,
            device_ids=["a", "b"],
            payload_refs=["t/a/r3", "t/b/r3"],
            size_bytes=128,
            n_samples=np.array([5, 7]),
            finished_at=np.array([10.0, 12.0]),
            metadata={"grade": "High"},
        )
        assert len(block) == 2
        assert block.total_bytes == 256
        assert block.total_samples == 12
        messages = block.messages()
        assert [m.device_id for m in messages] == ["a", "b"]
        assert [m.created_at for m in messages] == [10.0, 12.0]
        assert [m.n_samples for m in messages] == [5, 7]
        assert all(m.metadata == {"grade": "High"} and m.task_id == "t" for m in messages)
        # explicit arrival stamp (what DeviceFlow.submit_block uses)
        assert [m.created_at for m in block.messages(created_at=42.0)] == [42.0, 42.0]

    def test_defaults_and_validation(self):
        block = MessageBlock(task_id="t", round_index=1, device_ids=["a"], payload_refs=["r"])
        assert block.n_samples.tolist() == [1]
        with pytest.raises(ValueError):
            MessageBlock(task_id="", round_index=1, device_ids=[], payload_refs=[])
        with pytest.raises(ValueError):
            MessageBlock(task_id="t", round_index=1, device_ids=["a", "b"], payload_refs=["r"])
        with pytest.raises(ValueError):
            MessageBlock(
                task_id="t", round_index=1, device_ids=["a"], payload_refs=["r"],
                n_samples=np.array([0]),
            )
        with pytest.raises(ValueError):
            MessageBlock(
                task_id="t", round_index=1, device_ids=["a"], payload_refs=["r"],
                update_weights=np.zeros((2, 4)),
            )


# ----------------------------------------------------------------------
# DeviceFlow.submit_block
# ----------------------------------------------------------------------
def build_flow(sim, received):
    flow = DeviceFlow(sim, streams=RandomStreams(7))
    flow.register_task("t", RealTimeAccumulatedStrategy(thresholds=[2]), received.append)
    return flow


class TestSubmitBlock:
    def test_equivalent_delivery_to_scalar_submits(self):
        def drive(use_block):
            sim = Simulator()
            received = []
            flow = build_flow(sim, received)
            refs = [f"t/d{i}/r1" for i in range(6)]
            ids = [f"d{i}" for i in range(6)]

            def feed():
                if use_block:
                    flow.submit_block(
                        MessageBlock(
                            task_id="t", round_index=1, device_ids=ids,
                            payload_refs=refs, size_bytes=64,
                            n_samples=np.full(6, 3, dtype=np.int64),
                        )
                    )
                else:
                    for device_id, ref in zip(ids, refs):
                        flow.submit(
                            Message(task_id="t", device_id=device_id, round_index=1,
                                    payload_ref=ref, size_bytes=64, n_samples=3)
                        )

            sim.schedule(5.0, feed)
            sim.run()
            return sim, flow, received

        sim_s, flow_s, recv_s = drive(use_block=False)
        sim_b, flow_b, recv_b = drive(use_block=True)
        stats_s, stats_b = flow_s.stats("t"), flow_b.stats("t")
        assert stats_b.received == stats_s.received == 6
        assert stats_b.delivered == stats_s.delivered
        assert stats_b.shelved == stats_s.shelved == 0
        assert [m.device_id for m in recv_b] == [m.device_id for m in recv_s]
        assert [m.payload_ref for m in recv_b] == [m.payload_ref for m in recv_s]
        assert all(m.created_at == 5.0 for m in recv_b)

    def test_unregistered_task_raises(self):
        sim = Simulator()
        flow = DeviceFlow(sim)
        with pytest.raises(KeyError):
            flow.submit_block(
                MessageBlock(task_id="ghost", round_index=1, device_ids=["a"], payload_refs=["r"])
            )


# ----------------------------------------------------------------------
# AggregationService.receive_block
# ----------------------------------------------------------------------
def make_block(updates, task_id="t", round_index=1, size_bytes=64):
    return MessageBlock(
        task_id=task_id,
        round_index=round_index,
        device_ids=[u.device_id for u in updates],
        payload_refs=[f"{task_id}/{u.device_id}/r{round_index}" for u in updates],
        size_bytes=size_bytes,
        n_samples=np.array([u.n_samples for u in updates], dtype=np.int64),
        update_weights=np.stack([u.weights for u in updates]),
        update_biases=np.array([u.bias for u in updates]),
    )


def scalar_service(sim, updates, trigger=None):
    storage = ObjectStorage()
    service = AggregationService(
        sim, storage, trigger or AggregationTrigger(), model=LogisticRegressionModel(8)
    )
    for update in updates:
        ref = f"t/{update.device_id}/r1"
        storage.put(ref, update, update.payload_bytes(), now=sim.now, writer=update.device_id)
        service.receive_message(
            Message(task_id="t", device_id=update.device_id, round_index=1,
                    payload_ref=ref, size_bytes=64, n_samples=update.n_samples)
        )
    return service


class TestReceiveBlock:
    def test_block_fold_bit_identical_to_scalar_stream(self):
        updates = [make_update(f"d{i}", value=0.1 + 0.3 * i, n_samples=3 + i) for i in range(9)]
        sim = Simulator()
        scalar = scalar_service(sim, updates)
        scalar_record = scalar.aggregate_now()

        block_service = AggregationService(
            sim, ObjectStorage(), AggregationTrigger(), model=LogisticRegressionModel(8)
        )
        block_service.receive_block(make_block(updates))
        block_record = block_service.aggregate_now()

        assert np.array_equal(block_service.model.weights, scalar.model.weights)
        assert block_service.model.bias == scalar.model.bias
        assert block_record.n_updates == scalar_record.n_updates == 9
        assert block_record.n_samples == scalar_record.n_samples
        assert block_service.messages_received == scalar.messages_received
        assert block_service.bytes_received == scalar.bytes_received

    def test_mixed_scalar_and_block_ingestion_is_exact(self):
        updates = [make_update(f"d{i}", value=1.0 / (i + 1), n_samples=2 + i) for i in range(8)]
        sim = Simulator()
        scalar = scalar_service(sim, updates)
        scalar.aggregate_now()

        mixed = AggregationService(
            sim, ObjectStorage(), AggregationTrigger(), model=LogisticRegressionModel(8)
        )
        # scalar head, block middle, scalar tail — any mix must fold exactly.
        mixed.receive_update(updates[0])
        mixed.receive_block(make_block(updates[1:6]))
        mixed.receive_update(updates[6])
        mixed.receive_update(updates[7])
        assert mixed.pending_updates == 8
        mixed.aggregate_now()

        assert np.array_equal(mixed.model.weights, scalar.model.weights)
        assert mixed.model.bias == scalar.model.bias

    def test_sample_threshold_trigger_fires_on_block(self):
        sim = Simulator()
        service = AggregationService(
            sim, ObjectStorage(), SampleThresholdTrigger(25), model=LogisticRegressionModel(8)
        )
        service.receive_block(make_block([make_update(f"d{i}", n_samples=10) for i in range(3)]))
        assert service.rounds_completed == 1
        assert service.pending_updates == 0

    def test_counting_mode_accepts_blocks_without_updates(self):
        sim = Simulator()
        service = AggregationService(sim, ObjectStorage(), AggregationTrigger(), model=None)
        service.receive_block(
            MessageBlock(task_id="t", round_index=1, device_ids=["a", "b"],
                         payload_refs=["r1", "r2"], size_bytes=10,
                         n_samples=np.array([4, 6]))
        )
        assert service.pending_updates == 2
        assert service.pending_samples == 10
        record = service.aggregate_now()
        assert record.n_updates == 2

    def test_model_mode_rejects_blocks_without_updates(self):
        sim = Simulator()
        service = AggregationService(
            sim, ObjectStorage(), AggregationTrigger(), model=LogisticRegressionModel(8)
        )
        with pytest.raises(TypeError):
            service.receive_block(
                MessageBlock(task_id="t", round_index=1, device_ids=["a"], payload_refs=["r"])
            )

    def test_empty_block_is_ignored(self):
        sim = Simulator()
        service = AggregationService(
            sim, ObjectStorage(), AggregationTrigger(), model=LogisticRegressionModel(8)
        )
        service.receive_block(
            MessageBlock(task_id="t", round_index=1, device_ids=[], payload_refs=[])
        )
        assert service.messages_received == 0
        assert service.pending_updates == 0
