"""Unit tests for processes, signals and combinators."""

import pytest

from repro.simkernel import AllOf, AnyOf, Interrupt, Signal, Simulator, Timeout


class TestProcessBasics:
    def test_process_advances_through_timeouts(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(("start", sim.now))
            yield Timeout(2.0)
            trace.append(("mid", sim.now))
            yield Timeout(3.0)
            trace.append(("end", sim.now))
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert trace == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]
        assert proc.done
        assert proc.result == "done"
        assert proc.error is None

    def test_timeout_carries_value(self):
        sim = Simulator()
        got = []

        def worker():
            value = yield Timeout(1.0, value="payload")
            got.append(value)

        sim.process(worker())
        sim.run()
        assert got == ["payload"]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-0.5)

    def test_yielding_non_waitable_is_type_error(self):
        sim = Simulator(strict=False)

        def bad():
            yield 42

        proc = sim.process(bad())
        sim.run()
        assert isinstance(proc.error, TypeError)

    def test_process_waits_on_child_process(self):
        sim = Simulator()
        order = []

        def child():
            yield Timeout(5.0)
            order.append("child")
            return 99

        def parent():
            value = yield sim.process(child())
            order.append(("parent", value, sim.now))

        sim.process(parent())
        sim.run()
        assert order == ["child", ("parent", 99, 5.0)]

    def test_child_error_raised_in_parent(self):
        sim = Simulator()
        caught = []

        def child():
            yield Timeout(1.0)
            raise RuntimeError("child failed")

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["child failed"]

    def test_waiting_on_finished_process_resumes_immediately(self):
        sim = Simulator()

        def child():
            return 7
            yield  # pragma: no cover - makes this a generator

        def parent():
            proc = sim.process(child())
            yield Timeout(10.0)
            assert proc.done
            value = yield proc
            return value

        parent_proc = sim.process(parent())
        sim.run()
        assert parent_proc.result == 7
        assert sim.now == 10.0


class TestSignals:
    def test_fire_wakes_waiters_with_value(self):
        sim = Simulator()
        signal = Signal("data-ready")
        got = []

        def waiter(tag):
            value = yield signal
            got.append((tag, value, sim.now))

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(3.0, signal.fire, {"k": 1})
        sim.run()
        assert got == [("a", {"k": 1}, 3.0), ("b", {"k": 1}, 3.0)]

    def test_wait_on_already_fired_signal(self):
        sim = Simulator()
        signal = Signal()
        signal.fire("early")
        got = []

        def waiter():
            value = yield signal
            got.append(value)

        sim.process(waiter())
        sim.run()
        assert got == ["early"]

    def test_double_fire_is_error(self):
        signal = Signal()
        signal.fire()
        with pytest.raises(RuntimeError):
            signal.fire()

    def test_fail_raises_in_waiter(self):
        sim = Simulator()
        signal = Signal()
        caught = []

        def waiter():
            try:
                yield signal
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        sim.schedule(1.0, signal.fail, ValueError("no"))
        sim.run()
        assert caught == ["no"]


class TestCombinators:
    def test_all_of_collects_in_input_order(self):
        sim = Simulator()
        result = []

        def slow():
            yield Timeout(5.0)
            return "slow"

        def fast():
            yield Timeout(1.0)
            return "fast"

        def parent():
            values = yield AllOf([sim.process(slow()), sim.process(fast())])
            result.append((values, sim.now))

        sim.process(parent())
        sim.run()
        assert result == [(["slow", "fast"], 5.0)]

    def test_all_of_empty_resolves_immediately(self):
        sim = Simulator()
        seen = []

        def parent():
            values = yield AllOf([])
            seen.append(values)

        sim.process(parent())
        sim.run()
        assert seen == [[]]

    def test_all_of_propagates_first_error(self):
        sim = Simulator()
        caught = []

        def ok():
            yield Timeout(10.0)

        def bad():
            yield Timeout(1.0)
            raise KeyError("broken")

        def parent():
            try:
                yield AllOf([sim.process(ok()), sim.process(bad())])
            except KeyError:
                caught.append(sim.now)

        sim.process(parent())
        sim.run()
        assert caught == [1.0]

    def test_any_of_returns_index_and_value(self):
        sim = Simulator()
        seen = []

        def slow():
            yield Timeout(9.0)
            return "slow"

        def fast():
            yield Timeout(2.0)
            return "fast"

        def parent():
            index, value = yield AnyOf([sim.process(slow()), sim.process(fast())])
            seen.append((index, value, sim.now))

        sim.process(parent())
        sim.run()
        assert seen == [(1, "fast", 2.0)]

    def test_any_of_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf([])


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        sim = Simulator()
        seen = []

        def sleeper():
            try:
                yield Timeout(100.0)
            except Interrupt as exc:
                seen.append((exc.cause, sim.now))

        proc = sim.process(sleeper())
        sim.schedule(3.0, proc.interrupt, "wake up")
        sim.run()
        assert seen == [("wake up", 3.0)]

    def test_interrupt_after_done_is_noop(self):
        sim = Simulator()

        def quick():
            yield Timeout(1.0)
            return "ok"

        proc = sim.process(quick())
        sim.run()
        proc.interrupt("late")
        sim.run()
        assert proc.result == "ok"
