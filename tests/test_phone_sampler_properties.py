"""Property suites for the shared benchmark-sampler ticker and _partition.

The shared ticker replaces N per-phone polling processes with one
recurring pooled tick; Hypothesis drives full benchmark sessions over
arbitrary poll intervals and stage windows (including intervals that
collide with or exceed the windows, where tie-breaking against stage
boundaries is subtle) and asserts the sampled series — timestamps,
contents, and session end times — is identical to the per-phone loops'.
The round-robin queue partition that both the legacy generators and the
wave schedule rely on is checked for exactly-once coverage.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import CallbackSink
from repro.cluster.actor import DeviceAssignment
from repro.ml import standard_fl_flow
from repro.phones import (
    PhoneAssignment,
    PhoneMgr,
    PhysicalCostModel,
    SimulatedAdb,
    VirtualPhone,
    build_fleet,
)
from repro.simkernel import RandomStreams, Simulator


def run_benchmark_session(batch: bool, poll: float, window: float, n_bench: int,
                          rounds: int, seed: int):
    sim = Simulator()
    adb = SimulatedAdb()
    streams = RandomStreams(seed)
    phones = []
    for i, spec in enumerate(build_fleet(n_bench, 0)):
        phone = VirtualPhone(sim, f"ph-{i:02d}", spec, streams=streams)
        adb.register(phone)
        phones.append(phone)
    samples = []
    mgr = PhoneMgr(
        sim, adb, phones,
        cost_model=PhysicalCostModel(stage_window=window),
        streams=streams, poll_interval=poll, batch=batch,
        on_sample=samples.append,
    )
    plan = PhoneAssignment(
        grade="High",
        assignments=[],
        benchmarking=[DeviceAssignment(f"b{i}", "High", 10) for i in range(n_bench)],
        n_phones=0,
        flow=standard_fl_flow(),
        numeric=False,
    )

    def drive():
        yield sim.process(mgr.prepare([plan], task_id="t"))
        for round_index in range(1, rounds + 1):
            yield sim.process(mgr.run_round(round_index, None, 0.0, 33000, CallbackSink(lambda o: None)))

    sim.process(drive())
    sim.run(batch=batch)
    return samples, mgr.benchmark_records, sim.now


@given(
    poll=st.floats(min_value=0.05, max_value=40.0, allow_nan=False, allow_infinity=False),
    window=st.floats(min_value=0.5, max_value=20.0, allow_nan=False, allow_infinity=False),
    n_bench=st.integers(min_value=1, max_value=3),
    rounds=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_shared_ticker_matches_per_phone_loops(poll, window, n_bench, rounds, seed):
    legacy_samples, legacy_records, legacy_end = run_benchmark_session(
        False, poll, window, n_bench, rounds, seed
    )
    ticker_samples, ticker_records, ticker_end = run_benchmark_session(
        True, poll, window, n_bench, rounds, seed
    )
    assert ticker_end == legacy_end
    assert len(ticker_samples) == len(legacy_samples)
    for a, b in zip(legacy_samples, ticker_samples):
        # Dataclass equality covers timestamp, serial and every metric.
        assert a == b
    for rec_a, rec_b in zip(legacy_records, ticker_records):
        assert rec_a.serial == rec_b.serial
        assert rec_a.boundaries == rec_b.boundaries
        assert rec_a.samples == rec_b.samples


@given(
    n_assignments=st.integers(min_value=0, max_value=200),
    n_phones=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_partition_round_robin_exactly_once(n_assignments, n_phones):
    assignments = [DeviceAssignment(f"d{i}", "Std", 1 + i) for i in range(n_assignments)]
    queues = PhoneMgr._partition(assignments, n_phones)
    assert len(queues) == n_phones
    # Every assignment lands exactly once, at position index // n_phones of
    # queue index % n_phones — the layout the wave schedule inverts.
    seen = []
    for phone_index, queue in enumerate(queues):
        for wave_index, assignment in enumerate(queue):
            original = wave_index * n_phones + phone_index
            assert assignments[original] is assignment
            seen.append(assignment.device_id)
    assert sorted(seen) == sorted(a.device_id for a in assignments)
    # Balanced: queue lengths differ by at most one, longest first.
    lengths = [len(q) for q in queues]
    assert max(lengths) - min(lengths) <= 1
    assert lengths == sorted(lengths, reverse=True)
