"""Unit tests for the logical-simulation cluster substrate."""

import numpy as np
import pytest

from repro.cloud import CallbackSink
from repro.cluster import (
    DeviceAssignment,
    GradeExecutionPlan,
    JobState,
    K8sCluster,
    LogicalCostModel,
    LogicalSimulation,
    NodeSpec,
    PlacementStrategy,
    RayJob,
    ResourceBundle,
)
from repro.cluster.resources import WorkerNode
from repro.data import SyntheticAvazu
from repro.ml import standard_fl_flow
from repro.simkernel import ProcessError, RandomStreams, Simulator, Timeout


class TestResourceBundle:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBundle(cpus=-1)
        with pytest.raises(ValueError):
            ResourceBundle(cpus=0, memory_gb=0, gpus=0)

    def test_units_relative_to_unit_bundle(self):
        unit = ResourceBundle(cpus=1, memory_gb=1)
        high = ResourceBundle(cpus=4, memory_gb=12)
        low = ResourceBundle(cpus=1, memory_gb=6)
        assert high.units_relative_to(unit) == 12
        assert low.units_relative_to(unit) == 6

    def test_units_paper_example(self):
        # §IV-B: a High-grade device requiring 8 unit bundles.
        unit = ResourceBundle(cpus=1, memory_gb=1)
        grade = ResourceBundle(cpus=8, memory_gb=8)
        assert grade.units_relative_to(unit) == 8

    def test_units_missing_dimension_rejected(self):
        unit = ResourceBundle(cpus=1, memory_gb=1, gpus=0)
        with_gpu = ResourceBundle(cpus=1, memory_gb=1, gpus=1)
        with pytest.raises(ValueError):
            with_gpu.units_relative_to(unit)

    def test_scaled(self):
        bundle = ResourceBundle(cpus=2, memory_gb=4).scaled(1.5)
        assert bundle.cpus == 3
        assert bundle.memory_gb == 6


class TestWorkerNode:
    def test_allocate_release_cycle(self):
        node = WorkerNode("n0", NodeSpec(cpus=8, memory_gb=16))
        bundle = ResourceBundle(cpus=4, memory_gb=12)
        assert node.can_fit(bundle)
        node.allocate(bundle)
        assert not node.can_fit(bundle)
        assert not node.idle
        node.release(bundle)
        assert node.idle

    def test_over_allocation_rejected(self):
        node = WorkerNode("n0", NodeSpec(cpus=2, memory_gb=2))
        with pytest.raises(RuntimeError):
            node.allocate(ResourceBundle(cpus=4, memory_gb=1))

    def test_over_release_detected(self):
        node = WorkerNode("n0", NodeSpec(cpus=2, memory_gb=2))
        with pytest.raises(RuntimeError):
            node.release(ResourceBundle(cpus=1, memory_gb=1))


class TestK8sCluster:
    def test_default_experiment_cluster_matches_paper(self):
        cluster = K8sCluster.default_experiment_cluster()
        assert cluster.total_cpus == 200
        assert cluster.total_memory_gb == 300

    def test_elastic_scaling(self):
        cluster = K8sCluster([NodeSpec(4, 8)])
        node_id = cluster.add_node(NodeSpec(4, 8))
        assert cluster.total_cpus == 8
        cluster.remove_node(node_id)
        assert cluster.total_cpus == 4

    def test_remove_busy_node_rejected(self):
        cluster = K8sCluster([NodeSpec(4, 8)])
        group = cluster.allocate([ResourceBundle(cpus=2, memory_gb=2)])
        node_id = group.node_ids[0]
        with pytest.raises(RuntimeError):
            cluster.remove_node(node_id)

    def test_gang_allocation_all_or_nothing(self):
        cluster = K8sCluster([NodeSpec(4, 8), NodeSpec(4, 8)])
        # 3 bundles of 3 CPUs: only 2 fit (one per node); gang must fail
        # without leaking partial allocations.
        bundles = [ResourceBundle(cpus=3, memory_gb=1)] * 3
        assert cluster.allocate(bundles) is None
        assert cluster.free_cpus == 8

    def test_pack_fills_first_node(self):
        cluster = K8sCluster([NodeSpec(8, 16), NodeSpec(8, 16)])
        group = cluster.allocate(
            [ResourceBundle(cpus=2, memory_gb=2)] * 3, PlacementStrategy.PACK
        )
        assert len(set(group.node_ids)) == 1

    def test_spread_uses_both_nodes(self):
        cluster = K8sCluster([NodeSpec(8, 16), NodeSpec(8, 16)])
        group = cluster.allocate(
            [ResourceBundle(cpus=2, memory_gb=2)] * 2, PlacementStrategy.SPREAD
        )
        assert len(set(group.node_ids)) == 2

    def test_release_returns_capacity(self):
        cluster = K8sCluster([NodeSpec(8, 16)])
        group = cluster.allocate([ResourceBundle(cpus=4, memory_gb=4)])
        assert cluster.free_cpus == 4
        cluster.release(group)
        assert cluster.free_cpus == 8

    def test_double_release_rejected(self):
        cluster = K8sCluster([NodeSpec(8, 16)])
        group = cluster.allocate([ResourceBundle(cpus=1, memory_gb=1)])
        cluster.release(group)
        with pytest.raises(RuntimeError):
            cluster.release(group)

    def test_can_allocate_is_side_effect_free(self):
        cluster = K8sCluster([NodeSpec(4, 8)])
        assert cluster.can_allocate([ResourceBundle(cpus=4, memory_gb=8)])
        assert cluster.free_cpus == 4

    def test_empty_allocation_rejected(self):
        cluster = K8sCluster([NodeSpec(4, 8)])
        with pytest.raises(ValueError):
            cluster.allocate([])


class TestLogicalCostModel:
    def test_waves(self):
        model = LogicalCostModel()
        assert model.waves(100, 10) == 10
        assert model.waves(101, 10) == 11
        assert model.waves(0, 10) == 0

    def test_device_round_duration_scales_with_work(self):
        model = LogicalCostModel(alpha={"High": 10.0})
        assert model.device_round_duration("High") == 10.0
        assert model.device_round_duration("High", model.flow_reference_work * 2) == 20.0

    def test_unknown_grade(self):
        with pytest.raises(KeyError):
            LogicalCostModel().device_round_duration("Ultra")

    def test_tier_duration_closed_form(self):
        model = LogicalCostModel(alpha={"High": 10.0})
        assert model.tier_duration("High", 25, 10) == 30.0

    def test_transfer_duration(self):
        model = LogicalCostModel()
        small = model.transfer_duration(0)
        large = model.transfer_duration(10**9)
        assert small == pytest.approx(model.download_latency)
        assert large > 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LogicalCostModel(alpha={})
        with pytest.raises(ValueError):
            LogicalCostModel(alpha={"High": -1.0})
        with pytest.raises(ValueError):
            LogicalCostModel().waves(10, 0)


class TestRayJob:
    def test_successful_lifecycle(self):
        sim = Simulator()

        def body():
            yield Timeout(5.0)
            return 42

        job = RayJob(body, name="test-job").submit(sim)
        assert job.state is JobState.PENDING
        sim.run()
        assert job.state is JobState.SUCCEEDED
        assert job.result == 42
        assert job.duration == 5.0
        assert job.completion.fired

    def test_failed_job_captured(self):
        sim = Simulator()

        def body():
            yield Timeout(1.0)
            raise RuntimeError("job exploded")

        job = RayJob(body).submit(sim)
        waited = []

        def waiter():
            try:
                yield job.completion
            except RuntimeError as exc:
                waited.append(str(exc))

        sim.process(waiter())
        sim.run()
        assert job.state is JobState.FAILED
        assert waited == ["job exploded"]

    def test_double_submit_rejected(self):
        sim = Simulator()

        def body():
            return None
            yield  # pragma: no cover

        job = RayJob(body).submit(sim)
        with pytest.raises(RuntimeError):
            job.submit(sim)


def build_plan(n_devices, n_actors, grade="High", numeric=False, flow=None):
    assignments = [
        DeviceAssignment(device_id=f"d{i}", grade=grade, n_samples=10)
        for i in range(n_devices)
    ]
    return GradeExecutionPlan(
        grade=grade,
        assignments=assignments,
        n_actors=n_actors,
        bundle=ResourceBundle(cpus=4, memory_gb=12),
        flow=flow or standard_fl_flow(epochs=1),
        numeric=numeric,
    )


class TestLogicalSimulation:
    def test_time_only_round_makespan(self):
        sim = Simulator()
        cluster = K8sCluster.default_experiment_cluster()
        cost = LogicalCostModel(alpha={"High": 10.0}, actor_startup=0.0, runner_setup=0.0,
                                download_latency=0.0, download_bandwidth_bps=1e18)
        logical = LogicalSimulation(sim, cluster, cost)
        flow = standard_fl_flow()  # total_work == reference -> alpha as-is
        plan = build_plan(25, 10, flow=flow)
        outcomes = []

        def run():
            yield sim.process(logical.prepare([plan], task_id="t"))
            result = yield sim.process(
                logical.run_round(1, None, 0.0, model_bytes=0, sink=CallbackSink(outcomes.append))
            )
            return result

        proc = sim.process(run())
        sim.run()
        result = proc.result
        # 25 devices over 10 actors -> 3 waves of 10 s.
        assert result.duration == pytest.approx(30.0)
        assert result.n_devices == 25
        assert len(outcomes) == 25
        logical.teardown()
        assert cluster.free_cpus == cluster.total_cpus

    def test_numeric_round_produces_updates(self):
        sim = Simulator()
        cluster = K8sCluster.default_experiment_cluster()
        logical = LogicalSimulation(sim, cluster, streams=RandomStreams(3))
        data = SyntheticAvazu(n_devices=6, records_per_device=15, feature_dim=128, seed=1).generate()
        assignments = [
            DeviceAssignment(device_id=d, grade="High", n_samples=data.shard(d).n_samples,
                             dataset=data.shard(d))
            for d in data.device_ids()
        ]
        plan = GradeExecutionPlan(
            grade="High",
            assignments=assignments,
            n_actors=2,
            bundle=ResourceBundle(cpus=4, memory_gb=12),
            flow=standard_fl_flow(epochs=1),
            feature_dim=128,
            numeric=True,
        )
        updates = []

        def run():
            yield sim.process(logical.prepare([plan]))
            yield sim.process(
                logical.run_round(
                    1, np.zeros(128), 0.0, model_bytes=1024,
                    sink=CallbackSink(lambda o: updates.append(o.update)),
                )
            )

        sim.process(run())
        sim.run()
        assert len(updates) == 6
        assert all(u is not None for u in updates)
        assert {u.device_id for u in updates} == set(data.device_ids())

    def test_insufficient_cluster_rejected(self):
        sim = Simulator()
        cluster = K8sCluster([NodeSpec(2, 2)])
        logical = LogicalSimulation(sim, cluster)
        plan = build_plan(4, 4)

        def run():
            yield sim.process(logical.prepare([plan]))

        proc = sim.process(run())
        with pytest.raises(ProcessError):
            sim.run()
        assert proc.error is not None or sim.orphan_failures

    def test_round_before_prepare_rejected(self):
        sim = Simulator()
        logical = LogicalSimulation(sim, K8sCluster([NodeSpec(8, 16)]))
        logical.plans = [build_plan(2, 1)]
        with pytest.raises(RuntimeError):
            list(logical.run_round(1, None, 0.0, 0, CallbackSink(lambda o: None)))

    def test_partition_round_robin(self):
        assignments = [DeviceAssignment(f"d{i}", "High", 1) for i in range(5)]
        queues = LogicalSimulation._partition(assignments, 2)
        assert [a.device_id for a in queues[0]] == ["d0", "d2", "d4"]
        assert [a.device_id for a in queues[1]] == ["d1", "d3"]

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            build_plan(4, 0)
        with pytest.raises(ValueError):
            DeviceAssignment("d", "High", n_samples=0)
