"""Scenario-engine tests: specs, deferred submission, faults, determinism.

The heart of the suite is the scenario-level extension of the repo's
differential-test pattern: the same spec + seed must produce
byte-identical reports across runs, and the batched fast path must agree
with the legacy per-device generator path on every KPI.
"""

import json

import pytest

from repro import GradeRequirement, PlatformConfig, ResourceBundle, SimDC, TaskSpec, TaskState
from repro.cluster import NodeSpec
from repro.ml import standard_fl_flow
from repro.scenarios import (
    SCENARIOS,
    ArrivalSpec,
    DispatchSpec,
    FaultSpec,
    GradeSpec,
    PopulationSpec,
    ScenarioRunner,
    ScenarioSpec,
    TenantSpec,
    build_scenario,
    run_scenario,
)
from repro.scenarios.kpis import jain_index
from repro.simkernel import RandomStreams


def tiny_scenario(**overrides) -> ScenarioSpec:
    """A fast two-tenant scenario the fault/determinism tests perturb."""
    defaults = {
        "name": "tiny",
        "seed": 0,
        "horizon_s": 600.0,
        "cluster_nodes": 2,  # 40 bundles
        "tenants": [
            TenantSpec(
                name="alpha",
                priority=5,
                rounds=2,
                grades=[GradeSpec(grade="High", n_devices=8, bundles=8, n_phones=1)],
                arrival=ArrivalSpec(kind="periodic", count=2, period_s=200.0, offset_s=10.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[3], failure_prob=0.1),
            ),
            TenantSpec(
                name="beta",
                priority=1,
                numeric=True,
                feature_dim=32,
                records_per_device=6,
                grades=[GradeSpec(grade="Low", n_devices=6, bundles=6)],
                arrival=ArrivalSpec(kind="poisson", count=2, rate_per_hour=30.0),
            ),
        ],
    }
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ----------------------------------------------------------------------
# spec serialization and validation
# ----------------------------------------------------------------------
class TestSpecSerialization:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_library_specs_round_trip_through_dicts(self, name):
        spec = build_scenario(name, scale=300, seed=4)
        data = spec.to_dict()
        # The dict must be plain data (JSON-serializable without helpers).
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(data)))
        assert rebuilt.to_dict() == data

    def test_round_tripped_spec_runs_identically(self):
        spec = tiny_scenario()
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert run_scenario(rebuilt).to_json() == run_scenario(spec).to_json()

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            ArrivalSpec(kind="lognormal")
        with pytest.raises(ValueError):
            ArrivalSpec(kind="trace", times=[])
        with pytest.raises(ValueError):
            DispatchSpec(kind="multicast")
        with pytest.raises(ValueError):
            FaultSpec(kind="network_degradation", at=10.0, until=5.0, factor=0.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="straggler", at=0.0, until=10.0, factor=0.9)
        with pytest.raises(ValueError):
            PopulationSpec(network_mix=[["carrier-pigeon", 1.0]])
        with pytest.raises(ValueError):
            tiny_scenario(tenants=[])

    def test_arrival_processes(self):
        rng = RandomStreams(0).get("test.arrivals")
        assert ArrivalSpec(kind="trace", times=[5.0, 1.0]).submission_times(rng) == [1.0, 5.0]
        periodic = ArrivalSpec(kind="periodic", count=3, period_s=60.0, offset_s=30.0)
        assert periodic.submission_times(rng) == [30.0, 90.0, 150.0]
        poisson = ArrivalSpec(kind="poisson", count=50, rate_per_hour=60.0)
        times = poisson.submission_times(RandomStreams(0).get("test.arrivals"))
        assert len(times) == 50
        assert times == sorted(times) and times[0] > 0
        # Mean gap should be in the vicinity of 60s (rate 60/h).
        assert 30.0 < times[-1] / 50 < 120.0

    def test_from_dict_respects_field_defaults(self):
        tenant = TenantSpec.from_dict({"name": "defaults-only"})
        assert len(tenant.grades) == 1  # the documented default grade

    def test_same_length_tenant_names_get_distinct_datasets(self):
        a = TenantSpec(name="model-a").build_task("s", 0, 0, PopulationSpec())
        b = TenantSpec(name="model-b").build_task("s", 0, 0, PopulationSpec())
        assert a.dataset_seed != b.dataset_seed

    def test_population_failure_prob_combines_network_and_dropout(self):
        clean = PopulationSpec(network_mix=[["wifi", 1.0]])
        assert clean.upload_failure_prob() == pytest.approx(0.01)
        flaky = PopulationSpec(network_mix=[["wifi", 1.0]], dropout_prob=0.5)
        assert flaky.upload_failure_prob() == pytest.approx(1 - 0.99 * 0.5)


# ----------------------------------------------------------------------
# deferred submission (the platform-level path the engine rides)
# ----------------------------------------------------------------------
def _small_platform(**kwargs):
    return SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)] * 2, **kwargs))


def _small_task(name="deferred"):
    return TaskSpec(
        name=name,
        grades=[
            GradeRequirement(
                grade="High", n_devices=4, bundles=4,
                device_bundle=ResourceBundle(cpus=1, memory_gb=1),
            )
        ],
        flow=standard_fl_flow(epochs=1),
        feature_dim=32,
        records_per_device=6,
    )


class TestDeferredSubmission:
    def test_submit_at_delays_queue_entry(self):
        platform = _small_platform()
        spec = _small_task()
        platform.submit(spec, at=50.0)
        assert platform.task_manager.pending_submissions == 1
        assert not platform.task_manager.all_idle
        platform.run(until=49.0)
        assert spec.state is TaskState.PENDING
        platform.run_until_idle(max_time=1e6)
        result = platform.result(spec.task_id)
        assert result.state is TaskState.COMPLETED
        assert result.started_at >= 50.0
        assert platform.task_manager.pending_submissions == 0

    def test_submit_in_the_past_rejected(self):
        platform = _small_platform()
        platform.run(until=100.0)
        with pytest.raises(ValueError):
            platform.submit(_small_task(), at=50.0)

    def test_deferred_matches_immediate_submission_at_same_time(self):
        def run(deferred: bool):
            platform = _small_platform()
            spec = _small_task()
            if deferred:
                platform.submit(spec, at=0.0)
            else:
                platform.submit(spec)
            platform.run_until_idle(max_time=1e6)
            result = platform.result(spec.task_id)
            return (result.makespan, result.rounds[-1].test_loss)

        assert run(True) == run(False)


# ----------------------------------------------------------------------
# determinism + batched/legacy equivalence (the differential contract)
# ----------------------------------------------------------------------
class TestScenarioDeterminism:
    def test_same_spec_same_seed_byte_identical_report(self):
        first = run_scenario(tiny_scenario())
        second = run_scenario(tiny_scenario())
        assert first.to_json() == second.to_json()

    def test_different_seed_changes_the_run(self):
        first = run_scenario(tiny_scenario(seed=0))
        second = run_scenario(tiny_scenario(seed=1))
        assert first.to_json() != second.to_json()

    def test_batched_and_legacy_paths_agree(self):
        batched = run_scenario(tiny_scenario(), batch=True).to_dict()
        legacy = run_scenario(tiny_scenario(), batch=False).to_dict()
        assert batched.pop("batch") is True and legacy.pop("batch") is False
        assert batched == legacy

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_library_scenarios_deterministic_at_small_scale(self, name):
        spec_a = build_scenario(name, scale=120, seed=2)
        spec_b = build_scenario(name, scale=120, seed=2)
        assert run_scenario(spec_a).to_json() == run_scenario(spec_b).to_json()

    def test_mid_round_degradation_identical_across_batch_modes(self):
        """A degradation window opening *mid-round* must not split paths.

        The window lands while tier waves and DeviceFlow deliveries are
        in flight, so the restore event interleaves with same-timestamp
        kernel work — exactly where the batched loop's draining order
        could diverge from the legacy generator path.
        """
        faults = [
            FaultSpec(kind="network_degradation", at=30.0, until=120.0, factor=0.05),
            FaultSpec(kind="network_degradation", at=60.0, until=90.0, factor=0.5),
        ]
        batched = run_scenario(tiny_scenario(faults=faults), batch=True).to_dict()
        legacy = run_scenario(tiny_scenario(faults=faults), batch=False).to_dict()
        assert batched.pop("batch") is True and legacy.pop("batch") is False
        assert batched == legacy


# ----------------------------------------------------------------------
# KPIs
# ----------------------------------------------------------------------
class TestScenarioReport:
    def test_report_counts_and_kpis(self):
        report = run_scenario(tiny_scenario())
        assert report.total_tasks == 4
        assert set(report.tenants) == {"alpha", "beta"}
        alpha = report.tenants["alpha"]
        assert alpha.submitted == alpha.completed == 2
        assert alpha.makespan.n == 2 and alpha.makespan.mean > 0
        assert alpha.round_duration.n == 4  # 2 tasks x 2 rounds
        assert alpha.updates_expected == 32
        # DeviceFlow dropout (failure_prob=0.1) loses some updates.
        assert alpha.updates_aggregated + alpha.dropout_lost == alpha.updates_expected
        beta = report.tenants["beta"]
        assert beta.final_accuracy is not None and 0.4 < beta.final_accuracy <= 1.0
        assert alpha.final_accuracy is None  # time-only tenant
        assert 0 < report.bundle_utilization < 1
        assert report.fairness == pytest.approx(jain_index(
            [report.tenants[t].turnaround.mean / report.tenants[t].makespan.mean
             for t in ("alpha", "beta")]
        ))

    def test_queue_wait_positive_under_contention(self):
        spec = tiny_scenario(
            cluster_nodes=1,  # 20 bundles: the two tenants cannot co-run
            tenants=[
                TenantSpec(
                    name="hog",
                    priority=9,
                    grades=[GradeSpec(grade="High", n_devices=16, bundles=16)],
                    arrival=ArrivalSpec(kind="trace", times=[0.0]),
                ),
                TenantSpec(
                    name="starved",
                    priority=1,
                    grades=[GradeSpec(grade="High", n_devices=16, bundles=16)],
                    arrival=ArrivalSpec(kind="trace", times=[1.0]),
                ),
            ],
        )
        report = run_scenario(spec)
        assert report.tenants["starved"].queue_wait.mean > 0
        assert report.tenants["hog"].queue_wait.mean < 1.0
        assert report.fairness < 1.0


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_phone_crash_removes_and_recovers_fleet_capacity(self):
        spec = tiny_scenario(
            faults=[FaultSpec(kind="phone_crash", at=5.0, until=400.0, grade="High", count=3)]
        )
        runner = ScenarioRunner(spec)
        before = runner.platform.resource_manager.phones_by_grade()["High"]
        report = runner.run()
        after = runner.platform.resource_manager.phones_by_grade()["High"]
        assert report.fault_events["fault_phone_crash"] == 3
        assert report.fault_events["fault_phone_recover"] == 3
        assert after == before
        assert len(runner.platform._busy_registry) == 0
        crash_times = [e.time for e in runner.platform.monitor.of_kind("fault_phone_crash")]
        assert crash_times == [5.0] * 3

    def test_phone_crash_without_recovery_shrinks_fleet(self):
        spec = tiny_scenario(
            faults=[FaultSpec(kind="phone_crash", at=5.0, grade="Low", count=2)]
        )
        runner = ScenarioRunner(spec)
        before = runner.platform.resource_manager.phones_by_grade()["Low"]
        runner.run()
        assert runner.platform.resource_manager.phones_by_grade()["Low"] == before - 2

    def test_network_degradation_slows_delivery_then_restores(self):
        healthy = run_scenario(tiny_scenario())
        degraded_spec = tiny_scenario(
            faults=[
                FaultSpec(kind="network_degradation", at=0.0, until=2000.0, factor=0.001)
            ]
        )
        runner = ScenarioRunner(degraded_spec)
        report = runner.run()
        assert runner.platform.deviceflow.capacity_scale == 1.0  # restored
        # 0.1% capacity (0.7 msg/s) makes transmission outlast computation,
        # stretching the dispatch tail of the flow-using tenant.
        assert report.tenants["alpha"].makespan.mean > healthy.tenants["alpha"].makespan.mean

    def test_straggler_window_slows_covered_submissions_only(self):
        healthy = run_scenario(tiny_scenario())
        slowed = run_scenario(
            tiny_scenario(
                faults=[
                    FaultSpec(kind="straggler", at=0.0, until=100.0, factor=3.0, tenant="alpha")
                ]
            )
        )
        # alpha's first submission (t=10) is covered, the second (t=210) is not.
        assert slowed.tenants["alpha"].makespan.max > healthy.tenants["alpha"].makespan.max
        # beta unaffected (the untouched tenant's KPIs are identical).
        assert slowed.tenants["beta"] == healthy.tenants["beta"]

    def test_overlapping_degradation_windows_stack_and_unwind(self):
        spec = tiny_scenario(
            faults=[
                FaultSpec(kind="network_degradation", at=0.0, until=500.0, factor=0.5),
                FaultSpec(kind="network_degradation", at=10.0, until=50.0, factor=0.2),
            ]
        )
        runner = ScenarioRunner(spec)
        runner.schedule()
        sim = runner.platform.sim
        flow = runner.platform.deviceflow
        sim.run(until=20.0)
        assert flow.capacity_scale == pytest.approx(0.1)  # both windows open
        sim.run(until=60.0)
        assert flow.capacity_scale == pytest.approx(0.5)  # inner closed, outer holds
        sim.run(until=600.0)
        assert flow.capacity_scale == 1.0

    def test_duplicate_overlapping_windows_restore_by_identity(self):
        """Two field-identical windows must each unwind exactly once.

        Regression: ``_restore_network`` used ``list.remove(fault)``,
        which scans by *equality* — with duplicate windows the wrong list
        entry can be popped, so the fix tracks active windows by object
        identity.  Each restore must drop one (and only one) window.
        """
        window = {"kind": "network_degradation", "at": 10.0, "until": 100.0, "factor": 0.5}
        spec = tiny_scenario(
            faults=[FaultSpec(**window), FaultSpec(**window)]
        )
        assert spec.faults[0] == spec.faults[1]  # equality-keyed removal trap
        runner = ScenarioRunner(spec)
        runner.schedule()
        sim = runner.platform.sim
        flow = runner.platform.deviceflow
        sim.run(until=50.0)
        assert flow.capacity_scale == pytest.approx(0.25)  # both stack
        assert len(runner.faults._active_degradations) == 2
        sim.run(until=150.0)
        assert flow.capacity_scale == 1.0
        assert runner.faults._active_degradations == []
        restored = runner.platform.monitor.of_kind("fault_network_restored")
        assert len(restored) == 2

    def test_fault_covers_submission_filtering(self):
        fault = FaultSpec(kind="straggler", at=10.0, until=20.0, factor=2.0, tenant="a")
        assert fault.covers_submission("a", 10.0)
        assert not fault.covers_submission("a", 20.0)
        assert not fault.covers_submission("b", 15.0)
        anyone = FaultSpec(kind="straggler", at=10.0, until=20.0, factor=2.0)
        assert anyone.covers_submission("b", 15.0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_list_show_run(self, capsys, tmp_path):
        from repro.scenarios.__main__ import main

        assert main(["list"]) == 0
        assert "diurnal_multitenant" in capsys.readouterr().out
        assert main(["show", "flash_crowd", "--scale", "100"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["name"] == "flash_crowd"
        out_path = tmp_path / "report.json"
        assert main(["run", "flash_crowd", "--scale", "100", "--json", str(out_path)]) == 0
        assert "flash_crowd" in capsys.readouterr().out
        written = json.loads(out_path.read_text())
        assert written["total_tasks"] == 16

    def test_run_sla_exit_codes(self, capsys):
        from repro.scenarios.__main__ import main

        # autoscale_flash_crowd's SLAs hold -> exit 0 with or without --sla.
        assert main(["run", "autoscale_flash_crowd", "--scale", "120", "--sla"]) == 0
        out = capsys.readouterr().out
        assert "SLA" in out and "VIOLATED" not in out
        assert "observability events" in out

    def test_run_sla_violation_exits_nonzero(self, capsys, monkeypatch):
        from repro.observability import SLASpec
        from repro.scenarios import __main__ as cli

        def impossible(scale=None, seed=0, **_):
            spec = tiny_scenario()
            spec.slas = [SLASpec(metric="queue_wait_p95", limit=-1.0)]
            return spec

        # cli.SCENARIOS is library.SCENARIOS; patching the shared dict
        # reroutes build_scenario too.
        monkeypatch.setitem(cli.SCENARIOS, "flash_crowd", impossible)
        # Without --sla the breach is reported but the exit code stays 0.
        assert cli.main(["run", "flash_crowd"]) == 0
        assert "VIOLATED" in capsys.readouterr().out
        assert cli.main(["run", "flash_crowd", "--sla"]) == 2
        captured = capsys.readouterr()
        assert "VIOLATED" in captured.out
        assert "SLA check failed" in captured.err
