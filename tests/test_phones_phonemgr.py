"""Integration tests for PhoneMgr: staging, rounds, benchmarking, MSP."""

import numpy as np
import pytest

from repro.cloud import CallbackSink
from repro.cluster.actor import DeviceAssignment
from repro.data import SyntheticAvazu
from repro.ml import standard_fl_flow
from repro.phones import (
    MobileServicePlatform,
    PhoneAssignment,
    PhoneMgr,
    PhysicalCostModel,
    SimulatedAdb,
    VirtualPhone,
)
from repro.phones.apk import ApkStage
from repro.phones.specs import DEFAULT_LOCAL_FLEET, DEFAULT_MSP_FLEET
from repro.simkernel import ProcessError, RandomStreams, Simulator


def build_rig(n_local=10, poll_interval=1.0, on_sample=None, cost_model=None):
    sim = Simulator()
    adb = SimulatedAdb()
    streams = RandomStreams(5)
    phones = []
    for i, spec in enumerate(DEFAULT_LOCAL_FLEET[:n_local]):
        phone = VirtualPhone(sim, f"local-{i:02d}", spec, streams=streams)
        adb.register(phone)
        phones.append(phone)
    mgr = PhoneMgr(
        sim,
        adb,
        phones,
        cost_model=cost_model or PhysicalCostModel(),
        streams=streams,
        poll_interval=poll_interval,
        on_sample=on_sample,
    )
    return sim, adb, mgr, phones


def time_only_plan(grade, n_devices, n_phones, n_bench=0):
    return PhoneAssignment(
        grade=grade,
        assignments=[DeviceAssignment(f"{grade}-d{i}", grade, 10) for i in range(n_devices)],
        benchmarking=[DeviceAssignment(f"{grade}-bench{i}", grade, 10) for i in range(n_bench)],
        n_phones=n_phones,
        flow=standard_fl_flow(),
        numeric=False,
    )


class TestSelection:
    def test_local_preferred_over_msp(self):
        sim, adb, mgr, phones = build_rig(n_local=4)
        msp = MobileServicePlatform(sim, adb, DEFAULT_MSP_FLEET, streams=RandomStreams(1))
        mgr.phones.extend(msp.provision())
        chosen = mgr.select_phones("High", 3)
        assert all(not phone.is_msp for phone in chosen)

    def test_selection_overflows_to_msp(self):
        sim, adb, mgr, phones = build_rig(n_local=10)
        msp = MobileServicePlatform(sim, adb, DEFAULT_MSP_FLEET, streams=RandomStreams(1))
        mgr.phones.extend(msp.provision())
        chosen = mgr.select_phones("High", 10)  # only 4 local High exist
        assert sum(1 for phone in chosen if phone.is_msp) == 6

    def test_insufficient_phones_rejected(self):
        _, _, mgr, _ = build_rig(n_local=10)
        with pytest.raises(RuntimeError):
            mgr.select_phones("High", 5)

    def test_release_returns_to_pool(self):
        _, _, mgr, _ = build_rig()
        chosen = mgr.select_phones("High", 4)
        assert len(mgr.available_phones("High")) == 0
        mgr.release_phones(chosen)
        assert len(mgr.available_phones("High")) == 4


class TestPrepareReservationLeak:
    def plans_with_failing_second(self):
        # Plan 1 fits; plan 2 requests more Low phones than exist, so
        # select_phones raises after plan 1's reservations were taken.
        return [
            time_only_plan("High", n_devices=4, n_phones=3, n_bench=1),
            time_only_plan("Low", n_devices=40, n_phones=20),
        ]

    def test_failed_prepare_releases_reserved_phones(self):
        sim, _, mgr, phones = build_rig(n_local=10)
        free_high = len(mgr.available_phones("High"))
        free_low = len(mgr.available_phones("Low"))
        proc = sim.process(mgr.prepare(self.plans_with_failing_second()))
        with pytest.raises(ProcessError):
            sim.run()
        assert proc.error is not None
        # Nothing stays in the busy registry, and the manager is reusable.
        assert len(mgr.available_phones("High")) == free_high
        assert len(mgr.available_phones("Low")) == free_low
        assert mgr.plans == []
        assert mgr.computing_phones == {}
        # No orphaned framework-startup processes may touch the released
        # phones: after the queue drains, every phone is untouched — not
        # stuck mid-APK-launch draining battery or racing a sibling task.
        sim.run()
        assert sim.pending_events == 0
        for phone in phones:
            assert phone.running_pid is None
            assert phone.stage is None

    def test_failed_prepare_leaves_shared_registry_clean(self):
        sim, adb, mgr, phones = build_rig(n_local=10)
        sibling = PhoneMgr(sim, adb, phones, streams=RandomStreams(6), busy_registry=mgr._busy)
        with pytest.raises(RuntimeError):
            list(mgr.prepare(self.plans_with_failing_second()))
        # A sibling task sharing the registry can still book every phone.
        assert len(sibling.available_phones("High")) == 4
        assert len(sibling.available_phones("Low")) == 6

    def test_successful_prepare_after_failed_one(self):
        sim, _, mgr, _ = build_rig(n_local=10)
        with pytest.raises(RuntimeError):
            list(mgr.prepare(self.plans_with_failing_second()))
        plan = time_only_plan("High", n_devices=4, n_phones=2)

        def run():
            yield sim.process(mgr.prepare([plan]))
            yield sim.process(mgr.run_round(1, None, 0.0, 0, CallbackSink(lambda o: None)))
            yield sim.process(mgr.teardown())

        sim.process(run())
        sim.run()
        assert len(mgr.available_phones("High")) == 4


class TestRoundExecution:
    def test_time_only_round_makespan(self):
        cost = PhysicalCostModel(
            beta={"High": 10.0}, framework_startup={"High": 45.0}, stage_window=15.0
        )
        sim, adb, mgr, _ = build_rig(cost_model=cost)
        plan = time_only_plan("High", n_devices=8, n_phones=4)
        outcomes = []

        def run():
            start = sim.now
            yield sim.process(mgr.prepare([plan], task_id="t1"))
            prepared = sim.now
            # Framework startup (lambda) is paid once in prepare.
            assert prepared - start == pytest.approx(45.0)
            yield sim.process(
                mgr.run_round(1, None, 0.0, model_bytes=0, sink=CallbackSink(outcomes.append))
            )

        sim.process(run())
        sim.run()
        assert len(outcomes) == 8
        # 8 devices over 4 phones -> 2 sequential trainings of 10 s each
        # (plus negligible staging time with model_bytes=0 and tiny data).
        finish_times = [o.finished_at for o in outcomes]
        assert max(finish_times) - 45.0 < 25.0

    def test_numeric_round_produces_updates(self):
        sim, adb, mgr, _ = build_rig()
        data = SyntheticAvazu(n_devices=4, records_per_device=12, feature_dim=64, seed=2).generate()
        ids = data.device_ids()
        plan = PhoneAssignment(
            grade="Low",
            assignments=[
                DeviceAssignment(d, "Low", data.shard(d).n_samples, dataset=data.shard(d))
                for d in ids
            ],
            benchmarking=[],
            n_phones=2,
            flow=standard_fl_flow(epochs=1),
            feature_dim=64,
            numeric=True,
        )
        updates = []

        def run():
            yield sim.process(mgr.prepare([plan]))
            yield sim.process(
                mgr.run_round(
                    1, np.zeros(64), 0.0, model_bytes=584,
                    sink=CallbackSink(lambda o: updates.append(o.update)),
                )
            )

        sim.process(run())
        sim.run()
        assert len(updates) == 4
        assert all(u is not None and u.metadata["backend"] == "mnn-device" for u in updates)

    def test_prepare_twice_rejected(self):
        sim, _, mgr, _ = build_rig()
        plan = time_only_plan("High", 2, 2)

        def run():
            yield sim.process(mgr.prepare([plan]))

        sim.process(run())
        sim.run()
        with pytest.raises(RuntimeError):
            list(mgr.prepare([plan]))

    def test_teardown_releases_phones(self):
        sim, _, mgr, _ = build_rig()
        plan = time_only_plan("High", 2, 2)

        def run():
            yield sim.process(mgr.prepare([plan]))
            yield sim.process(mgr.run_round(1, None, 0.0, 0, CallbackSink(lambda o: None)))
            yield sim.process(mgr.teardown())

        sim.process(run())
        sim.run()
        assert len(mgr.available_phones("High")) == 4
        assert mgr.plans == []


class TestBenchmarking:
    def run_benchmark(self, poll_interval=1.0, n_rounds=1):
        samples_seen = []
        cost = PhysicalCostModel()
        sim, adb, mgr, phones = build_rig(
            poll_interval=poll_interval, on_sample=samples_seen.append, cost_model=cost
        )
        plan = time_only_plan("High", n_devices=0, n_phones=0, n_bench=1)

        def run():
            yield sim.process(mgr.prepare([plan]))
            for round_index in range(1, n_rounds + 1):
                yield sim.process(mgr.run_round(round_index, None, 0.0, 33000, CallbackSink(lambda o: None)))

        sim.process(run())
        sim.run()
        return mgr, samples_seen

    def test_five_stages_recorded(self):
        mgr, _ = self.run_benchmark()
        record = mgr.benchmark_records[0]
        stages = [stage for stage, _, _ in record.boundaries]
        assert stages == [
            ApkStage.NO_APK,
            ApkStage.APK_LAUNCH,
            ApkStage.TRAINING,
            ApkStage.POST_TRAINING,
            ApkStage.APK_CLOSURE,
        ]

    def test_stage_durations_match_table1(self):
        mgr, _ = self.run_benchmark()
        summaries = mgr.benchmark_records[0].stage_summaries()
        by_stage = {s.stage: s for s in summaries}
        for stage in (1, 2, 4, 5):
            assert by_stage[stage].duration_min == pytest.approx(0.25, abs=0.01)
        assert by_stage[3].duration_min == pytest.approx(0.27, abs=0.01)

    def test_training_stage_energy_in_table1_ballpark(self):
        mgr, _ = self.run_benchmark()
        summaries = {s.stage: s for s in mgr.benchmark_records[0].stage_summaries()}
        # Table I High-grade training: 0.18 mAh over 0.27 min.
        assert summaries[3].power_mah == pytest.approx(0.18, rel=0.35)

    def test_training_stage_comm_near_33kb(self):
        mgr, _ = self.run_benchmark()
        summaries = {s.stage: s for s in mgr.benchmark_records[0].stage_summaries()}
        assert summaries[3].comm_kb == pytest.approx(33.1, rel=0.15)

    def test_samples_stream_to_hook(self):
        _, samples = self.run_benchmark()
        # Session lasts ~4*15s + 16.2s ~= 76 s at 1 Hz.
        assert len(samples) > 60
        assert all(s.serial == samples[0].serial for s in samples)

    def test_sampling_gap_between_rounds(self):
        """Fig. 5: no data recorded while waiting for aggregation."""
        mgr, samples = self.run_benchmark(n_rounds=2)
        assert len(mgr.benchmark_records) == 2
        first = mgr.benchmark_records[0]
        second = mgr.benchmark_records[1]
        end_of_first = max(end for _, _, end in first.boundaries)
        start_of_second = min(start for _, start, _ in second.boundaries)
        gap_samples = [
            s for s in samples if end_of_first + 1 < s.timestamp < start_of_second - 1
        ]
        assert gap_samples == []

    def test_stage_summaries_at_high_poll_rate(self):
        """The bisect window selection matches a full rescan at 50 Hz."""
        from repro.phones.metrics import integrate_energy_mah

        mgr, _ = self.run_benchmark(poll_interval=0.02)
        record = mgr.benchmark_records[0]
        assert len(record.samples) > 3000
        summaries = record.stage_summaries()
        # Reference: the O(stages * samples) rescan the bisect replaced.
        for summary, (stage, start, end) in zip(summaries, record.boundaries):
            window = [
                s for s in record.samples if start - 1e-9 <= s.timestamp <= end + 1e-9
            ]
            assert summary.power_mah == integrate_energy_mah(window)
            expected_kb = (
                (window[-1].total_bytes - window[0].total_bytes) / 1024.0
                if len(window) >= 2
                else 0.0
            )
            assert summary.comm_kb == expected_kb
            assert summary.stage == int(stage)


class TestMsp:
    def test_provision_and_release(self):
        sim = Simulator()
        adb = SimulatedAdb()
        msp = MobileServicePlatform(sim, adb, DEFAULT_MSP_FLEET, streams=RandomStreams(0))
        phones = msp.provision()
        assert len(phones) == 20
        assert len(msp.by_grade("High")) == 13
        with pytest.raises(RuntimeError):
            msp.provision()
        msp.release_all()
        assert msp.phones == []

    def test_partial_availability(self):
        sim = Simulator()
        adb = SimulatedAdb()
        msp = MobileServicePlatform(
            sim, adb, DEFAULT_MSP_FLEET, streams=RandomStreams(0), availability=0.5
        )
        phones = msp.provision()
        assert 0 < len(phones) < 20

    def test_validation(self):
        sim = Simulator()
        adb = SimulatedAdb()
        with pytest.raises(ValueError):
            MobileServicePlatform(sim, adb, control_latency=-1)
        with pytest.raises(ValueError):
            MobileServicePlatform(sim, adb, availability=1.5)

    def test_msp_control_latency_delays_round(self):
        sim = Simulator()
        adb = SimulatedAdb()
        streams = RandomStreams(2)
        msp = MobileServicePlatform(sim, adb, DEFAULT_MSP_FLEET[:2], streams=streams,
                                    control_latency=0.8)
        phones = msp.provision()
        cost = PhysicalCostModel(msp_control_latency=0.8)
        mgr = PhoneMgr(sim, adb, phones, cost_model=cost, streams=streams)
        plan = time_only_plan("High", n_devices=2, n_phones=2)

        def run():
            start = sim.now
            yield sim.process(mgr.prepare([plan]))
            # lambda (45s) + one control-latency hit per remote phone.
            assert sim.now - start == pytest.approx(45.0 + 0.8)

        sim.process(run())
        sim.run()
