"""Unit tests for the event queue and simulator loop."""

import pytest

from repro.simkernel import ProcessError, Simulator, Timeout
from repro.simkernel.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while queue:
            queue.pop().callback()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("third"), priority=5)
        queue.push(1.0, lambda: order.append("first"), priority=0)
        queue.push(1.0, lambda: order.append("second"), priority=0)
        while queue:
            queue.pop().callback()
        assert order == ["first", "second", "third"]

    def test_cancel_skips_event(self):
        queue = EventQueue()
        fired = []
        handle = queue.push(1.0, lambda: fired.append(1))
        queue.cancel(handle)
        assert queue.pop() is None
        assert fired == []
        assert len(queue) == 0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_len_counts_live_events(self):
        queue = EventQueue()
        a = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(a)
        assert len(queue) == 1

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert not queue
        assert queue.peek_time() is None


class TestSimulatorScheduling:
    def test_schedule_advances_clock(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]
        assert sim.now == 5.0

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.5]

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_time_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("early"))
        sim.schedule(10.0, lambda: seen.append("late"))
        sim.run(until=5.0)
        assert seen == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert seen == ["early", "late"]

    def test_run_until_predicate(self):
        sim = Simulator()
        box = {"n": 0}

        def bump():
            box["n"] += 1
            sim.schedule(1.0, bump)

        sim.schedule(1.0, bump)
        sim.run_until(lambda: box["n"] >= 3)
        assert box["n"] == 3
        assert sim.now == 3.0

    def test_run_until_raises_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False)

    def test_run_until_respects_max_time(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False, max_time=10.0)
        assert sim.now <= 10.0

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append(1))
        sim.cancel(handle)
        sim.run()
        assert seen == []

    def test_pending_events_property(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0


class TestFailurePropagation:
    def test_orphan_process_failure_raises_in_strict_mode(self):
        sim = Simulator(strict=True)

        def boom():
            yield Timeout(1.0)
            raise ValueError("bang")

        sim.process(boom())
        with pytest.raises(ProcessError):
            sim.run()

    def test_orphan_failure_recorded_when_not_strict(self):
        sim = Simulator(strict=False)

        def boom():
            yield Timeout(1.0)
            raise ValueError("bang")

        sim.process(boom())
        sim.run()
        assert len(sim.orphan_failures) == 1
        _, error = sim.orphan_failures[0]
        assert isinstance(error, ValueError)
