"""Tests of the experiment harness at reduced scale.

Each test asserts the *shape* claims the corresponding table/figure makes
in the paper, so a regression in any substrate that would distort an
experiment fails here before the benchmarks run.
"""

import pytest

from repro.experiments import (
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10,
    format_fig11,
    format_table1,
    format_table2,
    run_fig5_device_trace,
    run_fig6_hybrid_accuracy,
    run_fig7_allocation_time,
    run_fig8_scalability,
    run_fig9_traffic_impact,
    run_fig10_dispatch_demo,
    run_fig11_dropout_impact,
    run_table1_stage_metrics,
    run_table2_curve_fidelity,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1_stage_metrics(n_devices_per_grade=20, n_benchmark_per_grade=2)

    def test_all_ten_rows_present(self, result):
        assert len(result.rows) == 10

    def test_durations_match_paper(self, result):
        for grade in ("High", "Low"):
            for stage in (1, 2, 4, 5):
                assert result.row(grade, stage)[4] == pytest.approx(0.25, abs=0.02)
        assert result.row("High", 3)[4] == pytest.approx(0.27, abs=0.02)
        assert result.row("Low", 3)[4] == pytest.approx(0.36, abs=0.02)

    def test_power_within_paper_ballpark(self, result):
        from repro.experiments.table1 import PAPER_TABLE1

        for grade, stage, _, mah, _, _ in result.rows:
            paper_mah, _ = PAPER_TABLE1[(grade, stage)]
            assert mah == pytest.approx(paper_mah, rel=0.35)

    def test_high_grade_cheaper_than_low(self, result):
        for stage in range(1, 6):
            assert result.row("High", stage)[3] < result.row("Low", stage)[3]

    def test_training_comm_near_33kb(self, result):
        assert result.row("High", 3)[5] == pytest.approx(33.1, rel=0.15)
        assert result.row("Low", 3)[5] == pytest.approx(33.1, rel=0.15)

    def test_format(self, result):
        text = format_table1(result)
        assert "no APK initiated" in text
        assert "33.1" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def trace(self):
        return run_fig5_device_trace(rounds=3)

    def test_three_round_windows(self, trace):
        assert len(trace.round_windows) == 3

    def test_cpu_range_matches_figure(self, trace):
        in_window = [
            c for t, c in zip(trace.times, trace.cpu_percent)
            if any(a <= t <= b for a, b in trace.round_windows) and c > 0
        ]
        assert max(in_window) <= 15.0
        assert max(in_window) > 8.0

    def test_memory_range_matches_figure(self, trace):
        active = [m for m in trace.memory_mb if m > 1.0]
        assert 5.0 < min(active) < 15.0
        assert 35.0 < max(active) < 60.0

    def test_gaps_between_rounds_unsampled(self, trace):
        for gap_start, gap_end in trace.gaps():
            inside = [t for t in trace.times if gap_start + 1.0 < t < gap_end - 1.0]
            assert inside == []

    def test_format(self, trace):
        assert "memory MB" in format_fig5(trace)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6_hybrid_accuracy(scales=((4, 4), (20, 20)), rounds=3, feature_dim=256)

    def test_within_half_percent(self, result):
        """The paper's headline: all diffs below 0.5 percentage points."""
        assert result.max_abs_diff() < 0.5

    def test_type1_identical_to_benchmark(self, result):
        for scale in result.scales:
            assert result.diffs[("Type 1", scale)] == pytest.approx(0.0, abs=1e-9)

    def test_benchmark_accuracy_learned(self, result):
        # Balanced labels: anything meaningfully above 0.5 shows learning.
        assert result.benchmark_accuracy[(20, 20)] > 0.6

    def test_format(self, result):
        assert "max |ACC diff|" in format_fig6(result)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7_allocation_time()

    def test_optimizer_never_worse(self, result):
        for scale in result.scales:
            optimum = result.times[("Optimization", scale)]
            for type_name in ("Type 1", "Type 2", "Type 3", "Type 4", "Type 5"):
                assert optimum <= result.times[(type_name, scale)] + 1e-9

    def test_logical_faster_at_small_scale(self, result):
        """APK startup dominates small scales (paper's observation)."""
        small = (4, 4)
        assert result.times[("Type 1", small)] < result.times[("Type 5", small)]

    def test_physical_faster_at_large_scale(self, result):
        large = (500, 500)
        assert result.times[("Type 5", large)] < result.times[("Type 1", large)]

    def test_optimizer_strictly_better_at_large_scale(self, result):
        large = (500, 500)
        optimum = result.times[("Optimization", large)]
        best_fixed = min(
            result.times[(t, large)]
            for t in ("Type 1", "Type 2", "Type 3", "Type 4", "Type 5")
        )
        assert optimum < best_fixed

    def test_format(self, result):
        assert "Optimization" in format_fig7(result)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8_scalability()

    def test_simdc_slowest_below_1000(self, result):
        for scale, ours, fs, fscope in zip(
            result.scales, result.simdc, result.fedscale, result.federatedscope
        ):
            if scale < 1000:
                assert ours > fs
                assert ours > fscope

    def test_comparable_to_federatedscope_at_scale(self, result):
        assert result.crossover_scale() <= 10_000

    def test_fedscale_always_fastest(self, result):
        for fs, ours in zip(result.fedscale, result.simdc):
            assert fs < ours

    def test_format(self, result):
        assert "FederatedScope" in format_fig8(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9_traffic_impact(
            n_devices=60, window_s=600.0, rounds=5, feature_dim=256
        )

    def test_smaller_sigma_more_arrivals(self, result):
        assert result.arrivals_in_window[1.0] >= result.arrivals_in_window[3.0]

    def test_smaller_sigma_no_fewer_aggregations(self, result):
        assert result.threshold_rounds[1.0] >= result.threshold_rounds[3.0]

    def test_smaller_sigma_lower_loss_mid_window(self, result):
        mid = result.window_s / 60.0 / 2.0
        assert result.loss_at(1.0, mid) <= result.loss_at(3.0, mid) + 1e-9

    def test_scheduled_participation_ordered_by_sigma(self, result):
        def mean(xs):
            return sum(xs) / len(xs)

        assert mean(result.participation[1.0]) > mean(result.participation[3.0])

    def test_scheduled_accuracy_sigma1_dominates_late_rounds(self, result):
        final = {s: dict(result.scheduled_accuracy[s]) for s in (1.0, 3.0)}
        last_round = max(final[1.0])
        assert final[1.0][last_round] >= final[3.0][last_round] - 0.02

    def test_format(self, result):
        assert "sample-threshold" in format_fig9(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10_dispatch_demo(interval_messages=3000)

    def test_point_dispatch_amounts(self, result):
        assert [n for _, n in result.point_dispatches] == [200, 400, 600]

    def test_all_point_messages_received(self, result):
        assert result.received_total(result.point_cumulative_received) == 1200

    def test_bursts_spread_by_capacity(self, result):
        """Fig. 10(b): receipt spans beyond the designated instants."""
        t600 = [t for t, _ in result.point_cumulative_received[-1:]]
        assert t600[0] > 30.0  # the 600-burst takes ~0.86 s beyond t=30

    def test_interval_messages_conserved(self, result):
        assert result.received_total(result.interval_cumulative_received) == 3000

    def test_interval_follows_right_tail(self, result):
        early = sum(n for t, n in result.interval_dispatches if t < 20.0)
        assert early > 0.7 * result.interval_total

    def test_format(self, result):
        assert "Fig. 10(c)" in format_fig10(result)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2_curve_fidelity(n_messages=4000)

    def test_all_six_curves(self, result):
        assert len(result.rows) == 6

    def test_all_correlations_above_99(self, result):
        """The paper's claim, end to end through a live DeviceFlow."""
        assert result.min_correlation() > 0.99

    def test_format(self, result):
        text = format_table2(result)
        assert "sin(t)+1" in text
        assert "paper r" in text


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11_dropout_impact(
            dropouts=(0.0, 0.9), n_devices=60, rounds=8, feature_dim=256
        )

    def test_iid_dropout_negligible(self, result):
        clean = result.final_accuracy("iid", 0.0)
        dropped = result.final_accuracy("iid", 0.9)
        assert abs(clean - dropped) < 0.06

    def test_skewed_dropout_increases_volatility(self, result):
        assert result.volatility("skewed", 0.9) > 2.0 * result.volatility("skewed", 0.0)

    def test_models_actually_learn(self, result):
        series = result.accuracy[("iid", 0.0)]
        assert series[-1] > series[0] + 0.01
        assert series[-1] > 0.65  # well above the balanced-label majority rate

    def test_format(self, result):
        text = format_fig11(result)
        assert "identically distributed" in text
        assert "volatility" in text
