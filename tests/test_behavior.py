"""Tests for timezone, network, availability and dropout models."""

import numpy as np
import pytest

from repro.behavior import (
    DiurnalAvailability,
    DropoutModel,
    FLIGHT_MODE,
    GPRS,
    NetworkMixture,
    NetworkProfile,
    TimezoneMixture,
    WIFI,
    population_traffic_curve,
)
from repro.deviceflow import TimeIntervalStrategy


class TestTimezoneMixture:
    def test_sample_reproducible(self):
        a = TimezoneMixture(seed=1).sample(100)
        b = TimezoneMixture(seed=1).sample(100)
        assert np.array_equal(a, b)

    def test_offsets_from_catalogue(self):
        mixture = TimezoneMixture([(8, 1.0), (-5, 1.0)], seed=0)
        draws = mixture.sample(200)
        assert set(np.unique(draws)) <= {8, -5}

    def test_local_hour_wraps(self):
        mixture = TimezoneMixture(seed=0)
        assert mixture.local_hour(23.0, 8) == pytest.approx(7.0)
        assert mixture.local_hour(2.0, -6) == pytest.approx(20.0)

    def test_fractions_normalised(self):
        fractions = TimezoneMixture(seed=0).offset_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimezoneMixture([])
        with pytest.raises(ValueError):
            TimezoneMixture([(0, -1.0)])
        with pytest.raises(ValueError):
            TimezoneMixture(seed=0).sample(0)


class TestNetworkProfiles:
    def test_upload_duration(self):
        assert WIFI.upload_duration(5_000_000) < GPRS.upload_duration(5_000_000)
        assert FLIGHT_MODE.upload_duration(10) == float("inf")
        assert not FLIGHT_MODE.connected

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkProfile("bad", -1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            NetworkProfile("bad", 1.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            WIFI.upload_duration(-1)

    def test_mixture_sampling(self):
        mixture = NetworkMixture(seed=0)
        profiles = mixture.sample(500)
        names = {p.name for p in profiles}
        assert "wifi" in names
        assert len(profiles) == 500

    def test_expected_failure_prob(self):
        mixture = NetworkMixture([(WIFI, 0.5), (GPRS, 0.5)], seed=0)
        expected = 0.5 * WIFI.failure_prob + 0.5 * GPRS.failure_prob
        assert mixture.expected_failure_prob() == pytest.approx(expected)

    def test_mixture_validation(self):
        with pytest.raises(ValueError):
            NetworkMixture([])
        with pytest.raises(ValueError):
            NetworkMixture([(WIFI, 0.0)])


class TestDiurnalAvailability:
    def test_probability_bounds(self):
        model = DiurnalAvailability()
        hours = np.linspace(0, 24, 97)
        probs = model.probability(hours)
        assert probs.min() >= 0.0
        assert probs.max() <= 1.0

    def test_night_peak_dominates(self):
        model = DiurnalAvailability(night_peak=2.0)
        assert model.probability(np.array([2.0]))[0] > model.probability(np.array([12.0]))[0]

    def test_is_available_draw(self):
        model = DiurnalAvailability()
        rng = np.random.default_rng(0)
        draws = [model.is_available(2.0, rng) for _ in range(200)]
        assert 0.4 < np.mean(draws) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalAvailability(night_peak=24.0)
        with pytest.raises(ValueError):
            DiurnalAvailability(base_level=1.0)


class TestPopulationTrafficCurve:
    def test_curve_is_valid_and_feeds_deviceflow(self):
        mixture = TimezoneMixture(seed=0)
        curve = population_traffic_curve(mixture)
        assert curve.domain == (0.0, 24.0)
        assert curve.area() > 0
        # The whole point: it can drive a TimeIntervalStrategy directly.
        strategy = TimeIntervalStrategy(curve, interval_seconds=3600.0)
        assert strategy.curve is curve

    def test_timezone_mixing_flattens_curve(self):
        """Many timezones smooth the global arrival curve (Fig. 3's point)."""
        single = population_traffic_curve(TimezoneMixture([(8, 1.0)], seed=0))
        spread = population_traffic_curve(TimezoneMixture(seed=0))
        hours = np.linspace(0, 24, 200)
        assert np.std(spread(hours)) < np.std(single(hours))


class TestDropoutModel:
    def test_zero_probability_keeps_all(self):
        model = DropoutModel(0.0, seed=0)
        assert model.survivors([f"d{i}" for i in range(50)]) == [f"d{i}" for i in range(50)]

    def test_one_probability_drops_all(self):
        model = DropoutModel(1.0, seed=0)
        assert model.survivors(["a", "b", "c"]) == []

    def test_rate_approximately_respected(self):
        model = DropoutModel(0.7, seed=1)
        ids = [f"d{i}" for i in range(2000)]
        kept = model.survivors(ids)
        assert 0.25 < len(kept) / len(ids) < 0.35

    def test_stickiness_correlates_rounds(self):
        sticky = DropoutModel(0.5, stickiness=0.8, seed=2)
        ids = [f"d{i}" for i in range(500)]
        first = sticky.draw_round(ids)
        second = sticky.draw_round(ids)
        both = sum(1 for d in ids if first[d] and second[d])
        dropped_first = sum(1 for d in ids if first[d])
        # With stickiness, re-drop rate among droppers exceeds base rate.
        assert both / max(1, dropped_first) > 0.7

    def test_reset_clears_history(self):
        model = DropoutModel(0.5, stickiness=0.5, seed=3)
        model.draw_round(["a"])
        model.reset()
        assert model._last_dropped == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            DropoutModel(-0.1)
        with pytest.raises(ValueError):
            DropoutModel(0.5, stickiness=1.0)
