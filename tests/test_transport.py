"""Fault-tolerant transport: channel model, retries, dedup, deadlines.

The differential heart of the suite proves the four transport
guarantees the robustness work leans on:

(a) a lossless :class:`ChannelModel` leaves the scenario report
    byte-identical to running with no channel at all,
(b) lossy runs are byte-identical batched vs legacy and across repeats,
(c) duplicated delivery + the ingestion dedup table is fold-equivalent
    to exactly-once delivery, and
(d) a deadline-closed round aggregates exactly the partial fold over
    on-time updates.
"""

import json
import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import (
    AggregationService,
    ChannelModel,
    ChannelWindow,
    CloudIngestSink,
    DeadlineTrigger,
    ObjectStorage,
)
from repro.cloud.aggregation import AggregationTrigger
from repro.cluster.actor import DeviceRoundOutcome
from repro.ml.fedavg import ModelUpdate, fedavg
from repro.ml.model import LogisticRegressionModel
from repro.observability.sla import known_metrics, metric_value
from repro.scenarios import (
    ArrivalSpec,
    DispatchSpec,
    FaultSpec,
    GradeSpec,
    ScenarioSpec,
    TenantSpec,
    TransportSpec,
    build_scenario,
    run_scenario,
)
from repro.scenarios.__main__ import main as scenarios_main
from repro.simkernel import RandomStreams, Simulator


def transport_scenario(transport=None, faults=(), batch=True, seed=3) -> ScenarioSpec:
    """Two tenants — direct numeric uplink + DeviceFlow background."""
    return ScenarioSpec(
        name="transport-diff",
        seed=seed,
        horizon_s=600.0,
        batch=batch,
        transport=transport,
        faults=list(faults),
        tenants=[
            TenantSpec(
                name="up",
                priority=5,
                rounds=2,
                numeric=True,
                feature_dim=16,
                records_per_device=4,
                grades=[GradeSpec(grade="High", n_devices=12, bundles=8)],
                arrival=ArrivalSpec(kind="trace", times=[0.0, 60.0]),
            ),
            TenantSpec(
                name="bg",
                priority=2,
                grades=[GradeSpec(grade="Low", n_devices=8, bundles=6)],
                arrival=ArrivalSpec(kind="trace", times=[10.0]),
                dispatch=DispatchSpec(kind="realtime", thresholds=[4]),
            ),
        ],
    )


LOSSY = TransportSpec(
    latency_s=2.0,
    jitter_s=1.0,
    loss_prob=0.2,
    dup_prob=0.1,
    retry_base_s=2.0,
    retry_cap_s=10.0,
    max_attempts=3,
    deadline_s=300.0,
)
LOSSY_FAULTS = (
    FaultSpec(kind="message_loss", at=50.0, until=200.0, factor=0.3),
    FaultSpec(kind="service_outage", at=80.0, until=120.0),
)


def comparable(report) -> dict:
    """Report as plain data minus the execution-mode marker."""
    data = report.to_dict()
    data.pop("batch")
    return data


# ----------------------------------------------------------------------
# channel model mechanics
# ----------------------------------------------------------------------
class TestChannelModel:
    def plans(self, model, seed=0, n=32, t0=100.0, scope=""):
        rng = RandomStreams(seed).get("transport.t.dev")
        return [model.plan_upload(rng, t0 + 5.0 * i, scope) for i in range(n)]

    def test_plans_deterministic_across_repeats(self):
        model = ChannelModel(latency_s=2.0, jitter_s=1.0, loss_prob=0.3, dup_prob=0.2)
        assert self.plans(model) == self.plans(model)

    def test_lossless_channel_delivers_at_latency_without_draws(self):
        model = ChannelModel(latency_s=3.0)
        rng = RandomStreams(0).get("s")
        plan = model.plan_upload(rng, 10.0)
        assert plan.arrival == 13.0
        assert plan.retries == 0
        assert not plan.duplicate

    def test_certain_loss_abandons_after_max_attempts(self):
        model = ChannelModel(
            loss_prob=0.0,
            max_attempts=3,
            windows=[ChannelWindow(kind="loss", at=0.0, until=1e9, prob=1.0)],
        )
        rng = RandomStreams(0).get("s")
        plan = model.plan_upload(rng, 5.0)
        assert plan.arrival is None
        assert plan.retries == model.max_attempts - 1
        assert not plan.duplicate

    def test_outage_rejects_then_retry_lands_after_window(self):
        model = ChannelModel(
            latency_s=1.0,
            retry_base_s=30.0,
            max_attempts=4,
            windows=[ChannelWindow(kind="outage", at=0.0, until=10.0)],
        )
        rng = RandomStreams(0).get("s")
        plan = model.plan_upload(rng, 0.0)
        assert plan.arrival is not None and plan.arrival > 10.0
        assert plan.retries >= 1

    def test_backoff_is_capped(self):
        model = ChannelModel(
            retry_base_s=100.0,
            retry_cap_s=8.0,
            max_attempts=3,
            windows=[ChannelWindow(kind="loss", at=0.0, until=1e9, prob=1.0)],
        )
        # With every send lost, the two backoffs are each <= cap, so the
        # outage test above can't mask an uncapped schedule: check via a
        # loss window ending right after the capped retries.
        model2 = ChannelModel(
            latency_s=0.0,
            retry_base_s=100.0,
            retry_cap_s=8.0,
            max_attempts=3,
            windows=[ChannelWindow(kind="loss", at=0.0, until=16.1, prob=1.0)],
        )
        rng = RandomStreams(1).get("s")
        plan = model.plan_upload(rng, 0.0)
        assert plan.arrival is None
        rng = RandomStreams(1).get("s")
        plan2 = model2.plan_upload(rng, 0.0)
        if plan2.arrival is not None:
            assert plan2.arrival <= 16.1

    def test_tenant_scoped_window_only_hits_its_tenant(self):
        model = ChannelModel(
            windows=[ChannelWindow(kind="loss", at=0.0, until=1e9, prob=1.0, tenant="a")]
        )
        rng = RandomStreams(0).get("s")
        assert model.plan_upload(rng, 0.0, scope="a").arrival is None
        assert model.plan_upload(rng, 0.0, scope="b").arrival == 0.0
        assert model.active_for("a")
        assert not model.active_for("b")

    def test_trivial_model_is_inactive(self):
        assert not ChannelModel().active_for("any")
        assert ChannelModel(latency_s=0.5).active_for("any")
        assert ChannelModel(dup_prob=0.1).active_for("any")

    def test_window_probabilities_combine_as_independent_sources(self):
        model = ChannelModel(
            loss_prob=0.5,
            windows=[ChannelWindow(kind="loss", at=0.0, until=10.0, prob=0.5)],
        )
        assert model.loss_prob_at(5.0, "") == pytest.approx(0.75)
        assert model.loss_prob_at(15.0, "") == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"loss_prob": 1.0}, "loss_prob must be in [0, 1), got 1.0"),
            ({"dup_prob": -0.1}, "dup_prob must be in [0, 1], got -0.1"),
            ({"max_attempts": 0}, "max_attempts must be >= 1, got 0"),
            ({"retry_base_s": 0.0}, "retry backoff must be > 0, got base=0.0, cap=60.0"),
        ],
    )
    def test_validation_errors_carry_the_value(self, kwargs, message):
        with pytest.raises(ValueError, match=re.escape(message)):
            ChannelModel(**kwargs)

    def test_window_validation(self):
        with pytest.raises(ValueError, match=re.escape("unknown channel window kind 'flood'")):
            ChannelWindow(kind="flood", at=0.0, until=1.0)
        with pytest.raises(ValueError, match=re.escape("until=1.0 <= at=2.0")):
            ChannelWindow(kind="loss", at=2.0, until=1.0)


# ----------------------------------------------------------------------
# ingestion gate: dedup + deadlines
# ----------------------------------------------------------------------
def make_numeric_sink(dedup=True):
    sim = Simulator()
    model = LogisticRegressionModel(feature_dim=4)
    service = AggregationService(sim, ObjectStorage(), AggregationTrigger(), model=model)
    sink = CloudIngestSink(sim, "t", service.storage, service, dedup=dedup)
    return sim, service, sink, model


def outcome(device_id, round_index=1, seed=0, finished_at=0.0):
    rng = np.random.default_rng(seed)
    update = ModelUpdate(
        device_id=device_id,
        round_index=round_index,
        weights=rng.normal(size=4),
        bias=float(rng.normal()),
        n_samples=int(rng.integers(1, 9)),
    )
    return DeviceRoundOutcome(
        device_id=device_id,
        grade="High",
        round_index=round_index,
        n_samples=update.n_samples,
        payload_bytes=64,
        update=update,
        finished_at=finished_at,
    )


class TestIngestionGate:
    def test_duplicate_delivery_folds_exactly_once(self):
        sim, service, sink, _ = make_numeric_sink(dedup=True)
        first = outcome("d0", seed=1)
        sink.accept(first)
        sink.accept(first)  # retried/duplicated delivery of the same upload
        sink.accept(outcome("d1", seed=2))
        assert sink.delivered == 2
        assert sink.duplicate_drops == 1
        assert service.pending_updates == 2

    def test_dedup_is_per_round(self):
        sim, service, sink, _ = make_numeric_sink(dedup=True)
        sink.accept(outcome("d0", round_index=1, seed=1))
        sink.accept(outcome("d0", round_index=2, seed=1))
        assert sink.delivered == 2
        assert sink.duplicate_drops == 0

    def test_deadline_closed_round_equals_fold_over_on_time_updates(self):
        sim, service, sink, model = make_numeric_sink(dedup=True)
        sink.begin_round(1, deadline=10.0)
        on_time = [outcome(f"d{i}", seed=i) for i in range(3)]
        late = [outcome(f"late{i}", seed=10 + i) for i in range(2)]
        for o in on_time:
            sim.schedule(5.0, sink.accept, o)
        for o in late:
            sim.schedule(12.0, sink.accept, o)
        sim.run()
        assert sink.delivered == 3
        assert sink.late_drops == 2
        record = service.aggregate_now()
        assert record.n_updates == 3
        weights, bias = fedavg([o.update for o in on_time])
        np.testing.assert_array_equal(model.weights, weights)
        assert model.bias == bias

    def test_fully_lost_round_degrades_gracefully(self):
        sim, service, sink, _ = make_numeric_sink(dedup=True)
        sink.begin_round(1, deadline=10.0)
        sim.schedule(12.0, sink.accept, outcome("d0"))
        trigger = DeadlineTrigger(deadline_s=20.0)
        service.trigger = trigger
        service.start()
        sim.run()
        assert sink.late_drops == 1
        assert service.rounds_completed == 0  # empty deadline fold is a no-op

    def test_ungated_sink_counters_stay_zero(self):
        sim, service, sink, _ = make_numeric_sink(dedup=False)
        sink.accept(outcome("d0"))
        assert (sink.delivered, sink.duplicate_drops, sink.late_drops) == (0, 0, 0)


class TestDeadlineTrigger:
    def test_fires_once_at_deadline_with_pending_updates(self):
        sim = Simulator()
        service = AggregationService(sim, ObjectStorage(), DeadlineTrigger(30.0))
        service.start()
        sim.schedule(
            10.0,
            service.receive_update,
            ModelUpdate("d0", 1, np.zeros(2), 0.0, n_samples=3),
        )
        sim.run()
        assert service.rounds_completed == 1
        assert service.history[0].time == 30.0
        assert service.history[0].n_updates == 1

    def test_rejects_nonpositive_deadline_with_value(self):
        with pytest.raises(ValueError, match=re.escape("deadline_s must be positive, got 0.0")):
            DeadlineTrigger(0.0)


# ----------------------------------------------------------------------
# the scenario-level differential suite
# ----------------------------------------------------------------------
class TestTransportDifferential:
    def test_lossless_channel_is_byte_identical_to_no_channel(self):
        plain = run_scenario(transport_scenario())
        lossless = run_scenario(transport_scenario(transport=TransportSpec()))
        far_deadline = run_scenario(
            transport_scenario(transport=TransportSpec(deadline_s=1e6))
        )
        assert comparable(lossless) == comparable(plain)
        assert comparable(far_deadline) == comparable(plain)

    def test_lossy_run_identical_batched_vs_legacy_and_across_repeats(self):
        batched = run_scenario(
            transport_scenario(transport=LOSSY, faults=LOSSY_FAULTS, batch=True)
        )
        legacy = run_scenario(
            transport_scenario(transport=LOSSY, faults=LOSSY_FAULTS, batch=False)
        )
        repeat = run_scenario(
            transport_scenario(transport=LOSSY, faults=LOSSY_FAULTS, batch=True)
        )
        assert comparable(batched) == comparable(legacy)
        assert batched.to_json() == repeat.to_json()
        # The channel visibly perturbed the run.
        kpis = batched.tenants["up"]
        assert kpis.transport_retries > 0
        assert kpis.updates_aggregated < kpis.updates_expected

    def test_transport_losses_balance_expected_updates(self):
        report = run_scenario(
            transport_scenario(transport=LOSSY, faults=LOSSY_FAULTS)
        )
        kpis = report.tenants["up"]
        accounted = (
            kpis.updates_aggregated + kpis.transport_late_drops + kpis.transport_abandoned
        )
        assert accounted == kpis.updates_expected

    def test_duplication_with_dedup_is_fold_equivalent_to_exactly_once(self):
        # Scoped to the direct tenant: a duplicate through DeviceFlow
        # legitimately perturbs the flow's per-message sampling, so only
        # direct ingestion promises exactly-once equivalence.
        plain = comparable(run_scenario(transport_scenario()))
        dup_only = run_scenario(
            transport_scenario(
                faults=[
                    FaultSpec(
                        kind="message_duplication",
                        at=0.0,
                        until=600.0,
                        factor=0.5,
                        tenant="up",
                    )
                ]
            )
        )
        kpis = dup_only.tenants["up"]
        assert kpis.transport_duplicates > 0
        data = comparable(dup_only)
        # Zero the duplication artifacts (its KPI counter and the fault
        # event): everything else — the fold, the accuracies, the
        # timings — must match exactly-once delivery.
        for tenant in data["tenants"].values():
            tenant["transport_duplicates"] = 0
        data["fault_events"].pop("fault_message_duplication")
        assert data == plain

    def test_transport_faults_fire_as_events(self):
        report = run_scenario(
            transport_scenario(transport=LOSSY, faults=LOSSY_FAULTS)
        )
        assert report.fault_events.get("fault_message_loss") == 1
        assert report.fault_events.get("fault_service_outage") == 1


# ----------------------------------------------------------------------
# MessageBlock vs scalar stream under duplication + dedup
# ----------------------------------------------------------------------
class TestMessageBlockDedup:
    def test_block_messages_match_scalar_stream_under_duplication(self):
        from repro.deviceflow.messages import MessageBlock

        block = MessageBlock(
            task_id="t",
            round_index=1,
            device_ids=[f"d{i}" for i in range(5)],
            payload_refs=[f"t/d{i}/r1" for i in range(5)],
            size_bytes=32,
            n_samples=np.arange(1, 6),
            finished_at=np.linspace(1.0, 5.0, 5),
        )
        singles = block.messages()
        assert [m.device_id for m in singles] == list(block.device_ids)
        assert [m.n_samples for m in singles] == [1, 2, 3, 4, 5]
        assert [m.created_at for m in singles] == [1.0, 2.0, 3.0, 4.0, 5.0]

        def run(stream):
            sim = Simulator()
            service = AggregationService(sim, ObjectStorage(), AggregationTrigger())
            sink = CloudIngestSink(sim, "t", service.storage, service, dedup=True)
            for message in stream:
                sink.flow_receive(message)
            return service, sink

        # Every message delivered twice (duplication) vs exactly once:
        # the dedup table makes the buffered work identical.
        duplicated, dup_sink = run([m for m in singles for _ in range(2)])
        once, once_sink = run(block.messages())
        assert dup_sink.duplicate_drops == len(block)
        assert once_sink.duplicate_drops == 0
        assert duplicated.pending_updates == once.pending_updates == len(block)
        assert duplicated.pending_samples == once.pending_samples
        assert duplicated.messages_received == once.messages_received


# ----------------------------------------------------------------------
# spec validation messages + serialization properties
# ----------------------------------------------------------------------
class TestFaultSpecMessages:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"kind": "phone_crash", "at": -1.0}, "fault time must be >= 0, got -1.0"),
            (
                {"kind": "phone_crash", "at": 5.0, "until": 3.0},
                "fault recovery must come after the fault: until=3.0 <= at=5.0",
            ),
            ({"kind": "phone_crash", "at": 0.0, "count": 0}, "phone_crash needs count >= 1, got 0"),
            (
                {"kind": "network_degradation", "at": 0.0},
                "network_degradation needs an end time, got until=None",
            ),
            (
                {"kind": "network_degradation", "at": 0.0, "until": 10.0, "factor": 1.5},
                "degradation factor must be in (0, 1], got 1.5",
            ),
            (
                {"kind": "straggler", "at": 0.0},
                "straggler injection needs a window end, got until=None",
            ),
            (
                {"kind": "straggler", "at": 0.0, "until": 10.0, "factor": 0.5},
                "straggler slowdown factor must be > 1, got 0.5",
            ),
            (
                {"kind": "message_loss", "at": 0.0},
                "message_loss needs an end time, got until=None",
            ),
            (
                {"kind": "message_loss", "at": 0.0, "until": 10.0, "factor": 1.5},
                "message_loss probability (factor) must be in (0, 1], got 1.5",
            ),
            (
                {"kind": "message_duplication", "at": 0.0, "until": 10.0, "factor": 0.0},
                "message_duplication probability (factor) must be in (0, 1], got 0.0",
            ),
        ],
    )
    def test_errors_carry_the_received_value(self, kwargs, message):
        with pytest.raises(ValueError, match=re.escape(message)):
            FaultSpec(**kwargs)

    def test_transport_kinds_are_registered(self):
        assert set(FaultSpec.TRANSPORT_KINDS) <= set(FaultSpec.KINDS)
        # service_outage needs only a window, no factor.
        FaultSpec(kind="service_outage", at=0.0, until=10.0)


def fault_strategy():
    window = st.tuples(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.01, max_value=1e4),
    ).map(lambda t: (t[0], t[0] + t[1]))
    factor01 = st.floats(min_value=0.01, max_value=1.0)
    return st.one_of(
        window.flatmap(
            lambda w: st.builds(
                FaultSpec,
                kind=st.just("phone_crash"),
                at=st.just(w[0]),
                until=st.one_of(st.none(), st.just(w[1])),
                grade=st.sampled_from(["", "High", "Low"]),
                count=st.integers(min_value=1, max_value=10),
            )
        ),
        window.flatmap(
            lambda w: st.builds(
                FaultSpec,
                kind=st.just("network_degradation"),
                at=st.just(w[0]),
                until=st.just(w[1]),
                factor=factor01,
            )
        ),
        window.flatmap(
            lambda w: st.builds(
                FaultSpec,
                kind=st.just("straggler"),
                at=st.just(w[0]),
                until=st.just(w[1]),
                factor=st.floats(min_value=1.01, max_value=10.0),
                tenant=st.sampled_from(["", "up"]),
            )
        ),
        window.flatmap(
            lambda w: st.builds(
                FaultSpec,
                kind=st.sampled_from(["message_loss", "message_duplication"]),
                at=st.just(w[0]),
                until=st.just(w[1]),
                factor=factor01,
                tenant=st.sampled_from(["", "up"]),
            )
        ),
        window.flatmap(
            lambda w: st.builds(
                FaultSpec,
                kind=st.just("service_outage"),
                at=st.just(w[0]),
                until=st.just(w[1]),
                tenant=st.sampled_from(["", "up"]),
            )
        ),
    )


class TestSpecRoundTripProperties:
    @given(fault=fault_strategy())
    @settings(max_examples=100, deadline=None)
    def test_fault_spec_round_trips_through_json(self, fault):
        data = json.loads(json.dumps(fault.to_dict()))
        assert FaultSpec.from_dict(data).to_dict() == fault.to_dict()

    @given(
        faults=st.lists(fault_strategy(), max_size=4),
        seed=st.integers(min_value=0, max_value=2**31),
        deadline=st.one_of(st.none(), st.floats(min_value=1.0, max_value=1e4)),
        loss=st.floats(min_value=0.0, max_value=0.99),
        attempts=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_scenario_spec_round_trips_through_json(
        self, faults, seed, deadline, loss, attempts
    ):
        spec = transport_scenario(
            transport=TransportSpec(
                loss_prob=loss, max_attempts=attempts, deadline_s=deadline
            ),
            faults=faults,
            seed=seed,
        )
        data = json.loads(json.dumps(spec.to_dict()))
        rebuilt = ScenarioSpec.from_dict(data)
        assert rebuilt.to_dict() == spec.to_dict()


# ----------------------------------------------------------------------
# SLA metrics + live alarms over transport signals
# ----------------------------------------------------------------------
class TestTransportObservability:
    def test_transport_metrics_are_known_slas(self):
        names = known_metrics()
        assert "retry_rate" in names
        assert "round_completeness" in names

    def test_metric_values_derive_from_transport_kpis(self):
        report = run_scenario(
            transport_scenario(transport=LOSSY, faults=LOSSY_FAULTS)
        )
        kpis = report.tenants["up"]
        assert metric_value(kpis, "retry_rate") == pytest.approx(
            kpis.transport_retries / kpis.updates_expected
        )
        assert metric_value(kpis, "round_completeness") == pytest.approx(
            kpis.updates_aggregated / kpis.updates_expected
        )

    def test_summary_lines_mention_transport(self):
        report = run_scenario(
            transport_scenario(transport=LOSSY, faults=LOSSY_FAULTS)
        )
        assert any("transport:" in line for line in report.summary_lines())

    def test_lossy_uplink_scenario_runs_with_live_retry_alarm(self):
        spec = build_scenario("lossy_uplink", scale=120, seed=0)
        report = run_scenario(spec)
        assert report.sla_ok
        kpis = report.tenants["uplink"]
        assert kpis.transport_retries > 0
        assert report.alarm_events.get("alarm_raised", 0) >= 1


# ----------------------------------------------------------------------
# CLI: scenario files
# ----------------------------------------------------------------------
class TestScenarioFileCLI:
    def spec_json(self):
        return json.dumps(transport_scenario(transport=TransportSpec(loss_prob=0.1)).to_dict())

    def test_run_json_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(self.spec_json(), encoding="utf-8")
        assert scenarios_main(["run", str(path)]) == 0
        assert "transport-diff" in capsys.readouterr().out

    def test_run_yaml_file(self, tmp_path, capsys):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(
            yaml.safe_dump(json.loads(self.spec_json())), encoding="utf-8"
        )
        assert scenarios_main(["run", str(path)]) == 0
        assert "transport-diff" in capsys.readouterr().out

    def test_show_round_trips_into_run(self, tmp_path, capsys):
        assert scenarios_main(["show", "lossy_uplink", "--scale", "120"]) == 0
        path = tmp_path / "lossy.json"
        path.write_text(capsys.readouterr().out, encoding="utf-8")
        assert scenarios_main(["run", str(path), "--sla"]) == 0

    def test_seed_override_applies_to_file_specs(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(self.spec_json(), encoding="utf-8")
        assert scenarios_main(["run", str(path), "--seed", "7"]) == 0
        assert "seed 7" in capsys.readouterr().out

    def test_unknown_name_and_missing_file_fail(self):
        with pytest.raises(SystemExit):
            scenarios_main(["run", "no_such_scenario"])
        with pytest.raises(SystemExit):
            scenarios_main(["run", "missing.yaml"])

    def test_scale_rejected_for_file_specs(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(self.spec_json(), encoding="utf-8")
        with pytest.raises(SystemExit):
            scenarios_main(["run", str(path), "--scale", "500"])

    def test_non_mapping_file_fails(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(SystemExit):
            scenarios_main(["run", str(path)])
