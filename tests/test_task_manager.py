"""Direct unit tests of TaskManager (fake runners, no heavy substrates)."""

import pytest

from repro.cluster import K8sCluster, NodeSpec, ResourceBundle
from repro.scheduler import GradeRequirement, ResourceManager, TaskManager, TaskSpec, TaskState
from repro.scheduler.task_runner import TaskResult
from repro.simkernel import Simulator, Timeout


class FakeRunner:
    """Stands in for TaskRunner: sleeps, then succeeds or fails."""

    def __init__(self, sim, spec, duration=10.0, fail=False):
        self.sim = sim
        self.spec = spec
        self.duration = duration
        self.fail = fail
        self.result = None

    def run(self):
        self.spec.state = TaskState.RUNNING
        started = self.sim.now
        yield Timeout(self.duration)
        if self.fail:
            self.spec.state = TaskState.FAILED
            self.result = TaskResult(
                task_id=self.spec.task_id, state=TaskState.FAILED, allocation=None,
                started_at=started, finished_at=self.sim.now, error="fake failure",
            )
            raise RuntimeError("fake failure")
        self.spec.state = TaskState.COMPLETED
        self.result = TaskResult(
            task_id=self.spec.task_id, state=TaskState.COMPLETED, allocation=None,
            started_at=started, finished_at=self.sim.now,
        )
        return self.result


def build(durations=None, failures=(), bundles_capacity=20):
    sim = Simulator(strict=False)
    cluster = K8sCluster([NodeSpec(cpus=bundles_capacity, memory_gb=bundles_capacity)])
    rm = ResourceManager(cluster, phones=[])
    durations = durations or {}

    def factory(spec):
        return FakeRunner(
            sim, spec,
            duration=durations.get(spec.name, 10.0),
            fail=spec.name in failures,
        )

    manager = TaskManager(sim, rm, factory, scheduling_interval=5.0)
    return sim, rm, manager


def make_spec(name, bundles=5, priority=0):
    return TaskSpec(
        name=name,
        priority=priority,
        grades=[
            GradeRequirement(
                grade="High", n_devices=2, bundles=bundles, n_phones=0,
                device_bundle=ResourceBundle(cpus=1, memory_gb=1),
            )
        ],
    )


class TestTaskManagerLifecycle:
    def test_single_task_completes(self):
        sim, rm, manager = build()
        spec = manager.submit(make_spec("a"))
        sim.run_until(lambda: manager.all_idle, max_time=1e6)
        assert manager.result_of(spec.task_id).state is TaskState.COMPLETED
        assert rm.active_grants == 0

    def test_result_of_unknown_task(self):
        _, _, manager = build()
        with pytest.raises(KeyError):
            manager.result_of("ghost")

    def test_concurrent_when_capacity_allows(self):
        sim, _, manager = build(durations={"a": 10.0, "b": 10.0})
        a = manager.submit(make_spec("a", bundles=8))
        b = manager.submit(make_spec("b", bundles=8))
        sim.run_until(lambda: manager.all_idle, max_time=1e6)
        ra, rb = manager.result_of(a.task_id), manager.result_of(b.task_id)
        assert ra.started_at == rb.started_at  # both scheduled in one pass

    def test_serialised_when_capacity_short(self):
        sim, _, manager = build(durations={"a": 10.0, "b": 10.0})
        a = manager.submit(make_spec("a", bundles=15, priority=2))
        b = manager.submit(make_spec("b", bundles=15, priority=1))
        sim.run_until(lambda: manager.all_idle, max_time=1e6)
        ra, rb = manager.result_of(a.task_id), manager.result_of(b.task_id)
        assert rb.started_at >= ra.finished_at

    def test_completion_triggers_immediate_reschedule(self):
        """The queued task starts when capacity frees, not at the tick."""
        sim, _, manager = build(durations={"a": 7.0, "b": 1.0})
        manager.submit(make_spec("a", bundles=15))
        b = manager.submit(make_spec("b", bundles=15))
        sim.run_until(lambda: manager.all_idle, max_time=1e6)
        assert manager.result_of(b.task_id).started_at == pytest.approx(7.0)

    def test_failed_runner_releases_and_unblocks(self):
        sim, rm, manager = build(durations={"a": 5.0}, failures={"a"})
        a = manager.submit(make_spec("a", bundles=15))
        b = manager.submit(make_spec("b", bundles=15))
        sim.run_until(lambda: manager.all_idle, max_time=1e6)
        assert manager.result_of(a.task_id).state is TaskState.FAILED
        assert manager.result_of(b.task_id).state is TaskState.COMPLETED
        assert rm.active_grants == 0

    def test_priority_order_respected(self):
        """With both tasks queued behind a blocker, priority wins."""
        sim, _, manager = build(durations={"blocker": 8.0, "low": 5.0, "high": 5.0})
        manager.submit(make_spec("blocker", bundles=20))
        low = manager.submit(make_spec("low", bundles=15, priority=1))
        high = manager.submit(make_spec("high", bundles=15, priority=9))
        sim.run_until(lambda: manager.all_idle, max_time=1e6)
        assert (
            manager.result_of(high.task_id).started_at
            < manager.result_of(low.task_id).started_at
        )

    def test_validation(self):
        sim = Simulator()
        cluster = K8sCluster([NodeSpec(4, 4)])
        rm = ResourceManager(cluster, phones=[])
        with pytest.raises(ValueError):
            TaskManager(sim, rm, lambda s: None, scheduling_interval=0)


class TestExperimentsCli:
    def test_list_names(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig11" in out

    def test_run_fast_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig7", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Optimization" in out
        assert "regenerated in" in out

    def test_unknown_name_errors(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
