"""Unit tests for Semaphore, Store and RandomStreams."""

import numpy as np
import pytest

from repro.simkernel import RandomStreams, Semaphore, Simulator, Store, Timeout, stable_hash


class TestSemaphore:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2, name="cpus")
        trace = []

        def worker(tag, hold):
            yield sem.acquire()
            trace.append((tag, "got", sim.now))
            yield Timeout(hold)
            sem.release()
            trace.append((tag, "put", sim.now))

        sim.process(worker("a", 5.0))
        sim.process(worker("b", 5.0))
        sim.process(worker("c", 5.0))
        sim.run()
        assert trace == [
            ("a", "got", 0.0),
            ("b", "got", 0.0),
            ("a", "put", 5.0),
            ("b", "put", 5.0),
            ("c", "got", 5.0),
            ("c", "put", 10.0),
        ]
        assert sem.available == 2

    def test_fifo_large_request_blocks_later_small_ones(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=4, name="pool")
        order = []

        def holder():
            yield sem.acquire(3)
            order.append("holder")
            yield Timeout(10.0)
            sem.release(3)

        def big():
            yield Timeout(1.0)
            yield sem.acquire(4)
            order.append("big")
            sem.release(4)

        def small():
            yield Timeout(2.0)
            yield sem.acquire(1)
            order.append("small")
            sem.release(1)

        sim.process(holder())
        sim.process(big())
        sim.process(small())
        sim.run()
        # 1 unit is free at t=2 but "big" is at the head of the queue.
        assert order == ["holder", "big", "small"]

    def test_over_release_detected(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_request_exceeding_capacity_rejected(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        with pytest.raises(ValueError):
            sem.acquire(3)

    def test_resize_grows_and_wakes_waiters(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        got = []

        def worker():
            yield sem.acquire()
            yield sem.acquire()  # queue is empty so this waits
            got.append(sim.now)

        sim.process(worker())
        sim.schedule(5.0, sem.resize, 2)
        sim.run()
        assert got == [5.0]

    def test_resize_shrink_does_not_revoke(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=3)

        def worker():
            yield sem.acquire(3)
            sem.resize(1)
            sem.release(3)

        sim.process(worker())
        sim.run()
        # After releasing 3 into a capacity-1 pool... the pool absorbed the
        # overshoot created by the shrink.
        assert sem.capacity == 1
        assert sem.available == 1

    def test_queued_count(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)

        def holder():
            yield sem.acquire()
            yield Timeout(10.0)
            sem.release()

        def waiter():
            yield Timeout(1.0)
            yield sem.acquire()
            sem.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=2.0)
        assert sem.queued == 1
        sim.run()
        assert sem.queued == 0


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        store.put("x")
        sim.process(consumer())
        sim.run()
        assert got == [("x", 0.0)]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        sim.process(consumer())
        sim.schedule(4.0, store.put, "late")
        sim.run()
        assert got == [("late", 4.0)]

    def test_fifo_matching(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.schedule(1.0, store.put, "A")
        sim.schedule(2.0, store.put, "B")
        sim.run()
        assert got == [("first", "A"), ("second", "B")]

    def test_get_nowait_and_drain(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        store.put(3)
        assert store.get_nowait() == 1
        assert store.drain() == [2, 3]
        assert store.get_nowait() is None
        assert len(store) == 0


class TestRandomStreams:
    def test_same_seed_same_name_same_draws(self):
        a = RandomStreams(42).get("phone.3").random(5)
        b = RandomStreams(42).get("phone.3").random(5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(42)
        a = streams.get("phone.1").random(100)
        b = streams.get("phone.2").random(100)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(10)
        b = RandomStreams(2).get("x").random(10)
        assert not np.allclose(a, b)

    def test_get_caches_generator(self):
        streams = RandomStreams(0)
        assert streams.get("s") is streams.get("s")

    def test_fresh_restarts_stream(self):
        streams = RandomStreams(0)
        first = streams.get("s").random(3)
        restarted = streams.fresh("s").random(3)
        assert np.allclose(first, restarted)

    def test_spawn_names(self):
        streams = RandomStreams(0)
        gens = streams.spawn("dev", 3)
        assert len(gens) == 3
        assert gens[0] is streams.get("dev.0")

    def test_reset_clears_cache(self):
        streams = RandomStreams(0)
        first = streams.get("s").random(3)
        streams.reset()
        again = streams.get("s").random(3)
        assert np.allclose(first, again)

    def test_stable_hash_is_stable(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")
        assert all(0 <= w < 2**32 for w in stable_hash("abc"))

    def test_insertion_order_does_not_matter(self):
        s1 = RandomStreams(9)
        s1.get("a")
        draw1 = s1.get("b").random(4)
        s2 = RandomStreams(9)
        draw2 = s2.get("b").random(4)
        assert np.allclose(draw1, draw2)
