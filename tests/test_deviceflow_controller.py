"""Tests for DeviceFlow's sorter, shelf, dispatcher and strategies."""

import pytest

from repro.deviceflow import (
    DeviceFlow,
    Message,
    RealTimeAccumulatedStrategy,
    Shelf,
    Sorter,
    TimeIntervalStrategy,
    TimePoint,
    TimePointStrategy,
    right_tailed_normal,
)
from repro.simkernel import RandomStreams, Simulator


def msg(task="t1", device="d0", round_index=1, n_samples=5):
    return Message(
        task_id=task,
        device_id=device,
        round_index=round_index,
        payload_ref=f"{task}/{device}/{round_index}",
        size_bytes=1024,
        n_samples=n_samples,
    )


class TestMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Message(task_id="", device_id="d", round_index=1, payload_ref="x")
        with pytest.raises(ValueError):
            msg(n_samples=0)
        bad = {"task_id": "t", "device_id": "d", "round_index": 1, "payload_ref": "x", "size_bytes": -1}
        with pytest.raises(ValueError):
            Message(**bad)

    def test_ids_unique(self):
        assert msg().message_id != msg().message_id


class TestShelfAndSorter:
    def test_shelf_fifo(self):
        shelf = Shelf("t1")
        first, second = msg(device="a"), msg(device="b")
        shelf.store(first)
        shelf.store(second)
        assert shelf.peek_oldest() is first
        assert [m.device_id for m in shelf.take(1)] == ["a"]
        assert [m.device_id for m in shelf.take_all()] == ["b"]
        assert len(shelf) == 0
        assert shelf.total_stored == 2

    def test_shelf_rejects_foreign_task(self):
        shelf = Shelf("t1")
        with pytest.raises(ValueError):
            shelf.store(msg(task="t2"))

    def test_sorter_routes_by_task(self):
        sorter = Sorter()
        s1, s2 = Shelf("t1"), Shelf("t2")
        sorter.register_shelf(s1)
        sorter.register_shelf(s2)
        sorter.route(msg(task="t1"))
        sorter.route(msg(task="t2"))
        sorter.route(msg(task="t2"))
        assert len(s1) == 1
        assert len(s2) == 2
        assert sorter.total_routed == 3
        assert sorter.task_ids == ["t1", "t2"]

    def test_sorter_unknown_task(self):
        sorter = Sorter()
        with pytest.raises(KeyError):
            sorter.route(msg(task="ghost"))

    def test_sorter_duplicate_shelf(self):
        sorter = Sorter()
        sorter.register_shelf(Shelf("t1"))
        with pytest.raises(ValueError):
            sorter.register_shelf(Shelf("t1"))


def build_flow(strategy, capacity=700.0, seed=0):
    sim = Simulator()
    flow = DeviceFlow(sim, streams=RandomStreams(seed), capacity_per_second=capacity)
    inbox = []
    flow.register_task("t1", strategy, downstream=lambda m: inbox.append((sim.now, m)))
    return sim, flow, inbox


class TestRealTimeAccumulated:
    def test_threshold_one_is_passthrough(self):
        sim, flow, inbox = build_flow(RealTimeAccumulatedStrategy([1]))
        flow.round_started("t1", 1)
        for i in range(5):
            flow.submit(msg(device=f"d{i}"))
        sim.run()
        assert len(inbox) == 5

    def test_threshold_sequence_cycles(self):
        """§VI-C2: a [20, 100, 50] sequence cycles through batch sizes."""
        sim, flow, inbox = build_flow(RealTimeAccumulatedStrategy([2, 3]), capacity=1e9)
        flow.round_started("t1", 1)
        dispatcher = flow.dispatcher_for("t1")
        for i in range(10):
            flow.submit(msg(device=f"d{i}"))
        sim.run()
        batch_sizes = [count for _, count in dispatcher.dispatch_log]
        assert batch_sizes == [2, 3, 2, 3]

    def test_flush_on_round_complete(self):
        sim, flow, inbox = build_flow(RealTimeAccumulatedStrategy([10]))
        flow.round_started("t1", 1)
        for i in range(4):
            flow.submit(msg(device=f"d{i}"))
        sim.run()
        assert len(inbox) == 0  # below threshold
        flow.round_completed("t1", 1)
        sim.run()
        assert len(inbox) == 4

    def test_dropout_probability(self):
        strategy = RealTimeAccumulatedStrategy([1], failure_prob=0.5)
        sim, flow, inbox = build_flow(strategy, seed=3)
        flow.round_started("t1", 1)
        for i in range(400):
            flow.submit(msg(device=f"d{i}"))
        sim.run()
        stats = flow.stats("t1")
        assert stats.dropped_failure > 120
        assert stats.delivered == 400 - stats.dropped_failure
        assert len(inbox) == stats.delivered

    def test_validation(self):
        with pytest.raises(ValueError):
            RealTimeAccumulatedStrategy([])
        with pytest.raises(ValueError):
            RealTimeAccumulatedStrategy([0])
        with pytest.raises(ValueError):
            RealTimeAccumulatedStrategy([1], failure_prob=1.5)


class TestRateLimiting:
    def test_burst_spreads_over_time(self):
        """Fig. 10(b): a point burst arrives over subsequent instants."""
        sim, flow, inbox = build_flow(RealTimeAccumulatedStrategy([1400]), capacity=700.0)
        flow.round_started("t1", 1)
        for i in range(1400):
            flow.submit(msg(device=f"d{i}"))
        sim.run()
        arrival_times = [t for t, _ in inbox]
        assert len(inbox) == 1400
        # 1400 messages at 700 msg/s -> spread over ~2 s.
        assert max(arrival_times) - min(arrival_times) == pytest.approx(2.0, abs=0.2)

    def test_dispatcher_idle_signal(self):
        sim, flow, _ = build_flow(RealTimeAccumulatedStrategy([1]), capacity=10.0)
        dispatcher = flow.dispatcher_for("t1")
        flow.round_started("t1", 1)
        flow.submit(msg())
        assert not dispatcher.idle.fired
        sim.run()
        assert dispatcher.idle.fired


class TestTimePointStrategy:
    def test_relative_points_fire_after_round_end(self):
        points = [TimePoint(10.0, 2), TimePoint(30.0, 2)]
        sim, flow, inbox = build_flow(TimePointStrategy(points), capacity=1e9)
        flow.round_started("t1", 1)
        for i in range(4):
            flow.submit(msg(device=f"d{i}"))
        sim.run()
        flow.round_completed("t1", 1)
        end = sim.now
        sim.run()
        times = sorted(t for t, _ in inbox)
        assert len(times) == 4
        assert times[0] == pytest.approx(end + 10.0, abs=0.1)
        assert times[-1] == pytest.approx(end + 30.0, abs=0.1)

    def test_absolute_points(self):
        points = [TimePoint(50.0, 5)]
        sim, flow, inbox = build_flow(TimePointStrategy(points, relative=False), capacity=1e9)
        flow.round_started("t1", 1)
        for i in range(5):
            flow.submit(msg(device=f"d{i}"))
        flow.round_completed("t1", 1)
        sim.run()
        assert all(t == pytest.approx(50.0, abs=0.1) for t, _ in inbox)

    def test_point_discard_dropout(self):
        points = [TimePoint(1.0, 10, discard_count=4)]
        sim, flow, inbox = build_flow(TimePointStrategy(points), seed=1)
        flow.round_started("t1", 1)
        for i in range(10):
            flow.submit(msg(device=f"d{i}"))
        flow.round_completed("t1", 1)
        sim.run()
        assert len(inbox) == 6
        assert flow.stats("t1").dropped_discard == 4

    def test_point_does_not_over_take(self):
        points = [TimePoint(1.0, 100)]
        sim, flow, inbox = build_flow(TimePointStrategy(points))
        flow.round_started("t1", 1)
        for i in range(3):
            flow.submit(msg(device=f"d{i}"))
        flow.round_completed("t1", 1)
        sim.run()
        assert len(inbox) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TimePointStrategy([])
        with pytest.raises(ValueError):
            TimePointStrategy([TimePoint(-5.0, 1)])
        with pytest.raises(ValueError):
            TimePoint(1.0, 0)


class TestTimeIntervalStrategy:
    def test_dispatch_follows_curve(self):
        """Fig. 10(c): realised sends track the right-tailed normal."""
        curve = right_tailed_normal(1.0)
        strategy = TimeIntervalStrategy(curve, interval_seconds=60.0)
        sim, flow, inbox = build_flow(strategy, capacity=700.0)
        flow.round_started("t1", 1)
        for i in range(10_000):
            flow.submit(msg(device=f"d{i}"))
        flow.round_completed("t1", 1)
        base = sim.now
        sim.run()
        assert len(inbox) == 10_000
        # Early-window arrivals dominate for a right-tailed curve.
        early = sum(1 for t, _ in inbox if t - base < 20.0)
        assert early > 7_000
        assert strategy.last_schedule  # schedule retained for inspection

    def test_interval_dropout(self):
        curve = right_tailed_normal(1.0)
        strategy = TimeIntervalStrategy(curve, 30.0, failure_prob=0.3)
        sim, flow, inbox = build_flow(strategy, seed=2)
        flow.round_started("t1", 1)
        for i in range(1000):
            flow.submit(msg(device=f"d{i}"))
        flow.round_completed("t1", 1)
        sim.run()
        assert 550 < len(inbox) < 850

    def test_empty_round_no_dispatch(self):
        strategy = TimeIntervalStrategy(right_tailed_normal(1.0), 30.0)
        sim, flow, inbox = build_flow(strategy)
        flow.round_started("t1", 1)
        flow.round_completed("t1", 1)
        sim.run()
        assert inbox == []

    def test_validation(self):
        curve = right_tailed_normal(1.0)
        with pytest.raises(ValueError):
            TimeIntervalStrategy(curve, -1.0)
        with pytest.raises(ValueError):
            TimeIntervalStrategy(curve, 10.0, relative=False)  # needs start_time
        with pytest.raises(ValueError):
            TimeIntervalStrategy(curve, 10.0, failure_prob=2.0)


class TestDeviceFlowFacade:
    def test_task_isolation(self):
        sim = Simulator()
        flow = DeviceFlow(sim, streams=RandomStreams(0))
        inbox1, inbox2 = [], []
        flow.register_task("t1", RealTimeAccumulatedStrategy([1]), inbox1.append)
        flow.register_task("t2", RealTimeAccumulatedStrategy([100]), inbox2.append)
        flow.round_started("t1", 1)
        flow.round_started("t2", 1)
        flow.submit(msg(task="t1"))
        flow.submit(msg(task="t2"))
        sim.run()
        assert len(inbox1) == 1
        assert len(inbox2) == 0  # t2 still accumulating

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        flow = DeviceFlow(sim)
        flow.register_task("t1", RealTimeAccumulatedStrategy([1]), lambda m: None)
        with pytest.raises(ValueError):
            flow.register_task("t1", RealTimeAccumulatedStrategy([1]), lambda m: None)

    def test_unknown_task_rejected(self):
        sim = Simulator()
        flow = DeviceFlow(sim)
        with pytest.raises(KeyError):
            flow.submit(msg(task="ghost"))
        with pytest.raises(KeyError):
            flow.round_started("ghost", 1)

    def test_unregister_requires_empty_shelf(self):
        sim = Simulator()
        flow = DeviceFlow(sim)
        flow.register_task("t1", RealTimeAccumulatedStrategy([100]), lambda m: None)
        flow.round_started("t1", 1)
        flow.submit(msg())
        with pytest.raises(RuntimeError):
            flow.unregister_task("t1")
        flow.round_completed("t1", 1)
        sim.run()
        flow.unregister_task("t1")
        assert flow.task_ids == []

    def test_stats_accounting_identity(self):
        strategy = RealTimeAccumulatedStrategy([3], failure_prob=0.2)
        sim, flow, inbox = build_flow(strategy, seed=7)
        flow.round_started("t1", 1)
        for i in range(30):
            flow.submit(msg(device=f"d{i}"))
        flow.round_completed("t1", 1)
        sim.run()
        stats = flow.stats("t1")
        assert stats.received == 30
        assert stats.shelved == 0
        assert stats.delivered + stats.dropped == 30
        assert len(inbox) == stats.delivered

    def test_created_at_stamped(self):
        sim, flow, _ = build_flow(RealTimeAccumulatedStrategy([10]))
        sim.schedule(5.0, lambda: flow.submit(msg()))
        sim.run()
        assert flow.dispatcher_for("t1").shelf.peek_oldest().created_at == 5.0
