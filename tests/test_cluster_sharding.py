"""Tests for the batched logical-tier round and the sharded execution tier."""

import pytest

from repro.cloud import CallbackSink
from repro.cluster import (
    DeviceAssignment,
    GradeExecutionPlan,
    K8sCluster,
    LogicalCostModel,
    LogicalSimulation,
    NodeSpec,
    ResourceBundle,
    ShardedLogicalSimulation,
    partition_plans,
)
from repro.ml import standard_fl_flow
from repro.simkernel import Simulator

NODES = [NodeSpec(cpus=10, memory_gb=20)] * 4
COST = LogicalCostModel(alpha={"Std": 11.0}, actor_startup=0.5, runner_setup=4.0)


def make_plan(n_devices: int, n_actors: int = 40) -> GradeExecutionPlan:
    return GradeExecutionPlan(
        grade="Std",
        assignments=[DeviceAssignment(f"d{i:05d}", "Std", 10) for i in range(n_devices)],
        n_actors=n_actors,
        bundle=ResourceBundle(cpus=1, memory_gb=1),
        flow=standard_fl_flow(),
        numeric=False,
    )


def run_unsharded(n_devices: int, batch: bool, with_callback: bool = True):
    """One prepare + round on a plain LogicalSimulation; returns (round, outcomes)."""
    sim = Simulator()
    logical = LogicalSimulation(sim, K8sCluster(NODES), COST, batch=batch)
    plan = make_plan(n_devices)
    streamed = []

    def driver():
        yield sim.process(logical.prepare([plan]))
        yield sim.process(
            logical.run_round(1, None, 0.0, 4096, CallbackSink(streamed.append) if with_callback else None)
        )

    sim.process(driver())
    sim.run(batch=batch)
    logical.teardown()
    return logical.rounds[0], streamed


class TestPlanValidation:
    def test_mixed_grade_plan_rejected(self):
        with pytest.raises(ValueError):
            GradeExecutionPlan(
                grade="Std",
                assignments=[DeviceAssignment("d0", "Other", 10)],
                n_actors=1,
                bundle=ResourceBundle(cpus=1, memory_gb=1),
                flow=standard_fl_flow(),
            )

    def test_dataset_bytes_precomputed(self):
        plan = make_plan(5)
        assert plan.dataset_bytes() == 5 * 64 * 10


class TestBatchedRoundIdentity:
    def test_batched_outcomes_bit_identical_to_generator_path(self):
        legacy, legacy_streamed = run_unsharded(403, batch=False)
        batched, batched_streamed = run_unsharded(403, batch=True)
        assert len(legacy_streamed) == len(batched_streamed) == 403
        for a, b in zip(legacy_streamed, batched_streamed):
            assert a.device_id == b.device_id
            assert a.finished_at == b.finished_at  # bit-identical floats
            assert a.payload_bytes == b.payload_bytes
        assert legacy.duration == batched.duration
        assert legacy.finished_at == batched.finished_at

    def test_columnar_materialization_matches_generator_path(self):
        legacy, legacy_streamed = run_unsharded(120, batch=False)
        columnar, streamed = run_unsharded(120, batch=True, with_callback=False)
        assert streamed == []
        assert not columnar.outcomes and columnar.columnar
        materialized = columnar.all_outcomes()
        assert len(materialized) == 120
        for a, b in zip(legacy_streamed, materialized):
            assert a.device_id == b.device_id
            assert a.finished_at == b.finished_at
        assert columnar.n_devices == 120
        assert legacy.duration == columnar.duration

    def test_scalar_reference_times_match_batched_plan(self):
        """A plain-float re-derivation reproduces the broadcast wave times.

        The generator path accumulates ``((start + model_dl) + duration) +
        transfer`` with scalar Python floats; re-deriving one actor's chain
        that way and comparing bit-for-bit against a real batched round
        pins the interleaved-cumsum implementation from the outside.
        """
        batched, streamed = run_unsharded(97, batch=True)
        by_device = {o.device_id: o.finished_at for o in streamed}
        plan = make_plan(97)
        n_actors = 40
        for a in (0, 7, 39):
            queue = plan.assignments[a::n_actors]  # the round-robin layout
            t = batched.started_at + COST.transfer_duration(4096)
            assert queue
            for assignment in queue:
                t = t + COST.device_round_duration(assignment.grade, plan.flow.total_work)
                t = t + COST.transfer_duration(4096)
                assert by_device[assignment.device_id] == t


class TestPartitionPlans:
    def test_wave_aligned_actor_split(self):
        plan = make_plan(10, n_actors=6)
        shards = partition_plans([plan], 4)
        assert [s[0].n_actors for s in shards] == [2, 2, 1, 1]
        # Wave alignment: shard s holds, per wave, the devices of its actor
        # slots — shard 0 owns slots {0, 1}, so waves contribute positions
        # {0, 1} and {6, 7}.
        assert [a.device_id for a in shards[0][0].assignments] == [
            "d00000", "d00001", "d00006", "d00007"
        ]
        assert [a.device_id for a in shards[2][0].assignments] == ["d00004"]
        # Every device appears exactly once.
        ids = [a.device_id for s in shards for a in s[0].assignments]
        assert sorted(ids) == [a.device_id for a in plan.assignments]

    def test_empty_shards_dropped(self):
        plan = make_plan(2, n_actors=2)
        shards = partition_plans([plan], 4)
        assert [len(s) for s in shards] == [1, 1, 0, 0]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_plans([], 0)


class TestShardedDeterminism:
    def test_single_shard_bit_identical_to_unsharded(self):
        legacy, streamed = run_unsharded(160, batch=False)
        result = ShardedLogicalSimulation(NODES, COST, n_shards=1, seed=0).run_rounds(
            [make_plan(160)], n_rounds=1, model_bytes=4096
        )
        merged = result.rounds[0]
        assert merged.n_devices == 160
        reference = sorted(streamed, key=lambda o: (o.finished_at, o.device_id))
        for a, b in zip(reference, merged.outcomes):
            assert a.device_id == b.device_id
            assert a.finished_at == b.finished_at
        assert merged.duration == legacy.duration

    @pytest.mark.parametrize("collect_outcomes", [True, False])
    def test_shard_counts_produce_identical_metrics(self, collect_outcomes):
        # 160 devices over 40 actors divide evenly by 1, 2 and 4 shards.
        metrics = {}
        outcome_sets = {}
        for n_shards in (1, 2, 4):
            result = ShardedLogicalSimulation(NODES, COST, n_shards=n_shards, seed=7).run_rounds(
                [make_plan(160)],
                n_rounds=1,
                model_bytes=4096,
                collect_outcomes=collect_outcomes,
            )
            metrics[n_shards] = result.metrics()
            if collect_outcomes:
                outcome_sets[n_shards] = (
                    sorted(o.device_id for o in result.rounds[0].outcomes),
                    sorted(o.finished_at for o in result.rounds[0].outcomes),
                )
        assert metrics[1] == metrics[2] == metrics[4]
        if collect_outcomes:
            # Block partitioning shifts which device lands in which wave,
            # but the device set and the completion-time multiset are
            # invariant across shard counts.
            assert outcome_sets[1] == outcome_sets[2] == outcome_sets[4]

    def test_multi_round_merge(self):
        result = ShardedLogicalSimulation(NODES, COST, n_shards=2, seed=0).run_rounds(
            [make_plan(80)], n_rounds=3, model_bytes=0, collect_outcomes=False
        )
        assert [r.round_index for r in result.rounds] == [1, 2, 3]
        assert result.total_devices == 240
        assert all(len(r.finished_times) == 80 for r in result.rounds)
        # Rounds execute back-to-back on each shard's clock.
        assert result.rounds[0].finished_at <= result.rounds[1].started_at

    def test_capacity_checked_globally(self):
        small = [NodeSpec(cpus=4, memory_gb=8)]
        with pytest.raises(RuntimeError):
            ShardedLogicalSimulation(small, COST, n_shards=2).run_rounds(
                [make_plan(40, n_actors=40)], n_rounds=1
            )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ShardedLogicalSimulation(NODES, COST, n_shards=0)
        with pytest.raises(ValueError):
            ShardedLogicalSimulation(NODES, COST).run_rounds([make_plan(4)], n_rounds=0)
