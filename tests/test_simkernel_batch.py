"""Tests for the batched kernel fast path and the vectorized timeout pool."""

import numpy as np
import pytest

from repro.simkernel import Simulator, TimeoutPool
from repro.simkernel.events import EventQueue


class TestEventArgs:
    def test_schedule_stores_callback_and_args(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, "payload")
        assert event.callback == seen.append
        assert event.args == ("payload",)
        sim.run()
        assert seen == ["payload"]

    def test_event_fire_invokes_with_args(self):
        queue = EventQueue()
        seen = []
        event = queue.push(1.0, lambda a, b: seen.append(a + b), (1, 2))
        event.fire()
        assert seen == [3]


class TestPopBatch:
    def test_drains_one_time_priority_run(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(1.0, lambda: None, priority=5)
        queue.push(2.0, lambda: None)
        batch = queue.pop_batch()
        assert [e.time for e in batch] == [1.0, 1.0]
        assert [e.priority for e in batch] == [0, 0]
        assert len(queue) == 2

    def test_batches_split_by_priority(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=1)
        queue.push(1.0, lambda: None, priority=0)
        first = queue.pop_batch()
        second = queue.pop_batch()
        assert [e.priority for e in first] == [0]
        assert [e.priority for e in second] == [1]

    def test_insertion_order_within_batch(self):
        queue = EventQueue()
        events = [queue.push(3.0, lambda: None) for _ in range(5)]
        assert queue.pop_batch() == events

    def test_skips_cancelled(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(1.0, lambda: None)
        queue.cancel(drop)
        assert queue.pop_batch() == [keep]
        assert len(queue) == 0

    def test_empty_queue(self):
        assert EventQueue().pop_batch() == []


class TestStepBatch:
    def test_same_order_as_single_stepping(self):
        def build(sim, order):
            for tag, time, prio in [("a", 1.0, 0), ("b", 1.0, 0), ("c", 1.0, 2), ("d", 2.0, 0)]:
                sim.schedule(time, order.append, tag, priority=prio)

        single = Simulator()
        order_single = []
        build(single, order_single)
        single.run()

        batched = Simulator()
        order_batched = []
        build(batched, order_batched)
        batched.run(batch=True)
        assert order_batched == order_single == ["a", "b", "c", "d"]

    def test_returns_fired_count(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        assert sim.step_batch() == 4
        assert sim.step_batch() == 0

    def test_cancellation_inside_batch_respected(self):
        sim = Simulator()
        fired = []
        handles = {}

        def first():
            fired.append("first")
            sim.cancel(handles["second"])

        sim.schedule(1.0, first)
        handles["second"] = sim.schedule(1.0, fired.append, "second")
        sim.run(batch=True)
        assert fired == ["first"]
        # Cancelling an event the batch already drained must not drive the
        # live count negative.
        assert sim.pending_events == 0

    def test_event_scheduled_at_current_time_fires_same_timestamp(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.0, order.append, "inner")

        sim.schedule(1.0, outer)
        sim.schedule(1.0, order.append, "peer")
        sim.run(batch=True)
        assert order == ["outer", "peer", "inner"]
        assert sim.now == 1.0


class TestTimeoutPool:
    def test_fires_at_deadline_in_insertion_order(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        order = []
        pool.add(2.0, order.append, "b1")
        pool.add(1.0, order.append, "a")
        pool.add(2.0, order.append, "b2")
        sim.run()
        assert order == ["a", "b1", "b2"]
        assert sim.now == 2.0
        assert pool.pending == 0

    def test_cancellation_before_fire(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        fired = []
        keep = pool.add(1.0, fired.append, "keep")
        drop = pool.add(1.0, fired.append, "drop")
        drop.cancel()
        assert pool.pending == 1
        sim.run()
        assert fired == ["keep"]
        assert keep.fired and not keep.cancelled
        assert drop.cancelled and not drop.fired

    def test_cancel_is_idempotent_and_noop_after_fire(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        fired = []
        handle = pool.add(1.0, fired.append, "x")
        sim.run()
        handle.cancel()
        handle.cancel()
        assert fired == ["x"]
        assert handle.fired

    def test_callback_can_cancel_sibling_same_deadline(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        fired = []
        handles = {}

        def first():
            fired.append("first")
            handles["second"].cancel()

        pool.add(1.0, first)
        handles["second"] = pool.add(1.0, fired.append, "second")
        sim.run()
        assert fired == ["first"]

    def test_earlier_add_rearms_sentinel(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        order = []
        pool.add(5.0, order.append, "late")
        pool.add(1.0, order.append, "early")
        assert pool.next_deadline() == 1.0
        sim.run()
        assert order == ["early", "late"]

    def test_rejects_past_and_negative(self):
        sim = Simulator(start_time=10.0)
        pool = TimeoutPool(sim)
        with pytest.raises(ValueError):
            pool.add(-1.0, lambda: None)
        with pytest.raises(ValueError):
            pool.add_at(5.0, lambda: None)

    def test_add_sequence_drains_in_slices(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        times = np.array([1.0, 1.0, 2.0, 2.0, 2.0, 4.0])
        slices = []
        pool.add_sequence(times, lambda lo, hi, t: slices.append((lo, hi, t)))
        assert pool.pending == 6
        sim.run()
        assert slices == [(0, 2, 1.0), (2, 5, 2.0), (5, 6, 4.0)]
        assert pool.pending == 0

    def test_add_sequence_validation(self):
        sim = Simulator(start_time=3.0)
        pool = TimeoutPool(sim)
        with pytest.raises(ValueError):
            pool.add_sequence(np.array([2.0, 1.0]), lambda lo, hi, t: None)
        with pytest.raises(ValueError):
            pool.add_sequence(np.array([1.0, 2.0]), lambda lo, hi, t: None)
        pool.add_sequence(np.array([], dtype=float), lambda lo, hi, t: None)
        assert pool.pending == 0

    def test_interleaves_with_heap_events(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        order = []
        sim.schedule(1.5, order.append, "heap-1.5")
        pool.add(1.0, order.append, "pool-1.0")
        pool.add(2.0, order.append, "pool-2.0")
        sim.schedule(0.5, order.append, "heap-0.5")
        sim.run()
        assert order == ["heap-0.5", "pool-1.0", "heap-1.5", "pool-2.0"]

    def test_growth_beyond_initial_capacity(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        fired = []
        for i in range(200):
            pool.add(float(i % 7) + 1.0, fired.append, i)
        sim.run()
        assert len(fired) == 200

    def test_compaction_preserves_live_handles(self):
        # 300 fired entries against 100 live ones crosses the compaction
        # threshold (count >= 256, half dead); the survivors' handles must
        # keep working after their slots are remapped.
        sim = Simulator()
        pool = TimeoutPool(sim)
        fired = []
        for i in range(300):
            pool.add(1.0, fired.append, i)
        late = [pool.add(5.0, fired.append, 1000 + i) for i in range(100)]
        sim.run(until=2.0)
        assert len(fired) == 300
        assert pool.pending == 100
        for handle in late[:50]:
            handle.cancel()
        assert pool.pending == 50
        sim.run()
        assert len(fired) == 350
        assert all(h.cancelled and not h.fired for h in late[:50])
        assert all(h.fired and not h.cancelled for h in late[50:])

    def test_works_under_batched_stepping(self):
        sim = Simulator()
        pool = TimeoutPool(sim)
        fired = []
        for i in range(50):
            pool.add(1.0 + (i % 5), fired.append, i)
        sim.run(batch=True)
        assert len(fired) == 50
