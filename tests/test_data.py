"""Unit tests for the synthetic Avazu data substrate."""

import numpy as np
import pytest

from repro.data import (
    AVAZU_FIELDS,
    DeviceDataset,
    HashingEncoder,
    SyntheticAvazu,
    label_skew_device_biases,
    make_federated_ctr_data,
    split_by_device_column,
)
from repro.data.partition import assign_delay_profiles, iid_sample_counts


class TestHashingEncoder:
    def test_index_in_range(self):
        encoder = HashingEncoder(dim=64, fields=["a", "b"])
        for value in ["x", "y", "longer-value"]:
            assert 0 <= encoder.index_of("a", value) < 64

    def test_deterministic_across_instances(self):
        one = HashingEncoder(dim=1024, fields=["f"])
        two = HashingEncoder(dim=1024, fields=["f"])
        assert one.index_of("f", "hello") == two.index_of("f", "hello")

    def test_field_name_participates_in_hash(self):
        encoder = HashingEncoder(dim=2**20, fields=["a", "b"])
        assert encoder.index_of("a", "v") != encoder.index_of("b", "v")

    def test_encode_record_shape_and_order(self):
        encoder = HashingEncoder(dim=128, fields=["a", "b", "c"])
        row = encoder.encode_record(["1", "2", "3"])
        assert row.shape == (3,)
        assert row[0] == encoder.index_of("a", "1")
        assert row[2] == encoder.index_of("c", "3")

    def test_encode_record_wrong_arity(self):
        encoder = HashingEncoder(dim=128, fields=["a", "b"])
        with pytest.raises(ValueError):
            encoder.encode_record(["only-one"])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HashingEncoder(dim=0, fields=["a"])
        with pytest.raises(ValueError):
            HashingEncoder(dim=8, fields=[])

    def test_vocabulary_indices(self):
        encoder = HashingEncoder(dim=256, fields=["a"])
        vocab = encoder.vocabulary_indices("a", 10)
        assert vocab.shape == (10,)
        assert vocab[3] == encoder.index_of("a", "3")


class TestDeviceDataset:
    def test_basic_properties(self):
        features = np.zeros((5, 3), dtype=np.int32)
        labels = np.array([1, 0, 1, 1, 0], dtype=np.int8)
        shard = DeviceDataset("dev-0", features, labels)
        assert len(shard) == 5
        assert shard.n_samples == 5
        assert shard.positive_rate == pytest.approx(0.6)
        assert shard.nbytes() > 0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            DeviceDataset("d", np.zeros((3, 2), dtype=np.int32), np.zeros(4, dtype=np.int8))

    def test_one_dim_features_rejected(self):
        with pytest.raises(ValueError):
            DeviceDataset("d", np.zeros(3, dtype=np.int32), np.zeros(3, dtype=np.int8))


class TestSyntheticAvazu:
    def test_shapes_and_determinism(self):
        data_a = SyntheticAvazu(n_devices=10, records_per_device=15, feature_dim=512, seed=3).generate()
        data_b = SyntheticAvazu(n_devices=10, records_per_device=15, feature_dim=512, seed=3).generate()
        assert data_a.n_devices == 10
        for device_id in data_a.device_ids():
            shard_a = data_a.shard(device_id)
            shard_b = data_b.shard(device_id)
            assert np.array_equal(shard_a.features, shard_b.features)
            assert np.array_equal(shard_a.labels, shard_b.labels)
        assert data_a.shard("dev-000000").features.shape[1] == len(AVAZU_FIELDS)

    def test_different_seeds_differ(self):
        data_a = SyntheticAvazu(n_devices=5, seed=1).generate()
        data_b = SyntheticAvazu(n_devices=5, seed=2).generate()
        same = all(
            np.array_equal(data_a.shard(d).labels, data_b.shard(d).labels)
            for d in data_a.device_ids()
        )
        assert not same

    def test_feature_indices_in_range(self):
        data = SyntheticAvazu(n_devices=8, feature_dim=256, seed=0).generate()
        for device_id in data.device_ids():
            features = data.shard(device_id).features
            assert features.min() >= 0
            assert features.max() < 256

    def test_base_ctr_roughly_respected(self):
        data = SyntheticAvazu(
            n_devices=200, records_per_device=50, base_ctr=0.2, device_bias_std=0.0, seed=0
        ).generate()
        labels = np.concatenate([data.shard(d).labels for d in data.device_ids()])
        # Planted weights add variance; the population CTR should stay in a
        # generous band around the intercept-implied rate.
        assert 0.08 < labels.mean() < 0.45

    def test_device_bias_shifts_ctr(self):
        n = 60
        biases = np.concatenate([np.full(n // 2, 3.0), np.full(n // 2, -3.0)])
        data = SyntheticAvazu(n_devices=n, records_per_device=60, seed=0).generate(
            device_biases=biases
        )
        rates = [data.shard(d).positive_rate for d in data.device_ids()]
        high = [r for d, r in zip(data.device_ids(), rates) if data.device_biases[d] > 0]
        low = [r for d, r in zip(data.device_ids(), rates) if data.device_biases[d] < 0]
        assert np.mean(high) > np.mean(low) + 0.3

    def test_bias_length_validated(self):
        generator = SyntheticAvazu(n_devices=4, seed=0)
        with pytest.raises(ValueError):
            generator.generate(device_biases=np.zeros(3))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SyntheticAvazu(n_devices=0)
        with pytest.raises(ValueError):
            SyntheticAvazu(records_per_device=1)
        with pytest.raises(ValueError):
            SyntheticAvazu(base_ctr=1.5)

    def test_subset_view(self):
        data = SyntheticAvazu(n_devices=6, seed=0).generate()
        ids = data.device_ids()[:2]
        view = data.subset(ids)
        assert view.n_devices == 2
        assert view.test is data.test


class TestPartitioners:
    def test_label_skew_split_fractions(self):
        biases = label_skew_device_biases(100, positive_fraction=0.7, spread=2.5, seed=1)
        assert (biases > 0).sum() == 70
        assert (biases < 0).sum() == 30

    def test_label_skew_shuffled(self):
        biases = label_skew_device_biases(50, positive_fraction=0.5, seed=1)
        # Not simply first half positive.
        assert not (biases[:25] > 0).all()

    def test_label_skew_validation(self):
        with pytest.raises(ValueError):
            label_skew_device_biases(10, positive_fraction=1.2)
        with pytest.raises(ValueError):
            label_skew_device_biases(10, spread=-1)

    def test_delay_profiles_monotone_in_ctr(self):
        biases = {f"d{i}": float(b) for i, b in enumerate(np.linspace(3, -3, 20))}
        delays = assign_delay_profiles(biases, sigma=1.0, max_delay=600.0, seed=0)
        ordered = [delays[f"d{i}"] for i in range(20)]
        assert ordered == sorted(ordered)
        assert max(ordered) <= 600.0
        assert min(ordered) >= 0.0

    def test_delay_profiles_sigma_orders_mass(self):
        biases = {f"d{i}": float(i) for i in range(400)}
        tight = assign_delay_profiles(biases, sigma=1.0, max_delay=1200.0, seed=0)
        wide = assign_delay_profiles(biases, sigma=3.0, max_delay=1200.0, seed=0)
        # Smaller sigma concentrates arrivals earlier: its median delay is
        # a smaller fraction of the max.
        assert np.median(list(tight.values())) < np.median(list(wide.values()))

    def test_delay_profiles_validation(self):
        with pytest.raises(ValueError):
            assign_delay_profiles({"a": 0.0}, sigma=0.0, max_delay=10.0)
        with pytest.raises(ValueError):
            assign_delay_profiles({"a": 0.0}, sigma=1.0, max_delay=0.0)

    def test_split_by_device_column(self):
        features = np.arange(12).reshape(6, 2)
        labels = np.array([0, 1, 0, 1, 0, 1])
        ids = ["a", "b", "a", "c", "b", "a"]
        shards = split_by_device_column(features, labels, ids)
        assert sorted(shards) == ["a", "b", "c"]
        shard_features, shard_labels = shards["a"]
        assert shard_features.shape == (3, 2)
        assert list(shard_labels) == [0, 0, 1]

    def test_split_misaligned(self):
        with pytest.raises(ValueError):
            split_by_device_column(np.zeros((2, 2)), np.zeros(2), ["a"])

    def test_iid_sample_counts_sum(self):
        counts = iid_sample_counts(7, 100, seed=0)
        assert counts.sum() == 100
        assert counts.min() >= 100 // 7

    def test_iid_sample_counts_validation(self):
        with pytest.raises(ValueError):
            iid_sample_counts(0, 10)
        with pytest.raises(ValueError):
            iid_sample_counts(10, 5)


class TestMakeFederatedCtrData:
    def test_iid_helper(self):
        data = make_federated_ctr_data(12, records_per_device=10, feature_dim=256, seed=5)
        assert data.n_devices == 12
        assert data.feature_dim == 256

    def test_skew_helper_creates_bimodal_biases(self):
        data = make_federated_ctr_data(
            20, seed=5, skew={"positive_fraction": 0.7, "spread": 2.5}
        )
        biases = np.array([data.device_biases[d] for d in data.device_ids()])
        assert (biases > 0).sum() == 14
        assert (biases < 0).sum() == 6
