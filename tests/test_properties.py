"""Property-based tests over core invariants (hypothesis).

These complement the per-module unit tests with randomized coverage of
the properties the platform's correctness leans on: deterministic event
ordering, conservation laws in DeviceFlow, energy accounting, FedAvg
algebra, serialization round-trips, and allocation-formula monotonicity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deviceflow import Message, RealTimeAccumulatedStrategy, Shelf
from repro.deviceflow.curves import TrafficCurve
from repro.ml import LogisticRegressionModel, ModelUpdate, fedavg, roc_auc
from repro.phones import BatteryModel
from repro.scheduler.allocation import (
    AllocationProblem,
    GradeAllocationParams,
    evaluate_allocation,
    solve_allocation,
)
from repro.simkernel import RandomStreams, Simulator, Timeout


class TestKernelProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_process_completion_times_deterministic(self, delays, seed):
        def run_once():
            sim = Simulator()
            done = []

            def worker(delay):
                yield Timeout(delay)
                done.append((sim.now, delay))

            for delay in delays:
                sim.process(worker(delay))
            sim.run()
            return done

        assert run_once() == run_once()

    @given(names=st.lists(st.text(min_size=1, max_size=20), min_size=2, max_size=10, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_random_streams_stable_under_subset_order(self, names):
        seed = 7
        full = RandomStreams(seed)
        draws_full = {}
        for name in names:
            draws_full[name] = full.get(name).random(4)
        # Accessing only the last name in a fresh factory gives the same draw.
        solo = RandomStreams(seed)
        target = names[-1]
        assert np.allclose(solo.get(target).random(4), draws_full[target])


class TestDeviceFlowProperties:
    @given(
        counts=st.integers(min_value=1, max_value=400),
        thresholds=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_message_conservation_through_dispatcher(self, counts, thresholds):
        """received == delivered + dropped + shelved, always."""
        from repro.deviceflow import DeviceFlow

        sim = Simulator()
        flow = DeviceFlow(sim, streams=RandomStreams(1), capacity_per_second=1e6)
        inbox = []
        flow.register_task(
            "t", RealTimeAccumulatedStrategy(thresholds, failure_prob=0.3), inbox.append
        )
        flow.round_started("t", 1)
        for i in range(counts):
            flow.submit(Message(task_id="t", device_id=f"d{i}", round_index=1, payload_ref="x"))
        flow.round_completed("t", 1)
        sim.run()
        stats = flow.stats("t")
        assert stats.received == counts
        assert stats.delivered + stats.dropped + stats.shelved == counts
        assert len(inbox) == stats.delivered

    @given(count=st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_shelf_take_is_fifo_and_complete(self, count):
        shelf = Shelf("t")
        for i in range(count):
            shelf.store(Message(task_id="t", device_id=f"d{i}", round_index=1, payload_ref="x"))
        out = shelf.take(count + 10)  # over-asking returns only what exists
        assert [m.device_id for m in out] == [f"d{i}" for i in range(count)]
        assert len(shelf) == 0

    @given(
        scale=st.floats(min_value=0.1, max_value=50.0),
        shift=st.floats(min_value=-5.0, max_value=5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_curve_area_scales_linearly(self, scale, shift):
        base = TrafficCurve(lambda t: np.cos(t) + 1.1, (0.0, 6.0), name="c")
        scaled = TrafficCurve(lambda t: scale * (np.cos(t) + 1.1), (0.0, 6.0), name="cs")
        assert scaled.area() == pytest.approx(scale * base.area(), rel=1e-6)


class TestBatteryProperties:
    @given(
        draws=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2000.0),
                st.floats(min_value=0.0, max_value=3600.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_energy_accounting_additive(self, draws):
        battery = BatteryModel(capacity_mah=5000)
        total = 0.0
        for current, duration in draws:
            total += battery.accumulate(current, duration)
        assert battery.consumed_mah == pytest.approx(total)
        assert 0.0 <= battery.state_of_charge <= 1.0


class TestFedAvgProperties:
    @given(
        n_updates=st.integers(min_value=1, max_value=12),
        dim=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_fedavg_is_convex_combination(self, n_updates, dim, seed):
        """The aggregate lies inside the per-coordinate hull of updates."""
        rng = np.random.default_rng(seed)
        updates = [
            ModelUpdate(
                device_id=f"d{i}", round_index=1, weights=rng.normal(size=dim),
                bias=float(rng.normal()), n_samples=int(rng.integers(1, 50)),
            )
            for i in range(n_updates)
        ]
        weights, bias = fedavg(updates)
        stacked = np.stack([u.weights for u in updates])
        assert np.all(weights >= stacked.min(axis=0) - 1e-12)
        assert np.all(weights <= stacked.max(axis=0) + 1e-12)
        biases = [u.bias for u in updates]
        assert min(biases) - 1e-12 <= bias <= max(biases) + 1e-12

    @given(
        dim=st.integers(min_value=1, max_value=256),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_model_serialization_round_trip(self, dim, seed):
        rng = np.random.default_rng(seed)
        model = LogisticRegressionModel(dim)
        model.set_params(rng.normal(size=dim), float(rng.normal()))
        restored = LogisticRegressionModel.deserialize(model.serialize())
        assert np.array_equal(restored.weights, model.weights)
        assert restored.bias == model.bias

    @given(
        n=st.integers(min_value=2, max_value=200),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_auc_invariant_under_monotone_transform(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, n)
        scores = rng.normal(size=n)
        direct = roc_auc(labels, scores)
        squashed = roc_auc(labels, 1.0 / (1.0 + np.exp(-scores)))
        assert direct == pytest.approx(squashed)


class TestAllocationProperties:
    @given(
        n=st.integers(min_value=1, max_value=200),
        slots=st.integers(min_value=1, max_value=20),
        phones=st.integers(min_value=1, max_value=20),
        alpha=st.floats(min_value=0.5, max_value=30.0),
        beta=st.floats(min_value=0.5, max_value=30.0),
        lam=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimum_bounded_by_pure_strategies(self, n, slots, phones, alpha, beta, lam):
        params = GradeAllocationParams(
            grade="G", n_devices=n, bundles=slots, units_per_device=1,
            n_phones=phones, alpha=alpha, beta=beta, lam=lam,
        )
        problem = AllocationProblem([params])
        optimal = solve_allocation(problem).total_time
        pure_logical = evaluate_allocation(problem, [n]).total_time
        pure_physical = evaluate_allocation(problem, [0]).total_time
        assert optimal <= pure_logical + 1e-9
        assert optimal <= pure_physical + 1e-9

    @given(
        n=st.integers(min_value=1, max_value=100),
        extra=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_phones_never_hurts(self, n, extra):
        def optimum(phones):
            params = GradeAllocationParams(
                grade="G", n_devices=n, bundles=4, units_per_device=1,
                n_phones=phones, alpha=10.0, beta=5.0, lam=20.0,
            )
            return solve_allocation(AllocationProblem([params])).total_time

        assert optimum(3 + extra) <= optimum(3) + 1e-9

    @given(n=st.integers(min_value=1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_makespan_weakly_increasing_in_devices(self, n):
        def optimum(devices):
            params = GradeAllocationParams(
                grade="G", n_devices=devices, bundles=6, units_per_device=2,
                n_phones=4, alpha=9.0, beta=6.0, lam=25.0,
            )
            return solve_allocation(AllocationProblem([params])).total_time

        assert optimum(n) <= optimum(n + 5) + 1e-9
