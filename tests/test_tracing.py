"""Tests for the tracing layer, exporters, profiler and their CLI flags.

The contracts proved here are the PR's acceptance criteria:

* recording is invisible — a traced run's report is byte-identical to
  the untraced one (the tracer never touches a random stream or the
  event queue);
* span trees are execution-order independent — the batched and legacy
  paths assemble byte-identical traces (stable ``(task, round,
  device)``-keyed span ids);
* the trace *reconciles* with the report — under a lossy channel the
  upload/drop spans sum exactly to the transport KPI totals;
* exports are well-formed (Chrome trace-event JSON, JSONL round-trip);
* the profiler patches and restores subsystem methods exactly.
"""

import json

import pytest

from repro.observability.export import (
    chrome_trace,
    read_spans_jsonl,
    spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.observability.profiler import PROFILE_POINTS, RunProfiler
from repro.observability.tracing import SPAN_KINDS, Span, Trace, Tracer
from repro.scenarios import ScenarioRunner, build_scenario
from repro.scenarios.__main__ import main as scenarios_main


def traced_run(name: str, scale: int = 60, seed: int = 1, batch: bool = True):
    """Run a library scenario with a tracer armed.

    Returns ``(runner, report, trace)`` — the runner gives tests access
    to the per-task :class:`TaskResult` ledger on the platform.
    """
    spec = build_scenario(name, scale=scale, seed=seed)
    runner = ScenarioRunner(spec, batch=batch, tracer=Tracer())
    report = runner.run()
    return runner, report, runner.trace()


# ----------------------------------------------------------------------
# span-tree integrity
# ----------------------------------------------------------------------
class TestTraceStructure:
    def test_lossy_uplink_span_tree(self):
        _, report, trace = traced_run("lossy_uplink")
        counts = trace.counts_by_kind()
        # Every task contributes its lifecycle triple.
        assert counts["task"] == report.total_tasks
        assert counts["queue_wait"] == report.total_tasks
        assert counts["dispatch"] == report.total_tasks
        assert counts["round"] >= 1
        assert counts["device_round"] >= 1
        # Only registered kinds appear, and ids are unique (Trace raises
        # on duplicates at construction).
        assert set(counts) <= set(SPAN_KINDS)
        ids = [s.span_id for s in trace]
        assert len(ids) == len(set(ids))

    def test_parents_exist_and_contain_children(self):
        _, _, trace = traced_run("lossy_uplink")
        by_id = {s.span_id: s for s in trace}
        for span in trace:
            if span.parent_id is None:
                assert span.kind == "task"
                continue
            parent = by_id[span.parent_id]
            # A child starts no earlier than its parent; uploads may end
            # after the device span (the channel delivers asynchronously)
            # but lifecycle/round/wave nesting is strict.
            assert span.start >= parent.start - 1e-9
            if span.kind in ("queue_wait", "dispatch", "round", "wave", "device_round"):
                assert span.end <= parent.end + 1e-9

    def test_spans_sorted_and_stable_ids(self):
        _, _, trace = traced_run("lossy_uplink")
        order = [(s.start, s.span_id) for s in trace]
        assert order == sorted(order)
        root = trace.of_kind("task")[0]
        assert root.span_id.startswith("t:")
        assert trace.children(root.span_id)

    def test_duplicate_span_id_rejected(self):
        span = Span("t:x", None, "x", "task", 0.0, 1.0, {})
        clone = Span("t:x", None, "x", "task", 0.0, 2.0, {})
        with pytest.raises(ValueError, match="duplicate span id"):
            Trace("bad", [span, clone])

    def test_trace_without_tracer_raises(self):
        spec = build_scenario("lossy_uplink", scale=60, seed=1)
        runner = ScenarioRunner(spec)
        with pytest.raises(RuntimeError, match="tracer"):
            runner.trace()


# ----------------------------------------------------------------------
# the differential contracts
# ----------------------------------------------------------------------
class TestTracingIsInvisible:
    @pytest.mark.parametrize("name", ["lossy_uplink", "flash_crowd"])
    def test_traced_report_byte_identical_to_untraced(self, name):
        spec = build_scenario(name, scale=60, seed=1)
        plain = ScenarioRunner(spec, batch=True).run()
        spec2 = build_scenario(name, scale=60, seed=1)
        traced = ScenarioRunner(spec2, batch=True, tracer=Tracer()).run()
        assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
            traced.to_dict(), sort_keys=True
        )

    @pytest.mark.parametrize("name", ["lossy_uplink", "flash_crowd"])
    def test_batched_and_legacy_traces_byte_identical(self, name):
        _, _, batched = traced_run(name, batch=True)
        _, _, legacy = traced_run(name, batch=False)
        assert batched.to_json() == legacy.to_json()


# ----------------------------------------------------------------------
# trace ↔ report reconciliation under loss
# ----------------------------------------------------------------------
class TestTransportReconciliation:
    def test_spans_sum_to_transport_kpis(self):
        runner, report, trace = traced_run("lossy_uplink", scale=120, seed=3)
        kpis = {
            key: sum(
                (result.transport or {}).get(key, 0)
                for result in runner.platform.results.values()
            )
            for key in (
                "uploads",
                "delivered",
                "retries",
                "duplicates",
                "abandoned",
                "late_drops",
                "duplicate_drops",
            )
        }
        uploads = trace.of_kind("upload")
        drops = trace.of_kind("ingest_drop")
        statuses = [s.attrs["status"] for s in uploads]
        reasons = [s.attrs["reason"] for s in drops]
        assert len(uploads) == kpis["uploads"]
        assert sum(s.attrs["retries"] for s in uploads) == kpis["retries"]
        assert statuses.count("abandoned") == kpis["abandoned"]
        assert statuses.count("late") + reasons.count("late") == kpis["late_drops"]
        assert reasons.count("duplicate") == kpis["duplicate_drops"]
        assert (
            sum(1 for s in uploads if s.attrs["status"] == "delivered" and s.attrs["duplicate"])
            == kpis["duplicates"]
        )
        # The lossy library scenario really exercises the machinery.
        assert kpis["retries"] > 0


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_chrome_trace_structure(self):
        _, _, trace = traced_run("lossy_uplink")
        doc = chrome_trace(trace)
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert len(events) > len(trace)  # spans + metadata events
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        for event in events:
            if event["ph"] == "M":
                assert event["name"] in ("process_name", "thread_name")
                continue
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
        # Timestamps are microseconds of simulated time.
        first_task = trace.of_kind("task")[0]
        named = [e for e in events if e["ph"] == "X" and e.get("args", {}).get("span_id") == first_task.span_id]
        if named:
            assert named[0]["ts"] == pytest.approx(first_task.start * 1e6)

    def test_chrome_trace_file_is_json(self, tmp_path):
        _, _, trace = traced_run("lossy_uplink")
        path = write_chrome_trace(trace, tmp_path / "trace.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == chrome_trace(trace)

    def test_jsonl_round_trip(self, tmp_path):
        _, _, trace = traced_run("lossy_uplink")
        path = write_spans_jsonl(trace, tmp_path / "spans.jsonl")
        rows = read_spans_jsonl(path)
        assert rows == [span.to_dict() for span in trace]
        assert len(spans_jsonl(trace).splitlines()) == len(trace)


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestRunProfiler:
    def test_attach_detach_restores_originals(self):
        import importlib

        originals = {}
        for module_name, class_name, method, _category in PROFILE_POINTS:
            cls = getattr(importlib.import_module(module_name), class_name)
            originals[(class_name, method)] = getattr(cls, method)
        profiler = RunProfiler().attach()
        for module_name, class_name, method, _category in PROFILE_POINTS:
            cls = getattr(importlib.import_module(module_name), class_name)
            assert getattr(cls, method) is not originals[(class_name, method)]
            assert hasattr(getattr(cls, method), "__profiled_original__")
        profiler.detach()
        for module_name, class_name, method, _category in PROFILE_POINTS:
            cls = getattr(importlib.import_module(module_name), class_name)
            assert getattr(cls, method) is originals[(class_name, method)]

    def test_double_attach_rejected(self):
        profiler = RunProfiler().attach()
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                profiler.attach()
        finally:
            profiler.detach()

    def test_profiled_run_accounts_subsystems(self):
        spec = build_scenario("lossy_uplink", scale=60, seed=1)
        with RunProfiler() as profiler:
            ScenarioRunner(spec, batch=True).run()
        rows = profiler.rows()
        categories = {row.category for row in rows}
        assert "kernel.step_batch" in categories
        for row in rows:
            assert row.calls > 0
            assert 0.0 <= row.self_s <= row.total_s + 1e-9
        table = profiler.table(wall_s=1.0)
        assert "kernel.step_batch" in table
        assert "accounted" in table

    def test_profiled_run_report_identical(self):
        spec = build_scenario("lossy_uplink", scale=60, seed=1)
        plain = ScenarioRunner(spec, batch=True).run()
        spec2 = build_scenario("lossy_uplink", scale=60, seed=1)
        with RunProfiler():
            profiled = ScenarioRunner(spec2, batch=True).run()
        assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
            profiled.to_dict(), sort_keys=True
        )

    def test_section_accumulates(self):
        profiler = RunProfiler()
        with profiler.section("report"):
            sum(range(1000))
        with profiler.section("report"):
            sum(range(1000))
        rows = {row.category: row for row in profiler.rows()}
        assert rows["section.report"].calls == 2
        assert rows["section.report"].total_s >= 0.0
        assert any(h["category"] == "section.report" for h in profiler.to_dict()["hotspots"])


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCli:
    def test_run_with_trace_profile_and_report(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "spans.jsonl"
        report_path = tmp_path / "report.json"
        code = scenarios_main(
            [
                "run",
                "lossy_uplink",
                "--scale", "60",
                "--seed", "1",
                "--trace-out", str(trace_path),
                "--trace-jsonl", str(jsonl_path),
                "--report-json", str(report_path),
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profiler hotspots" in out
        assert "trace:" in out
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert doc["traceEvents"]
        assert read_spans_jsonl(jsonl_path)
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["scenario"] == "lossy_uplink"

    def test_json_flag_is_report_json_alias(self, tmp_path):
        path = tmp_path / "report.json"
        code = scenarios_main(
            ["run", "lossy_uplink", "--scale", "60", "--json", str(path)]
        )
        assert code == 0
        assert json.loads(path.read_text(encoding="utf-8"))["scenario"] == "lossy_uplink"
