"""Differential suite: every numeric execution strategy is bit-identical.

The logical tier can run a numeric (ML-executing) plan four ways — the
legacy generator path, the batched wave-schedule path, and the sharded
tier with 1, 2 or 4 workers.  All of them must produce *bit-identical*
global weights, per-device outcomes (update weights/biases, sample
counts, payloads) and completion times for the same seed, across multiple
rounds with FedAvg feedback between them.  This is the contract that lets
the fast paths replace the generator path in seeded experiments.
"""

import numpy as np
import pytest

from repro.cloud import CallbackSink
from repro.cluster import (
    DeviceAssignment,
    GradeExecutionPlan,
    K8sCluster,
    LogicalCostModel,
    LogicalSimulation,
    NodeSpec,
    ResourceBundle,
    ShardedLogicalSimulation,
)
from repro.data.avazu import DeviceDataset
from repro.ml import fedavg, standard_fl_flow
from repro.simkernel import RandomStreams, Simulator

NODES = [NodeSpec(cpus=10, memory_gb=20)] * 4
COST = LogicalCostModel(alpha={"Std": 11.0, "Bulk": 7.0}, actor_startup=0.5, runner_setup=4.0)
FEATURE_DIM = 32
MODEL_BYTES = 4096
N_DEVICES = 24  # divides evenly by 1, 2 and 4 shards (8 actors -> 3 waves)
N_ACTORS = 8
N_ROUNDS = 3
SEED = 5


def make_numeric_plan(n_devices: int = N_DEVICES, n_actors: int = N_ACTORS) -> GradeExecutionPlan:
    rng = np.random.default_rng(99)
    assignments = []
    for i in range(n_devices):
        features = rng.integers(0, FEATURE_DIM, size=(12, 4)).astype(np.int32)
        labels = rng.integers(0, 2, size=12).astype(np.int8)
        assignments.append(
            DeviceAssignment(
                f"d{i:04d}", "Std", 12, dataset=DeviceDataset(f"d{i:04d}", features, labels)
            )
        )
    return GradeExecutionPlan(
        grade="Std",
        assignments=assignments,
        n_actors=n_actors,
        bundle=ResourceBundle(cpus=1, memory_gb=1),
        flow=standard_fl_flow(epochs=2, batch_size=8),
        feature_dim=FEATURE_DIM,
        numeric=True,
    )


def run_unsharded(batch: bool, n_rounds: int = N_ROUNDS, collect: bool = True):
    """Drive ``n_rounds`` with FedAvg feedback on one LogicalSimulation.

    Returns ``(per_round_outcomes, weights_history, round_results)`` where
    outcomes are in emission order.
    """
    sim = Simulator()
    logical = LogicalSimulation(
        sim, K8sCluster(NODES), COST, streams=RandomStreams(SEED), batch=batch
    )
    plan = make_numeric_plan()
    per_round, weights_history = [], []

    def driver():
        yield sim.process(logical.prepare([plan]))
        weights, bias = np.zeros(FEATURE_DIM), 0.0
        for round_index in range(1, n_rounds + 1):
            outcomes = []
            yield sim.process(
                logical.run_round(
                    round_index, weights, bias, MODEL_BYTES, CallbackSink(outcomes.append) if collect else None
                )
            )
            round_result = logical.rounds[-1]
            if not collect:
                outcomes = round_result.all_outcomes()
            per_round.append(outcomes)
            weights, bias = fedavg([o.update for o in outcomes])
            weights_history.append((weights, bias))

    sim.process(driver())
    sim.run(batch=batch)
    logical.teardown()
    return per_round, weights_history, logical.rounds


def run_sharded(n_shards: int, n_rounds: int = N_ROUNDS):
    return ShardedLogicalSimulation(NODES, COST, n_shards=n_shards, seed=SEED).run_rounds(
        [make_numeric_plan()],
        n_rounds=n_rounds,
        model_bytes=MODEL_BYTES,
        global_weights=np.zeros(FEATURE_DIM),
        global_bias=0.0,
        collect_outcomes=True,
    )


def assert_outcomes_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for a, b in zip(reference, candidate):
        assert a.device_id == b.device_id
        assert a.finished_at == b.finished_at  # bit-identical floats
        assert a.payload_bytes == b.payload_bytes
        assert a.n_samples == b.n_samples
        assert a.update is not None and b.update is not None
        assert a.update.weights.tobytes() == b.update.weights.tobytes()
        assert np.float64(a.update.bias).tobytes() == np.float64(b.update.bias).tobytes()


@pytest.fixture(scope="module")
def generator_reference():
    return run_unsharded(batch=False)


class TestBatchedNumericEquivalence:
    def test_batched_path_bit_identical(self, generator_reference):
        ref_rounds, ref_weights, ref_results = generator_reference
        bat_rounds, bat_weights, bat_results = run_unsharded(batch=True)
        for ref, bat in zip(ref_rounds, bat_rounds):
            assert_outcomes_identical(ref, bat)
        for (rw, rb), (bw, bb) in zip(ref_weights, bat_weights):
            assert rw.tobytes() == bw.tobytes()
            assert np.float64(rb).tobytes() == np.float64(bb).tobytes()
        for ref, bat in zip(ref_results, bat_results):
            assert ref.started_at == bat.started_at
            assert ref.finished_at == bat.finished_at

    def test_columnar_blocks_materialize_identically(self, generator_reference):
        ref_rounds, ref_weights, _ = generator_reference
        col_rounds, col_weights, col_results = run_unsharded(batch=True, collect=False)
        assert all(result.columnar and not result.outcomes for result in col_results)
        for ref, col in zip(ref_rounds, col_rounds):
            assert_outcomes_identical(ref, col)
        for (rw, rb), (cw, cb) in zip(ref_weights, col_weights):
            assert rw.tobytes() == cw.tobytes()
            assert rb == cb

    def test_columnar_fedavg_inputs_match_updates(self):
        _, _, col_results = run_unsharded(batch=True, collect=False, n_rounds=1)
        weights, biases, n_samples = col_results[0].fedavg_inputs()
        materialized = col_results[0].all_outcomes()
        assert weights.shape == (N_DEVICES, FEATURE_DIM)
        for row, outcome in enumerate(materialized):
            assert weights[row].tobytes() == outcome.update.weights.tobytes()
            assert float(biases[row]) == outcome.update.bias
            assert int(n_samples[row]) == outcome.n_samples


class TestShardedNumericEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_bit_identical_across_rounds(self, generator_reference, n_shards):
        ref_rounds, ref_weights, ref_results = generator_reference
        result = run_sharded(n_shards)
        assert len(result.rounds) == N_ROUNDS
        assert len(result.weights_history) == N_ROUNDS
        for round_pos in range(N_ROUNDS):
            reference = sorted(
                ref_rounds[round_pos], key=lambda o: (o.finished_at, o.device_id)
            )
            assert_outcomes_identical(reference, result.rounds[round_pos].outcomes)
            rw, rb = ref_weights[round_pos]
            sw, sb = result.weights_history[round_pos]
            assert rw.tobytes() == sw.tobytes()
            assert np.float64(rb).tobytes() == np.float64(sb).tobytes()
            assert result.rounds[round_pos].started_at == ref_results[round_pos].started_at
            assert result.rounds[round_pos].finished_at == ref_results[round_pos].finished_at
        assert result.global_weights.tobytes() == ref_weights[-1][0].tobytes()

    def test_shard_counts_agree_with_each_other(self):
        metrics = {
            n_shards: run_sharded(n_shards, n_rounds=2).metrics() for n_shards in (1, 2, 4)
        }
        assert metrics[1] == metrics[2] == metrics[4]


class TestMixedPlanRound:
    """Regression: the batched/pooled choice is made per plan, not per round.

    One numeric plan and one time-only plan share a round; the numeric
    plan must flow through the vectorized wave path (producing updates)
    while the time-only plan keeps its pooled-deadline columnar path, on
    both the unsharded and sharded tiers.
    """

    @staticmethod
    def _mixed_plans():
        numeric = make_numeric_plan(n_devices=8, n_actors=4)
        time_only_assignments = [
            DeviceAssignment(f"t{i:04d}", "Bulk", 10) for i in range(12)
        ]
        time_only = GradeExecutionPlan(
            grade="Bulk",
            assignments=time_only_assignments,
            n_actors=4,
            bundle=ResourceBundle(cpus=1, memory_gb=1),
            flow=standard_fl_flow(),
            numeric=False,
        )
        return [numeric, time_only]

    def _run_unsharded(self, batch: bool):
        sim = Simulator()
        logical = LogicalSimulation(
            sim, K8sCluster(NODES), COST, streams=RandomStreams(SEED), batch=batch
        )

        def driver():
            yield sim.process(logical.prepare(self._mixed_plans()))
            yield sim.process(
                logical.run_round(1, np.zeros(FEATURE_DIM), 0.0, MODEL_BYTES, None)
            )

        sim.process(driver())
        sim.run(batch=batch)
        logical.teardown()
        return logical.rounds[0]

    def test_unsharded_mixed_round_matches_generator(self):
        reference = self._run_unsharded(batch=False)
        batched = self._run_unsharded(batch=True)
        assert batched.n_devices == reference.n_devices == 20
        # Both plans went columnar, and only the numeric one carries updates.
        assert len(batched.columnar) == 2
        update_flags = {
            block.plan.numeric: block.update_weights is not None
            for block in batched.columnar
        }
        assert update_flags == {True: True, False: False}
        ref_sorted = sorted(
            reference.all_outcomes(), key=lambda o: (o.finished_at, o.device_id)
        )
        bat_sorted = sorted(
            batched.all_outcomes(), key=lambda o: (o.finished_at, o.device_id)
        )
        for a, b in zip(ref_sorted, bat_sorted):
            assert a.device_id == b.device_id
            assert a.finished_at == b.finished_at
            assert (a.update is None) == (b.update is None)
            if a.update is not None:
                assert a.update.weights.tobytes() == b.update.weights.tobytes()
        assert reference.finished_at == batched.finished_at

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_sharded_mixed_round(self, n_shards):
        reference = self._run_unsharded(batch=False)
        result = ShardedLogicalSimulation(NODES, COST, n_shards=n_shards, seed=SEED).run_rounds(
            self._mixed_plans(),
            n_rounds=1,
            model_bytes=MODEL_BYTES,
            global_weights=np.zeros(FEATURE_DIM),
            collect_outcomes=True,
        )
        merged = result.rounds[0]
        assert merged.n_devices == 20
        # The numeric plan's updates fed the merged global model.
        assert len(result.weights_history) == 1
        numeric_updates = [o.update for o in merged.outcomes if o.update is not None]
        assert len(numeric_updates) == 8
        expected_weights, expected_bias = fedavg(numeric_updates)
        assert result.global_weights.tobytes() == expected_weights.tobytes()
        assert result.global_bias == expected_bias
        ref_sorted = sorted(
            reference.all_outcomes(), key=lambda o: (o.finished_at, o.device_id)
        )
        for a, b in zip(ref_sorted, merged.outcomes):
            assert a.device_id == b.device_id
            assert a.finished_at == b.finished_at
