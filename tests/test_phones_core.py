"""Unit tests for phone specs, battery, APK model and the virtual phone."""

import pytest

from repro.phones import ApkStage, BatteryModel, PhysicalCostModel, TrainingApk, VirtualPhone
from repro.phones.specs import DEFAULT_LOCAL_FLEET, DEFAULT_MSP_FLEET, PhoneSpec, build_fleet
from repro.simkernel import RandomStreams, Simulator


class TestSpecs:
    def test_default_local_fleet_matches_paper(self):
        grades = [spec.grade for spec in DEFAULT_LOCAL_FLEET]
        assert len(DEFAULT_LOCAL_FLEET) == 10
        assert grades.count("High") == 4
        assert grades.count("Low") == 6
        # Paper: High has more than 8 GB, Low less than 8 GB.
        assert all(s.memory_gb > 8 for s in DEFAULT_LOCAL_FLEET if s.grade == "High")
        assert all(s.memory_gb < 8 for s in DEFAULT_LOCAL_FLEET if s.grade == "Low")

    def test_default_msp_fleet_matches_paper(self):
        grades = [spec.grade for spec in DEFAULT_MSP_FLEET]
        assert len(DEFAULT_MSP_FLEET) == 20
        assert grades.count("High") == 13
        assert grades.count("Low") == 7

    def test_stage_currents_default_by_grade(self):
        high = DEFAULT_LOCAL_FLEET[0]
        low = DEFAULT_LOCAL_FLEET[5]
        assert high.stage_current(ApkStage.TRAINING) < low.stage_current(ApkStage.TRAINING)

    def test_build_fleet(self):
        fleet = build_fleet(3, 2)
        assert len(fleet) == 5
        assert sum(1 for s in fleet if s.grade == "High") == 3

    def test_build_fleet_validation(self):
        with pytest.raises(ValueError):
            build_fleet(-1, 0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PhoneSpec("x", "High", 0, 1.0, 4.0, False, 4000)
        with pytest.raises(ValueError):
            PhoneSpec("x", "High", 8, 1.0, 4.0, False, -5)


class TestBatteryModel:
    def test_accumulate_and_soc(self):
        battery = BatteryModel(capacity_mah=1000)
        consumed = battery.accumulate(current_ma=100, duration_s=3600)
        assert consumed == pytest.approx(100.0)
        assert battery.state_of_charge == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryModel(capacity_mah=0)
        battery = BatteryModel(1000)
        with pytest.raises(ValueError):
            battery.accumulate(-1, 10)
        with pytest.raises(ValueError):
            battery.accumulate(1, -10)

    def test_current_now_is_negative_microamps(self):
        battery = BatteryModel(1000, rng=RandomStreams(0).get("b"))
        reading = battery.current_now_ua(mean_current_ma=50)
        assert reading < 0
        assert abs(reading) == pytest.approx(50_000, rel=0.3)

    def test_voltage_sags_with_discharge(self):
        battery = BatteryModel(1000, nominal_voltage_mv=3850, rng=RandomStreams(0).get("b"))
        fresh = battery.voltage_now_uv()
        battery.accumulate(1000, 3600)  # fully drain
        drained = battery.voltage_now_uv()
        assert drained < fresh
        assert fresh == pytest.approx(3_850_000, rel=0.01)


class TestTrainingApk:
    def test_component(self):
        apk = TrainingApk()
        assert apk.component == "com.simdc.train/.MainActivity"

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingApk(package="bad/name")
        with pytest.raises(ValueError):
            TrainingApk(size_bytes=0)


class TestPhysicalCostModel:
    def test_table1_durations(self):
        model = PhysicalCostModel()
        assert model.training_duration("High") == pytest.approx(16.2)
        assert model.training_duration("Low") == pytest.approx(21.6)
        # Table I: 0.27 and 0.36 minutes.
        assert model.training_duration("High") / 60 == pytest.approx(0.27)
        assert model.training_duration("Low") / 60 == pytest.approx(0.36)

    def test_tier_duration_formula(self):
        model = PhysicalCostModel(beta={"High": 10.0}, framework_startup={"High": 45.0})
        # ceil(25/10) * 10 + 45
        assert model.tier_duration("High", 25, 10) == pytest.approx(75.0)
        assert model.tier_duration("High", 0, 10) == 0.0

    def test_unknown_grade(self):
        with pytest.raises(KeyError):
            PhysicalCostModel().training_duration("Ultra")
        with pytest.raises(KeyError):
            PhysicalCostModel().startup_duration("Ultra")

    def test_validation(self):
        with pytest.raises(ValueError):
            PhysicalCostModel(beta={})
        with pytest.raises(ValueError):
            PhysicalCostModel(beta={"High": 0.0})
        with pytest.raises(ValueError):
            PhysicalCostModel(stage_window=0)


def make_phone(grade="High", seed=0):
    sim = Simulator()
    spec = next(s for s in DEFAULT_LOCAL_FLEET if s.grade == grade)
    phone = VirtualPhone(sim, "test-phone", spec, streams=RandomStreams(seed))
    return sim, phone


class TestVirtualPhone:
    def test_lifecycle_stages(self):
        sim, phone = make_phone()
        apk = TrainingApk()
        phone.install_apk(apk)
        phone.clear_background()
        assert phone.stage is ApkStage.NO_APK
        pid = phone.launch_apk(apk.package)
        assert phone.stage is ApkStage.APK_LAUNCH
        assert pid > 0
        signal = phone.start_training(10.0, upload_bytes=1000)
        assert phone.stage is ApkStage.TRAINING
        sim.run()
        assert signal.fired
        assert phone.stage is ApkStage.POST_TRAINING
        phone.stop_apk()
        assert phone.stage is ApkStage.APK_CLOSURE
        assert phone.running_pid is None

    def test_launch_without_install_rejected(self):
        _, phone = make_phone()
        with pytest.raises(RuntimeError):
            phone.launch_apk("com.simdc.train")

    def test_training_without_apk_rejected(self):
        _, phone = make_phone()
        with pytest.raises(RuntimeError):
            phone.start_training(10.0, 100)

    def test_energy_accounting_matches_currents(self):
        sim, phone = make_phone()
        apk = TrainingApk()
        phone.install_apk(apk)
        phone.clear_background()
        sim.schedule(15.0, phone.launch_apk, apk.package)
        sim.run()
        expected = phone.spec.stage_current(ApkStage.NO_APK) * 15.0 / 3600.0
        assert phone.exact_stage_energy(ApkStage.NO_APK) == pytest.approx(expected)

    def test_high_grade_training_cheaper_than_low(self):
        """Table I: High devices use less energy per training stage."""
        energies = {}
        for grade, duration in (("High", 16.2), ("Low", 21.6)):
            sim, phone = make_phone(grade)
            apk = TrainingApk()
            phone.install_apk(apk)
            phone.clear_background()
            phone.launch_apk(apk.package)
            phone.start_training(duration, upload_bytes=33000)
            sim.run()
            phone.set_idle()
            energies[grade] = phone.exact_stage_energy(ApkStage.TRAINING)
        assert energies["High"] < energies["Low"]

    def test_cpu_trace_shape_during_training(self):
        sim, phone = make_phone()
        apk = TrainingApk()
        phone.install_apk(apk)
        phone.clear_background()
        pid = phone.launch_apk(apk.package)
        phone.start_training(60.0, upload_bytes=1000)
        readings = []
        for t in range(0, 60, 2):
            sim.run(until=float(t))
            readings.append(phone.cpu_percent(pid))
        assert all(0.0 <= r <= 15.0 for r in readings)
        assert max(readings) > 8.0  # oscillation reaches the busy peaks
        assert min(readings) < 8.0

    def test_memory_ramps_during_training(self):
        sim, phone = make_phone()
        apk = TrainingApk()
        phone.install_apk(apk)
        phone.clear_background()
        phone.launch_apk(apk.package)
        phone.start_training(30.0, upload_bytes=1000)
        sim.run(until=1.0)
        early = phone.memory_pss_kb(apk.package)
        sim.run(until=25.0)
        late = phone.memory_pss_kb(apk.package)
        assert late > early
        assert late < 60 * 1024  # stays under ~60 MB (Fig. 5 scale)

    def test_net_counters_land_after_training(self):
        sim, phone = make_phone()
        apk = TrainingApk()
        phone.install_apk(apk)
        phone.clear_background()
        pid = phone.launch_apk(apk.package)
        phone.start_training(10.0, upload_bytes=32840)
        sim.run(until=0.5)
        rx0, tx0 = phone.net_dev_bytes(pid)
        sim.run()
        rx1, tx1 = phone.net_dev_bytes(pid)
        total_delta = (rx1 + tx1) - (rx0 + tx0)
        # Table I: ~33.10 KB of communication during the training stage.
        assert total_delta == pytest.approx(33.1 * 1024, rel=0.05)

    def test_wrong_pid_reads_zero(self):
        sim, phone = make_phone()
        apk = TrainingApk()
        phone.install_apk(apk)
        phone.clear_background()
        pid = phone.launch_apk(apk.package)
        assert phone.cpu_percent(pid + 1) == 0.0
        assert phone.net_dev_bytes(pid + 1) == (0, 0)
        assert phone.memory_pss_kb("other.package") == 0

    def test_pgrep(self):
        sim, phone = make_phone()
        apk = TrainingApk()
        phone.install_apk(apk)
        assert phone.pgrep(apk.package) is None
        pid = phone.launch_apk(apk.package)
        assert phone.pgrep(apk.package) == pid
        assert phone.pgrep("com.simdc") == pid  # substring match, like pgrep -f
