"""Failure-injection tests: the platform under broken inputs and crashes.

A production scheduler's contract is what happens when things go wrong:
resources must come back, sibling tasks must be unaffected, and failures
must surface as FAILED results rather than hangs.
"""


from repro import (
    GradeRequirement,
    PlatformConfig,
    ResourceBundle,
    SimDC,
    TaskSpec,
    TaskState,
)
from repro.cluster import NodeSpec
from repro.ml import Operator, OperatorFlow, standard_fl_flow
from repro.ml.operators import DownloadModelOp, TrainOp, UploadUpdateOp


class ExplodingOperator(Operator):
    """Deterministically crashes a chosen device's flow."""

    name = "explode"
    work = 0.1

    def __init__(self, victim_device: str) -> None:
        self.victim_device = victim_device

    def apply(self, context) -> None:
        if context.device_id == self.victim_device:
            raise RuntimeError(f"operator crashed on {context.device_id}")


def small_platform():
    return SimDC(PlatformConfig(seed=0, cluster_nodes=[NodeSpec(20, 30)] * 2))


def task_with_flow(flow, name="crashy", n_devices=4, rounds=1):
    return TaskSpec(
        name=name,
        grades=[
            GradeRequirement(
                grade="High", n_devices=n_devices, bundles=8, n_phones=1,
                device_bundle=ResourceBundle(cpus=2, memory_gb=2),
            )
        ],
        rounds=rounds,
        flow=flow,
        feature_dim=64,
        records_per_device=8,
    )


class TestOperatorCrash:
    def test_crashing_task_marked_failed_and_resources_released(self):
        platform = small_platform()
        flow = OperatorFlow(
            [DownloadModelOp(), ExplodingOperator("dev-000001"), TrainOp(epochs=1), UploadUpdateOp()]
        )
        spec = task_with_flow(flow)
        platform.submit(spec)
        platform.sim.strict = False  # let the supervisor absorb the crash
        platform.run_until_idle(max_time=1e7)
        result = platform.result(spec.task_id)
        assert result.state is TaskState.FAILED
        assert "operator crashed" in result.error
        # The grant and phones must be back in the pool.
        assert platform.resource_manager.active_grants == 0
        assert len(platform._busy_registry) == 0

    def test_sibling_task_survives_a_crash(self):
        platform = small_platform()
        platform.sim.strict = False
        crashing = task_with_flow(
            OperatorFlow([DownloadModelOp(), ExplodingOperator("dev-000000"), UploadUpdateOp()]),
            name="crashy",
        )
        healthy = task_with_flow(standard_fl_flow(epochs=1), name="healthy")
        platform.submit(crashing)
        platform.submit(healthy)
        platform.run_until_idle(max_time=1e7)
        assert platform.result(crashing.task_id).state is TaskState.FAILED
        assert platform.result(healthy.task_id).state is TaskState.COMPLETED

    def test_queued_task_runs_after_predecessor_crashes(self):
        """Freed capacity from a failed task must unblock the queue."""
        platform = small_platform()  # 40 bundles
        platform.sim.strict = False
        big_crashing = TaskSpec(
            name="big-crashy",
            priority=5,
            grades=[
                GradeRequirement(
                    grade="High", n_devices=4, bundles=30, n_phones=1,
                    device_bundle=ResourceBundle(cpus=2, memory_gb=2),
                )
            ],
            flow=OperatorFlow([DownloadModelOp(), ExplodingOperator("dev-000000")]),
            feature_dim=64,
            records_per_device=8,
        )
        queued = TaskSpec(
            name="queued",
            priority=1,
            grades=[
                GradeRequirement(
                    grade="High", n_devices=2, bundles=30, n_phones=1,
                    device_bundle=ResourceBundle(cpus=2, memory_gb=2),
                )
            ],
            flow=standard_fl_flow(epochs=1),
            feature_dim=64,
            records_per_device=8,
        )
        platform.submit(big_crashing)
        platform.submit(queued)
        platform.run_until_idle(max_time=1e7)
        assert platform.result(big_crashing.task_id).state is TaskState.FAILED
        assert platform.result(queued.task_id).state is TaskState.COMPLETED


class TestImpossibleRequests:
    def test_task_larger_than_platform_never_schedules(self):
        platform = small_platform()
        oversized = TaskSpec(
            name="oversized",
            grades=[
                GradeRequirement(
                    grade="High", n_devices=10, bundles=4000, n_phones=0,
                    device_bundle=ResourceBundle(cpus=1, memory_gb=1),
                )
            ],
            feature_dim=64,
        )
        platform.submit(oversized)
        platform.run(until=200.0)
        # Still queued: the scheduler keeps skipping it but must not crash.
        assert oversized.state is TaskState.QUEUED
        assert platform.task_manager.active_tasks == 0

    def test_unknown_grade_fails_cleanly(self):
        platform = small_platform()
        platform.sim.strict = False
        spec = TaskSpec(
            name="bad-grade",
            grades=[
                GradeRequirement(
                    grade="Quantum", n_devices=2, bundles=4, n_phones=0,
                    device_bundle=ResourceBundle(cpus=1, memory_gb=1),
                )
            ],
            feature_dim=64,
        )
        platform.submit(spec)
        platform.run_until_idle(max_time=1e7)
        result = platform.result(spec.task_id)
        assert result.state is TaskState.FAILED
        assert "Quantum" in result.error
        assert platform.resource_manager.active_grants == 0

    def test_phone_shortage_blocks_at_freeze_not_midway(self):
        platform = small_platform()  # 17 High phones exist (4 local + 13 MSP)
        spec = TaskSpec(
            name="phone-hungry",
            grades=[
                GradeRequirement(
                    grade="High", n_devices=4, bundles=4, n_phones=18,
                    device_bundle=ResourceBundle(cpus=1, memory_gb=1),
                )
            ],
            feature_dim=64,
        )
        platform.submit(spec)
        platform.run(until=100.0)
        assert spec.state is TaskState.QUEUED  # never started, nothing leaked
        assert platform.resource_manager.active_grants == 0


class TestDeterminismUnderFailure:
    def test_failed_runs_reproducible(self):
        def run_once():
            platform = small_platform()
            platform.sim.strict = False
            spec = task_with_flow(
                OperatorFlow([DownloadModelOp(), ExplodingOperator("dev-000002")]),
            )
            platform.submit(spec)
            platform.run_until_idle(max_time=1e7)
            result = platform.result(spec.task_id)
            return (result.state, result.finished_at, result.error)

        assert run_once() == run_once()
