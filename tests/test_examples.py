"""Smoke tests for every script in examples/ — they must not silently rot.

Each example's ``main`` accepts scale parameters whose defaults reproduce
the full demo; the tests run tiny configurations of the same code paths
and assert on the printed teaching points, so a platform change that
breaks an example fails CI instead of the next reader.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(scope="module", autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def _load(name):
    module = importlib.import_module(name)
    return importlib.reload(module)  # isolate per-test module state


def test_every_example_is_covered():
    scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    covered = {
        "quickstart",
        "global_traffic_replay",
        "dropout_robustness_study",
        "recommendation_ab_campaign",
    }
    assert scripts == covered, f"new example scripts need a smoke test: {scripts - covered}"


def test_quickstart(capsys):
    _load("quickstart").main(n_devices=6, rounds=1, feature_dim=32)
    out = capsys.readouterr().out
    assert "COMPLETED" in out
    assert "round 1:" in out and "accuracy=" in out
    assert "benchmarking phones sampled" in out


def test_global_traffic_replay(capsys):
    _load("global_traffic_replay").main(n_devices=2_000, window_s=240.0)
    out = capsys.readouterr().out
    assert "devices: 2000" in out
    assert "aggregations triggered:" in out
    assert "peak hour" in out


def test_dropout_robustness_study(capsys):
    _load("dropout_robustness_study").main(n_devices=16, rounds=2, feature_dim=32)
    out = capsys.readouterr().out
    assert "Dropout robustness" in out
    assert "iid" in out and "skewed" in out
    assert "timed aggregation is safe to ship" in out


def test_recommendation_ab_campaign(capsys):
    module = _load("recommendation_ab_campaign")
    module.main(device_scale=0.1, feature_dim=32)
    out = capsys.readouterr().out
    assert "prod-ctr-refresh" in out and "exp-ranker-ab" in out
    assert "production entered the cluster first" in out


def test_campaign_scenario_spec_round_trips():
    """The ported example really is plain data: dict -> spec -> dict."""
    from repro.scenarios import ScenarioSpec

    module = _load("recommendation_ab_campaign")
    spec = module.campaign_scenario(device_scale=0.1, feature_dim=32)
    assert ScenarioSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
