"""Property-based tests for the vectorized TimeoutPool.

Hypothesis generates random interleavings of ``add`` / ``add_sequence`` /
``cancel`` registrations (with deliberately colliding deadlines, plus a
compaction threshold low enough to trigger mid-run) and checks the pool's
fire order and counts against a trivial pure-Python reference model of
the documented semantics: entries fire at their deadline, sequence chunks
before singletons, each group in insertion order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Simulator, TimeoutPool

#: Singleton registration: deadline on an integer grid so collisions with
#: sequences and other singletons are common.
singleton_ops = st.tuples(st.just("single"), st.integers(min_value=0, max_value=12))

#: Sequence registration: start time plus non-negative increments (zeros
#: keep several entries on the same timestamp inside one chunk).
sequence_ops = st.tuples(
    st.just("seq"),
    st.integers(min_value=0, max_value=12),
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=6),
)

op_lists = st.lists(st.one_of(singleton_ops, sequence_ops), min_size=1, max_size=25)

#: For each singleton (by registration order), an optional cancellation
#: time on the half-integer grid — strictly between drain timestamps, so
#: cancel-vs-fire ordering is never ambiguous.
cancel_plans = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=12)), max_size=25
)


def build_reference(ops, cancel_plan):
    """Predict the fire log [(time, tag)] from the documented semantics."""
    singles = []  # (time, op_index, cancel_time)
    chunks = []  # (times, op_index)
    singleton_count = 0
    for op_index, op in enumerate(ops):
        if op[0] == "single":
            cancel_at = None
            if singleton_count < len(cancel_plan) and cancel_plan[singleton_count] is not None:
                cancel_at = cancel_plan[singleton_count] + 0.5
            singles.append((float(op[1]), op_index, cancel_at))
            singleton_count += 1
        else:
            _, start, increments = op
            times, current = [], float(start)
            for increment in increments:
                current += increment
                times.append(current)
            chunks.append((times, op_index))

    timestamps = sorted(
        {t for t, _, _ in singles}
        | {t for times, _ in chunks for t in times}
    )
    log = []
    for now in timestamps:
        # 1. sequence slices, in chunk insertion order.
        for times, op_index in chunks:
            due = [i for i, t in enumerate(times) if t == now]
            for position in due:
                log.append((now, ("seq", op_index, position)))
        # 2. singletons in insertion order, unless cancelled earlier.
        for time, op_index, cancel_at in singles:
            if time == now and (cancel_at is None or cancel_at > time):
                log.append((now, ("single", op_index)))
    return log, singles


@given(ops=op_lists, cancel_plan=cancel_plans)
@settings(max_examples=120, deadline=None)
def test_fire_order_and_counts_match_reference_model(ops, cancel_plan):
    sim = Simulator()
    pool = TimeoutPool(sim, name="under-test")
    pool._COMPACT_THRESHOLD = 8  # exercise compaction on small runs

    log = []
    handles = []
    singleton_count = 0
    for op_index, op in enumerate(ops):
        if op[0] == "single":
            handle = pool.add_at(
                float(op[1]), lambda t=op_index: log.append((sim.now, ("single", t)))
            )
            cancel_slot = singleton_count
            if cancel_slot < len(cancel_plan) and cancel_plan[cancel_slot] is not None:
                sim.schedule_at(cancel_plan[cancel_slot] + 0.5, handle.cancel)
            handles.append((handle, op_index))
            singleton_count += 1
        else:
            _, start, increments = op
            times, current = [], float(start)
            for increment in increments:
                current += increment
                times.append(current)

            chunk_times = tuple(times)

            def fire(lo, hi, t, op_index=op_index, chunk_times=chunk_times):
                for position in range(lo, hi):
                    assert chunk_times[position] == t  # slice really is due now
                    log.append((t, ("seq", op_index, position)))

            pool.add_sequence(np.array(times), fire)

    sim.run()

    expected_log, singles = build_reference(ops, cancel_plan)
    assert log == expected_log
    assert pool.pending == 0

    # Handle terminal states agree with the model.
    expected_states = {
        op_index: (cancel_at is None or cancel_at > time)
        for time, op_index, cancel_at in singles
    }
    for handle, op_index in handles:
        assert handle.fired == expected_states[op_index]
        assert handle.cancelled == (not expected_states[op_index])


@given(
    ops=op_lists,
    cancel_plan=cancel_plans,
    batch=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_batch_stepping_is_equivalent(ops, cancel_plan, batch):
    """The fire log is identical under step() and step_batch() draining."""

    def run(batch_mode):
        sim = Simulator()
        pool = TimeoutPool(sim, name="under-test")
        pool._COMPACT_THRESHOLD = 8
        log = []
        singleton_count = 0
        for op_index, op in enumerate(ops):
            if op[0] == "single":
                handle = pool.add_at(
                    float(op[1]), lambda t=op_index: log.append((sim.now, ("single", t)))
                )
                if (
                    singleton_count < len(cancel_plan)
                    and cancel_plan[singleton_count] is not None
                ):
                    sim.schedule_at(cancel_plan[singleton_count] + 0.5, handle.cancel)
                singleton_count += 1
            else:
                _, start, increments = op
                times, current = [], float(start)
                for increment in increments:
                    current += increment
                    times.append(current)
                pool.add_sequence(
                    np.array(times),
                    lambda lo, hi, t, op_index=op_index: log.extend(
                        (t, ("seq", op_index, position)) for position in range(lo, hi)
                    ),
                )
        sim.run(batch=batch_mode)
        return log

    assert run(batch) == run(not batch)


class TestRecurringTimeout:
    def test_tick_schedule_accumulates_like_a_generator_loop(self):
        # A recurring tick must land on the same float timestamps as a
        # process looping over `yield Timeout(interval)` (now + delay
        # accumulation, NOT first + k * interval).
        interval = 0.1  # not exactly representable -> accumulation matters
        sim = Simulator()
        pool = TimeoutPool(sim, name="ticker")
        ticks = []
        handle = pool.add_recurring(interval, lambda: ticks.append(sim.now), first_at=0.0)
        sim.schedule_at(2.0, handle.cancel)
        sim.run()

        reference_sim = Simulator()
        reference = []

        def loop():
            from repro.simkernel import Timeout

            while reference_sim.now <= 2.0:
                reference.append(reference_sim.now)
                yield Timeout(interval)

        reference_sim.process(loop())
        reference_sim.run()
        assert ticks == reference[: len(ticks)]
        assert len(ticks) >= 20

    def test_cancel_from_inside_callback(self):
        sim = Simulator()
        pool = TimeoutPool(sim, name="ticker")
        fired = []
        handle = pool.add_recurring(1.0, lambda: (fired.append(sim.now), fired and len(fired) >= 3 and handle.cancel()))
        sim.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert handle.cancelled
        assert pool.pending == 0

    def test_default_first_fire_is_one_interval_out(self):
        sim = Simulator()
        pool = TimeoutPool(sim, name="ticker")
        fired = []
        handle = pool.add_recurring(2.0, lambda: fired.append(sim.now))
        sim.run(until=5.0)
        handle.cancel()
        assert fired == [2.0, 4.0]

    def test_invalid_interval_rejected(self):
        import pytest

        sim = Simulator()
        pool = TimeoutPool(sim, name="ticker")
        with pytest.raises(ValueError):
            pool.add_recurring(0.0, lambda: None)
