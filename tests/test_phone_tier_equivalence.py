"""Differential suite: the batched phone tier is bit-identical to legacy.

PhoneMgr can run a round two ways — the legacy path (one generator + three
heap events per emulated device, one 1 Hz sampler process per benchmarking
phone, ADB string round-trips per sample) and the batched path (per-phone
cumsum wave schedules in a TimeoutPool, one shared sampler ticker, direct
sensor sampling).  Both must produce *bit-identical* simulations: outcome
streams (ids, payloads, model updates, emission order), completion times,
benchmark sample series, Table-I stage summaries, and per-phone physical
state (battery accounts, WLAN counters, session counts) — across multiple
rounds, numeric and time-only plans, mixed grades and MSP control latency.
"""

import numpy as np
import pytest

from repro.cloud import CallbackSink
from repro.cluster.actor import DeviceAssignment
from repro.data import SyntheticAvazu
from repro.ml import standard_fl_flow
from repro.ml.operators import OperatorFlow, UploadUpdateOp
from repro.phones import (
    MobileServicePlatform,
    PhoneAssignment,
    PhoneMgr,
    PhysicalCostModel,
    SimulatedAdb,
    VirtualPhone,
    build_fleet,
)
from repro.phones.specs import DEFAULT_MSP_FLEET
from repro.simkernel import RandomStreams, Simulator, Timeout

SEED = 7
FEATURE_DIM = 32
MODEL_BYTES = FEATURE_DIM * 8 + 8 + 64


def build_rig(batch: bool, n_phones: int, seed: int = SEED, poll: float = 1.0,
              window: float = 15.0, msp: bool = False):
    sim = Simulator()
    adb = SimulatedAdb()
    streams = RandomStreams(seed)
    phones = []
    if msp:
        platform = MobileServicePlatform(
            sim, adb, DEFAULT_MSP_FLEET[:n_phones], streams=streams, control_latency=0.8
        )
        phones = platform.provision()
    else:
        for i, spec in enumerate(build_fleet(n_phones, n_phones)):
            phone = VirtualPhone(sim, f"ph-{i:03d}", spec, streams=streams)
            adb.register(phone)
            phones.append(phone)
    samples = []
    cost = PhysicalCostModel(
        stage_window=window, msp_control_latency=0.8 if msp else 0.0
    )
    mgr = PhoneMgr(
        sim, adb, phones, cost_model=cost, streams=streams, batch=batch,
        poll_interval=poll, on_sample=samples.append,
    )
    return sim, mgr, phones, samples


def time_only_plan(grade: str, n_devices: int, n_phones: int, n_bench: int) -> PhoneAssignment:
    return PhoneAssignment(
        grade=grade,
        # Varying n_samples -> varying push durations, so waves de-sync and
        # the cumsum chains are exercised per phone, not per plan.
        assignments=[DeviceAssignment(f"{grade}-d{i}", grade, 10 + (i % 7)) for i in range(n_devices)],
        benchmarking=[DeviceAssignment(f"{grade}-b{i}", grade, 10) for i in range(n_bench)],
        n_phones=n_phones,
        flow=standard_fl_flow(),
        numeric=False,
    )


def numeric_plan(grade: str, n_devices: int, n_phones: int, n_bench: int, seed: int = 3) -> PhoneAssignment:
    data = SyntheticAvazu(
        n_devices=n_devices + n_bench, records_per_device=9, feature_dim=FEATURE_DIM, seed=seed
    ).generate()
    ids = data.device_ids()

    def make(device_id: str) -> DeviceAssignment:
        shard = data.shard(device_id)
        return DeviceAssignment(device_id, grade, shard.n_samples, dataset=shard)

    return PhoneAssignment(
        grade=grade,
        assignments=[make(d) for d in ids[:n_devices]],
        benchmarking=[make(d) for d in ids[n_devices:]],
        n_phones=n_phones,
        flow=standard_fl_flow(epochs=2),
        feature_dim=FEATURE_DIM,
        numeric=True,
    )


def run_session(batch: bool, plans, n_phones: int, rounds: int = 2, numeric: bool = False,
                poll: float = 1.0, window: float = 15.0, msp: bool = False, seed: int = SEED):
    """Drive prepare -> rounds -> teardown; return everything observable."""
    sim, mgr, phones, samples = build_rig(batch, n_phones, seed=seed, poll=poll,
                                          window=window, msp=msp)
    outcomes = []
    weights = np.zeros(FEATURE_DIM) if numeric else None
    model_bytes = MODEL_BYTES if numeric else 33000

    def drive():
        yield sim.process(mgr.prepare(plans, task_id="task"))
        for round_index in range(1, rounds + 1):
            yield sim.process(
                mgr.run_round(round_index, weights, 0.0, model_bytes, CallbackSink(outcomes.append))
            )
        yield sim.process(mgr.teardown())

    sim.process(drive())
    sim.run(batch=batch)
    return {
        "mgr": mgr,
        "phones": phones,
        "outcomes": outcomes,
        "samples": samples,
        "end": sim.now,
        "rounds": mgr.rounds,
    }


def assert_equivalent(legacy: dict, batched: dict) -> None:
    """Full bit-level comparison of two sessions."""
    assert legacy["end"] == batched["end"]
    # Outcome stream: same devices, same order, same times, same payloads.
    assert len(legacy["outcomes"]) == len(batched["outcomes"])
    for a, b in zip(legacy["outcomes"], batched["outcomes"]):
        assert (a.device_id, a.grade, a.round_index, a.n_samples, a.payload_bytes) == (
            b.device_id, b.grade, b.round_index, b.n_samples, b.payload_bytes
        )
        assert a.finished_at == b.finished_at
        if a.update is None:
            assert b.update is None
        else:
            assert a.update.weights.tobytes() == b.update.weights.tobytes()
            assert a.update.bias == b.update.bias
            assert a.update.n_samples == b.update.n_samples
            assert a.update.metadata == b.update.metadata
    # Round bookkeeping.
    for ra, rb in zip(legacy["rounds"], batched["rounds"]):
        assert (ra.started_at, ra.finished_at, ra.n_devices) == (rb.started_at, rb.finished_at, rb.n_devices)
    # Benchmark sample series (timestamps AND contents) and Table-I rows.
    assert len(legacy["samples"]) == len(batched["samples"])
    for a, b in zip(legacy["samples"], batched["samples"]):
        assert a == b
    records_a, records_b = legacy["mgr"].benchmark_records, batched["mgr"].benchmark_records
    assert len(records_a) == len(records_b)
    for rec_a, rec_b in zip(records_a, records_b):
        assert rec_a.serial == rec_b.serial
        assert rec_a.boundaries == rec_b.boundaries
        assert rec_a.samples == rec_b.samples
        assert rec_a.stage_summaries() == rec_b.stage_summaries()
    # Per-phone physical state after teardown.
    for pa, pb in zip(legacy["phones"], batched["phones"]):
        assert pa.serial == pb.serial
        assert pa.sessions_completed == pb.sessions_completed
        assert pa.battery.consumed_mah == pb.battery.consumed_mah
        assert pa.stage_energy_mah == pb.stage_energy_mah
        assert pa.stage_durations == pb.stage_durations
        assert (pa._net_rx_base, pa._net_tx_base) == (pb._net_rx_base, pb._net_tx_base)


class TestTimeOnlyEquivalence:
    def test_multi_wave_multi_round(self):
        plans = [time_only_plan("High", 13, 4, 2)]
        assert_equivalent(
            run_session(False, plans, 8),
            run_session(True, [time_only_plan("High", 13, 4, 2)], 8),
        )

    def test_mixed_grades(self):
        def plans():
            return [time_only_plan("High", 9, 3, 1), time_only_plan("Low", 7, 2, 1)]

        assert_equivalent(
            run_session(False, plans(), 6),
            run_session(True, plans(), 6),
        )

    def test_msp_control_latency(self):
        def plans():
            return [time_only_plan("High", 6, 3, 1)]

        assert_equivalent(
            run_session(False, plans(), 8, msp=True),
            run_session(True, plans(), 8, msp=True),
        )

    def test_more_phones_than_devices(self):
        # Some phones get empty queues; the wave schedule must skip them
        # exactly as the legacy generators do.
        def plans():
            return [time_only_plan("High", 3, 5, 0)]

        assert_equivalent(
            run_session(False, plans(), 6),
            run_session(True, plans(), 6),
        )

    @pytest.mark.parametrize("poll", [0.37, 5.0, 15.0, 31.0])
    def test_sampler_tie_breaking(self, poll):
        # Poll intervals that collide with (or exceed) the stage windows:
        # the shared ticker must reproduce the per-phone loops' boundary
        # tie ordering and final-tick semantics.
        def plans():
            return [time_only_plan("High", 4, 2, 2)]

        assert_equivalent(
            run_session(False, plans(), 6, poll=poll),
            run_session(True, plans(), 6, poll=poll),
        )


class TestNumericEquivalence:
    def test_numeric_updates_bitwise(self):
        assert_equivalent(
            run_session(False, [numeric_plan("High", 10, 3, 2)], 8, numeric=True),
            run_session(True, [numeric_plan("High", 10, 3, 2)], 8, numeric=True),
        )

    def test_numeric_stream_continuity_across_rounds(self):
        # phone-exec.* streams are cached per device: round 2 must continue
        # the same generators in both modes, so a 3-round run diverges if
        # either path consumes draws differently.
        assert_equivalent(
            run_session(False, [numeric_plan("Low", 6, 2, 1)], 6, numeric=True, rounds=3),
            run_session(True, [numeric_plan("Low", 6, 2, 1)], 6, numeric=True, rounds=3),
        )

    def test_custom_flow_without_block_support_falls_back(self):
        # UploadUpdateOp alone requires trained weights, so build a flow
        # whose operator lacks apply_block: the batched manager must route
        # the plan through the generator path and still match legacy.
        class NoBlockUpload(UploadUpdateOp):
            supports_block = False

        def plans():
            plan = numeric_plan("High", 5, 2, 0)
            flow = standard_fl_flow(epochs=1)
            return [
                PhoneAssignment(
                    grade=plan.grade,
                    assignments=plan.assignments,
                    benchmarking=[],
                    n_phones=2,
                    flow=OperatorFlow(list(flow.operators[:-1]) + [NoBlockUpload()]),
                    feature_dim=FEATURE_DIM,
                    numeric=True,
                )
            ]

        assert not plans()[0].flow.supports_block
        assert_equivalent(
            run_session(False, plans(), 4, numeric=True),
            run_session(True, plans(), 4, numeric=True),
        )


class TestFullPlatformEquivalence:
    def test_fig5_trace_identical_through_the_whole_stack(self):
        # End to end: SimDC platform -> TaskRunner -> PhoneMgr -> cloud DB.
        # The legacy and batched deployments must upload the exact same
        # sample series and report the same round windows.
        from repro.experiments import run_fig5_device_trace

        legacy = run_fig5_device_trace(rounds=2, batch=False)
        batched = run_fig5_device_trace(rounds=2, batch=True)
        assert legacy.times == batched.times
        assert legacy.cpu_percent == batched.cpu_percent
        assert legacy.memory_mb == batched.memory_mb
        assert legacy.round_windows == batched.round_windows


class TestAbortMidRound:
    def test_abort_releases_in_flight_batched_round(self):
        # A sibling failure (e.g. the logical tier crashing) triggers
        # PhoneMgr.abort() while a wave-scheduled round is still pending
        # in the pool.  The voided callbacks must not leak the round
        # process: its barrier fires at abort time and the simulation
        # drains without touching the released phones further.
        sim, mgr, phones, _ = build_rig(True, 6)
        plan = time_only_plan("High", 12, 3, 0)
        sessions_at_abort = {}

        def drive():
            yield sim.process(mgr.prepare([plan], task_id="t"))
            round_proc = sim.process(mgr.run_round(1, None, 0.0, 33000, CallbackSink(lambda o: None)))
            yield Timeout(20.0)  # mid-round: first wave done, rest pending
            mgr.abort()
            sessions_at_abort.update(
                {p.serial: p.sessions_completed for p in phones}
            )
            yield round_proc  # must resolve instead of leaking forever

        proc = sim.process(drive())
        sim.run(batch=True)
        assert proc.done and proc.error is None
        assert sim.pending_events == 0
        assert mgr.rounds[0].aborted
        assert mgr.plans == []
        assert len(mgr.available_phones("High")) == 6
        # Epoch-voided callbacks did not replay sessions after the abort.
        for phone in phones:
            assert phone.sessions_completed == sessions_at_abort[phone.serial]


class TestColumnarRounds:
    def test_columnar_blocks_match_eager_outcomes(self):
        # Without a callback the batched path emits one columnar block per
        # plan; materializing it must reproduce the eager outcome stream.
        sim, mgr, phones, _ = build_rig(True, 6)
        plan = time_only_plan("High", 11, 3, 0)

        def drive():
            yield sim.process(mgr.prepare([plan], task_id="t"))
            yield sim.process(mgr.run_round(1, None, 0.0, 33000, None))

        sim.process(drive())
        sim.run(batch=True)
        result = mgr.rounds[0]
        assert result.outcomes == []
        assert len(result.columnar) == 1
        materialized = result.all_outcomes()

        eager = run_session(True, [time_only_plan("High", 11, 3, 0)], 6, rounds=1)
        # Columnar blocks store assignment order; eager emission is
        # chronological — same multiset, per-device fields bit-identical.
        assert sorted(o.device_id for o in materialized) == sorted(
            o.device_id for o in eager["outcomes"]
        )
        lookup = {o.device_id: o for o in eager["outcomes"]}
        for outcome in materialized:
            reference = lookup[outcome.device_id]
            assert outcome.finished_at == reference.finished_at
            assert outcome.payload_bytes == reference.payload_bytes
        assert result.finished_at == eager["rounds"][0].finished_at

    def test_columnar_numeric_fedavg_inputs(self):
        sim, mgr, phones, _ = build_rig(True, 6)
        plan = numeric_plan("High", 8, 3, 0)

        def drive():
            yield sim.process(mgr.prepare([plan], task_id="t"))
            yield sim.process(mgr.run_round(1, np.zeros(FEATURE_DIM), 0.0, MODEL_BYTES, None))

        sim.process(drive())
        sim.run(batch=True)
        weights, biases, n_samples = mgr.rounds[0].fedavg_inputs()
        assert weights.shape == (8, FEATURE_DIM)

        eager = run_session(True, [numeric_plan("High", 8, 3, 0)], 6, numeric=True, rounds=1)
        by_device = {o.device_id: o for o in eager["outcomes"] if o.update is not None}
        # Columnar arrays are in assignment order; compare per device.
        block = mgr.rounds[0].columnar[0]
        for position, assignment in enumerate(block.plan.assignments):
            reference = by_device[assignment.device_id]
            assert weights[position].tobytes() == reference.update.weights.tobytes()
            assert biases[position] == reference.update.bias
            assert n_samples[position] == reference.n_samples
