"""Tests for task specs, queue, resource manager and greedy scheduler."""

import pytest

from repro.cluster import K8sCluster, NodeSpec, ResourceBundle
from repro.phones import VirtualPhone
from repro.phones.specs import build_fleet
from repro.scheduler import (
    GradeRequirement,
    GreedyTaskScheduler,
    ResourceManager,
    TaskQueue,
    TaskSpec,
    TaskState,
)
from repro.simkernel import RandomStreams, Simulator


def make_spec(name="t", priority=0, bundles=10, n_phones=2, n_devices=20, grade="High"):
    return TaskSpec(
        name=name,
        priority=priority,
        grades=[
            GradeRequirement(
                grade=grade,
                n_devices=n_devices,
                bundles=bundles,
                n_phones=n_phones,
                device_bundle=ResourceBundle(cpus=1, memory_gb=1),
            )
        ],
    )


class TestTaskSpec:
    def test_unique_task_ids(self):
        assert make_spec().task_id != make_spec().task_id

    def test_default_flow_installed(self):
        spec = make_spec()
        assert spec.flow is not None
        assert spec.flow.describe()[0] == "download_model"

    def test_totals(self):
        spec = TaskSpec(
            name="multi",
            grades=[
                GradeRequirement("High", n_devices=10, bundles=8, n_phones=1, n_benchmark=2),
                GradeRequirement("Low", n_devices=20, bundles=6, n_phones=3),
            ],
        )
        assert spec.total_devices == 30
        assert spec.total_bundles_requested == 14
        assert spec.phones_requested() == {"High": 3, "Low": 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec(name="x", grades=[])
        with pytest.raises(ValueError):
            make_spec(n_devices=0)
        with pytest.raises(ValueError):
            TaskSpec(name="x", grades=[make_spec().grades[0]], rounds=0)
        with pytest.raises(ValueError):
            GradeRequirement("High", n_devices=5, bundles=0, n_phones=0)
        with pytest.raises(ValueError):
            TaskSpec(
                name="dup",
                grades=[
                    GradeRequirement("High", 5, bundles=1),
                    GradeRequirement("High", 5, bundles=1),
                ],
            )


class TestTaskQueue:
    def test_priority_then_fifo(self):
        queue = TaskQueue()
        low1 = queue.submit(make_spec("low1", priority=1))
        high = queue.submit(make_spec("high", priority=9))
        low2 = queue.submit(make_spec("low2", priority=1))
        order = [s.task_id for s in queue.snapshot()]
        assert order == [high.task_id, low1.task_id, low2.task_id]
        assert queue.peek() is high

    def test_submit_marks_queued(self):
        queue = TaskQueue()
        spec = queue.submit(make_spec())
        assert spec.state is TaskState.QUEUED

    def test_duplicate_rejected(self):
        queue = TaskQueue()
        spec = queue.submit(make_spec())
        with pytest.raises(ValueError):
            queue.submit(spec)

    def test_remove(self):
        queue = TaskQueue()
        spec = queue.submit(make_spec())
        assert queue.remove(spec.task_id) is spec
        assert len(queue) == 0
        with pytest.raises(KeyError):
            queue.remove(spec.task_id)


def make_rm(n_high=4, n_low=4, cores=40):
    sim = Simulator()
    cluster = K8sCluster([NodeSpec(cpus=cores / 2, memory_gb=cores / 2)] * 2)
    streams = RandomStreams(0)
    phones = [
        VirtualPhone(sim, f"p{i}", spec, streams=streams)
        for i, spec in enumerate(build_fleet(n_high, n_low))
    ]
    return ResourceManager(cluster, phones)


class TestResourceManager:
    def test_total_bundles_from_cluster(self):
        rm = make_rm(cores=40)
        assert rm.total_bundles() == 40

    def test_snapshot_counts_phones_by_grade(self):
        rm = make_rm(n_high=3, n_low=5)
        snap = rm.snapshot()
        assert snap.free_phones == {"High": 3, "Low": 5}

    def test_freeze_release_cycle(self):
        rm = make_rm()
        spec = make_spec(bundles=10, n_phones=2)
        rm.freeze(spec)
        snap = rm.snapshot()
        assert snap.free_bundles == 30
        assert snap.free_phones["High"] == 2
        assert rm.active_grants == 1
        rm.release(spec.task_id)
        assert rm.snapshot().free_bundles == 40
        assert rm.active_grants == 0

    def test_over_freeze_rejected(self):
        rm = make_rm()
        spec = make_spec(bundles=100)
        with pytest.raises(RuntimeError, match="insufficient"):
            rm.freeze(spec)

    def test_double_freeze_rejected(self):
        rm = make_rm()
        spec = make_spec(bundles=5)
        rm.freeze(spec)
        with pytest.raises(RuntimeError):
            rm.freeze(spec)

    def test_release_unknown(self):
        rm = make_rm()
        with pytest.raises(KeyError):
            rm.release("ghost")

    def test_scale_up_adds_bundles(self):
        rm = make_rm(cores=40)
        rm.scale_up(NodeSpec(cpus=10, memory_gb=10), count=2)
        assert rm.total_bundles() == 60

    def test_scale_down_drains_idle_nodes(self):
        rm = make_rm(cores=40)
        added = rm.scale_up(NodeSpec(cpus=10, memory_gb=10), count=2)
        rm.scale_down(added)
        assert rm.total_bundles() == 40
        assert all(nid not in rm.cluster.nodes for nid in added)

    def test_scale_down_is_transactional_on_busy_node(self):
        """A busy node mid-list must leave the whole cluster untouched.

        Regression: scale_down used to remove nodes one-by-one and blow
        up mid-loop on the first busy node, stranding the nodes before it
        already drained.
        """
        rm = make_rm(cores=40)
        added = rm.scale_up(NodeSpec(cpus=10, memory_gb=10), count=3)
        busy = rm.cluster.nodes[added[1]]
        busy.allocate(ResourceBundle(cpus=1.0, memory_gb=1.0))
        before = set(rm.cluster.nodes)
        with pytest.raises(RuntimeError, match="nothing was removed"):
            rm.scale_down(added)
        assert set(rm.cluster.nodes) == before
        assert rm.total_bundles() == 70

    def test_scale_down_is_transactional_on_unknown_node(self):
        rm = make_rm(cores=40)
        added = rm.scale_up(NodeSpec(cpus=10, memory_gb=10), count=2)
        before = set(rm.cluster.nodes)
        with pytest.raises(KeyError, match="nothing was removed"):
            rm.scale_down([added[0], "ghost", added[1]])
        assert set(rm.cluster.nodes) == before

    def test_scale_down_dedupes_node_ids(self):
        rm = make_rm(cores=40)
        added = rm.scale_up(NodeSpec(cpus=10, memory_gb=10), count=1)
        rm.scale_down([added[0], added[0]])
        assert rm.total_bundles() == 40

    def test_phone_shortage_detected(self):
        rm = make_rm(n_high=1)
        spec = make_spec(n_phones=3)
        with pytest.raises(RuntimeError):
            rm.freeze(spec)


class TestGreedyScheduler:
    def test_schedules_in_priority_order_within_capacity(self):
        rm = make_rm(cores=40)
        queue = TaskQueue()
        big = queue.submit(make_spec("big", priority=5, bundles=30, n_phones=0, n_devices=30))
        small = queue.submit(make_spec("small", priority=1, bundles=15, n_phones=0))
        decision = GreedyTaskScheduler().plan(queue, rm.snapshot())
        # big fits (30 <= 40); small then needs 15 > 10 remaining.
        assert [s.task_id for s in decision.scheduled] == [big.task_id]
        assert [s.task_id for s in decision.skipped] == [small.task_id]
        assert decision.total_benefit == 5

    def test_packs_multiple_fitting_tasks(self):
        rm = make_rm(cores=40)
        queue = TaskQueue()
        queue.submit(make_spec("a", priority=2, bundles=15, n_phones=1))
        queue.submit(make_spec("b", priority=1, bundles=15, n_phones=1))
        decision = GreedyTaskScheduler().plan(queue, rm.snapshot())
        assert len(decision.scheduled) == 2

    def test_lower_priority_can_fill_gap(self):
        """Greedy: a small low-priority task runs when the big one can't."""
        rm = make_rm(cores=20)
        queue = TaskQueue()
        queue.submit(make_spec("huge", priority=9, bundles=50, n_phones=0))
        tiny = queue.submit(make_spec("tiny", priority=1, bundles=5, n_phones=0))
        decision = GreedyTaskScheduler().plan(queue, rm.snapshot())
        assert [s.task_id for s in decision.scheduled] == [tiny.task_id]

    def test_plan_does_not_mutate_pool_or_queue(self):
        rm = make_rm()
        queue = TaskQueue()
        queue.submit(make_spec(bundles=10))
        snap = rm.snapshot()
        GreedyTaskScheduler().plan(queue, snap)
        assert len(queue) == 1
        assert rm.snapshot().free_bundles == snap.free_bundles
