"""Unit tests for the simulated ADB and raw-output post-processing."""

import pytest

from repro.phones import AdbError, SimulatedAdb, TrainingApk, VirtualPhone
from repro.phones.metrics import (
    integrate_energy_mah,
    DeviceMetricSample,
    parse_current_ua,
    parse_metric_sample,
    parse_net_dev,
    parse_pgrep_pid,
    parse_pss_kb,
    parse_top_cpu,
    parse_voltage_mv,
)
from repro.phones.specs import DEFAULT_LOCAL_FLEET
from repro.simkernel import RandomStreams, Simulator


@pytest.fixture()
def rig():
    sim = Simulator()
    adb = SimulatedAdb()
    phone = VirtualPhone(sim, "serial-1", DEFAULT_LOCAL_FLEET[0], streams=RandomStreams(1))
    adb.register(phone)
    apk = TrainingApk()
    adb.install("serial-1", apk)
    return sim, adb, phone, apk


class TestFleetManagement:
    def test_register_and_devices_listing(self, rig):
        _, adb, _, _ = rig
        listing = adb.devices()
        assert "List of devices attached" in listing
        assert "serial-1\tdevice" in listing

    def test_duplicate_serial_rejected(self, rig):
        sim, adb, phone, _ = rig
        with pytest.raises(AdbError):
            adb.register(phone)

    def test_unknown_serial(self, rig):
        _, adb, _, _ = rig
        with pytest.raises(AdbError):
            adb.shell("nope", "cat /sys/class/power_supply/battery/current_now")
        with pytest.raises(AdbError):
            adb.unregister("nope")

    def test_push_duration_scales(self, rig):
        _, adb, phone, _ = rig
        assert adb.push_duration("serial-1", 0) == 0.0
        one_mb = adb.push_duration("serial-1", 10**6)
        assert one_mb == pytest.approx(10**6 / phone.spec.network_bandwidth_bps)
        with pytest.raises(AdbError):
            adb.push_duration("serial-1", -1)


class TestPaperCommandSet:
    """Each command quoted in §IV-C round-trips through parse helpers."""

    def test_current_now(self, rig):
        _, adb, phone, _ = rig
        raw = adb.shell("serial-1", "cat /sys/class/power_supply/battery/current_now")
        value = parse_current_ua(raw)
        assert value > 0  # magnitude of the negative sysfs reading
        assert raw.strip().startswith("-")

    def test_voltage_now(self, rig):
        _, adb, _, _ = rig
        raw = adb.shell("serial-1", "cat /sys/class/power_supply/battery/voltage_now")
        mv = parse_voltage_mv(raw)
        assert 3000 < mv < 4500

    def test_pgrep_then_top(self, rig):
        sim, adb, phone, apk = rig
        adb.shell("serial-1", f"pm clear {apk.package}")
        adb.shell("serial-1", f"am start -n {apk.component}")
        pid_raw = adb.shell("serial-1", f"pgrep -f {apk.package}")
        pid = parse_pgrep_pid(pid_raw)
        assert pid == phone.running_pid
        top_raw = adb.shell("serial-1", f"top -b -n 1 -p {pid}")
        cpu = parse_top_cpu(top_raw, pid)
        assert 0.0 <= cpu <= 20.0

    def test_pgrep_not_running(self, rig):
        _, adb, _, apk = rig
        raw = adb.shell("serial-1", f"pgrep -f {apk.package}")
        assert parse_pgrep_pid(raw) is None

    def test_dumpsys_grep_pss(self, rig):
        _, adb, phone, apk = rig
        adb.shell("serial-1", f"am start -n {apk.component}")
        raw = adb.shell("serial-1", f"dumpsys meminfo {apk.package} | grep PSS")
        # grep keeps only PSS-bearing lines; parser must isolate TOTAL PSS.
        assert "TOTAL PSS" in raw
        assert "Java Heap" not in raw
        kb = parse_pss_kb(raw)
        assert kb == pytest.approx(phone.memory_pss_kb(apk.package), rel=0.2)

    def test_net_dev_grep_wlan(self, rig):
        sim, adb, phone, apk = rig
        adb.shell("serial-1", f"am start -n {apk.component}")
        pid = phone.running_pid
        phone.start_training(5.0, upload_bytes=10_000)
        sim.run()
        raw = adb.shell("serial-1", f"cat /proc/{pid}/net/dev | grep wlan")
        rx, tx = parse_net_dev(raw)
        assert "lo:" not in raw
        assert rx + tx > 10_000

    def test_lifecycle_commands(self, rig):
        _, adb, phone, apk = rig
        assert "Success" in adb.shell("serial-1", f"pm clear {apk.package}")
        assert "Starting" in adb.shell("serial-1", f"am start -n {apk.component}")
        assert "Broadcast completed" in adb.shell(
            "serial-1", f"am broadcast -a {apk.package}.START"
        )
        adb.shell("serial-1", f"am force-stop {apk.package}")
        assert phone.running_pid is None

    def test_unknown_command_is_shell_error(self, rig):
        _, adb, _, _ = rig
        with pytest.raises(AdbError, match="not found"):
            adb.shell("serial-1", "frobnicate --now")

    def test_unknown_path(self, rig):
        _, adb, _, _ = rig
        with pytest.raises(AdbError, match="No such file"):
            adb.shell("serial-1", "cat /sys/does/not/exist")

    def test_unsupported_pipeline(self, rig):
        _, adb, _, _ = rig
        with pytest.raises(AdbError, match="unsupported pipeline"):
            adb.shell("serial-1", "cat /sys/class/power_supply/battery/current_now | awk x")


class TestParsers:
    def test_parse_current_magnitude(self):
        assert parse_current_ua("-57600\n") == 57600.0
        assert parse_current_ua("57600") == 57600.0
        with pytest.raises(ValueError):
            parse_current_ua("   ")

    def test_parse_voltage_units(self):
        assert parse_voltage_mv("3852000\n") == pytest.approx(3852.0)

    def test_parse_top_missing_pid_is_zero(self):
        raw = "  PID USER  PR NI VIRT RES SHR S[%CPU] %MEM TIME+ ARGS\n"
        assert parse_top_cpu(raw, 123) == 0.0

    def test_parse_pss_ignores_heap_lines(self):
        raw = "          Java Heap:     8000\n         TOTAL PSS:     34520            TOTAL RSS: 48000\n"
        assert parse_pss_kb(raw) == 34520
        assert parse_pss_kb("No process found for: x\n") == 0

    def test_parse_net_dev_sums_wlan_only(self):
        raw = (
            "    lo:     4096      12    0    0    0     0          0         0     4096      12    0    0    0     0       0          0\n"  # noqa: E501
            " wlan0:    10000       7    0    0    0     0          0         0     2000       2    0    0    0     0       0          0\n"  # noqa: E501
            " wlan1:      500       1    0    0    0     0          0         0      500       1    0    0    0     0       0          0\n"  # noqa: E501
        )
        rx, tx = parse_net_dev(raw)
        assert rx == 10_500
        assert tx == 2_500

    def test_parse_net_dev_malformed(self):
        with pytest.raises(ValueError):
            parse_net_dev(" wlan0: 1 2 3\n")

    def test_integrate_energy_trapezoid(self):
        def sample(t, ma):
            return DeviceMetricSample(t, "s", ma * 1000.0, 3850.0, 0.0, 0, 0, 0)

        # Constant 100 mA for one hour -> 100 mAh.
        samples = [sample(0.0, 100.0), sample(1800.0, 100.0), sample(3600.0, 100.0)]
        assert integrate_energy_mah(samples) == pytest.approx(100.0)
        assert integrate_energy_mah(samples[:1]) == 0.0

    def test_integrate_energy_unordered_rejected(self):
        def sample(t):
            return DeviceMetricSample(t, "s", 1000.0, 3850.0, 0.0, 0, 0, 0)

        with pytest.raises(ValueError):
            integrate_energy_mah([sample(10.0), sample(5.0)])

    def test_parse_metric_sample_assembly(self):
        sample = parse_metric_sample(
            timestamp=12.0,
            serial="s",
            current_raw="-40000\n",
            voltage_raw="3850000\n",
            top_raw=" 4123 u0_a1 10 -10 50000K 40000K 12000K S  8.3  0.4 0:42.17 com.simdc.train\n",
            pid=4123,
            dumpsys_raw="         TOTAL PSS:     30000\n",
            net_dev_raw=" wlan0: 100 1 0 0 0 0 0 0 50 1 0 0 0 0 0 0\n",
        )
        assert sample.current_ma == pytest.approx(40.0)
        assert sample.voltage_mv == pytest.approx(3850.0)
        assert sample.cpu_percent == pytest.approx(8.3)
        assert sample.memory_kb == 30000
        assert sample.total_bytes == 150
