"""Tests for cloud storage, database, aggregation service and monitor."""

import numpy as np
import pytest

from repro.cloud import (
    AggregationService,
    MetricsDatabase,
    Monitor,
    ObjectStorage,
    SampleThresholdTrigger,
    ScheduledTrigger,
)
from repro.data import SyntheticAvazu
from repro.deviceflow import Message
from repro.ml import LogisticRegressionModel, ModelUpdate
from repro.simkernel import Simulator


class TestObjectStorage:
    def test_put_get_round_trip(self):
        storage = ObjectStorage()
        storage.put("k", {"a": 1}, size_bytes=100, now=5.0, writer="w")
        assert storage.get("k") == {"a": 1}
        assert storage.head("k").stored_at == 5.0
        assert "k" in storage
        assert len(storage) == 1

    def test_accounting(self):
        storage = ObjectStorage()
        storage.put("a", b"x", 10)
        storage.put("b", b"y", 20)
        storage.get("a")
        assert storage.total_bytes_written == 30
        assert storage.total_bytes_read == 10
        assert storage.put_count == 2
        assert storage.get_count == 1

    def test_missing_key(self):
        storage = ObjectStorage()
        with pytest.raises(KeyError):
            storage.get("ghost")
        with pytest.raises(KeyError):
            storage.delete("ghost")

    def test_overwrite(self):
        storage = ObjectStorage()
        storage.put("k", 1, 8)
        storage.put("k", 2, 8)
        assert storage.get("k") == 2
        assert len(storage) == 1

    def test_transfer_duration(self):
        storage = ObjectStorage(bandwidth_bps=1000, latency_s=0.5)
        assert storage.transfer_duration(1000) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            storage.transfer_duration(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectStorage(bandwidth_bps=0)
        storage = ObjectStorage()
        with pytest.raises(ValueError):
            storage.put("k", 1, -1)


class TestMetricsDatabase:
    def test_insert_and_query_equality(self):
        db = MetricsDatabase()
        db.insert("samples", {"serial": "a", "cpu": 5.0})
        db.insert("samples", {"serial": "b", "cpu": 9.0})
        assert db.count("samples") == 2
        assert db.query("samples", serial="a")[0]["cpu"] == 5.0

    def test_query_predicate(self):
        db = MetricsDatabase()
        db.insert_many("t", [{"x": i} for i in range(10)])
        hot = db.query("t", where=lambda r: r["x"] > 7)
        assert [r["x"] for r in hot] == [8, 9]

    def test_records_copied_on_insert(self):
        db = MetricsDatabase()
        record = {"x": 1}
        db.insert("t", record)
        record["x"] = 99
        assert db.query("t")[0]["x"] == 1

    def test_column_extraction(self):
        db = MetricsDatabase()
        db.insert_many("t", [{"x": 1, "y": 2}, {"x": 3}, {"y": 4}])
        assert db.column("t", "x") == [1, 3]

    def test_tables_and_clear(self):
        db = MetricsDatabase()
        db.insert("a", {"v": 1})
        db.insert("b", {"v": 1})
        assert db.tables() == ["a", "b"]
        db.clear("a")
        assert db.tables() == ["b"]
        db.clear()
        assert db.tables() == []

    def test_validation(self):
        db = MetricsDatabase()
        with pytest.raises(ValueError):
            db.insert("", {"x": 1})
        with pytest.raises(TypeError):
            db.insert("t", [1, 2])


def make_update(device_id, dim=64, n_samples=10, value=1.0):
    return ModelUpdate(
        device_id=device_id,
        round_index=1,
        weights=np.full(dim, value),
        bias=value,
        n_samples=n_samples,
    )


class TestSampleThresholdTrigger:
    def test_aggregates_at_threshold(self):
        sim = Simulator()
        storage = ObjectStorage()
        service = AggregationService(
            sim, storage, SampleThresholdTrigger(25), model=LogisticRegressionModel(64)
        )
        service.start()
        for i in range(5):
            service.receive_update(make_update(f"d{i}", n_samples=10))
        # Thresholds of 25 samples: aggregation after 3 updates (30) and
        # the remaining 2 updates stay buffered.
        assert service.rounds_completed == 1
        assert service.history[0].n_updates == 3
        assert service.pending_updates == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleThresholdTrigger(0)


class TestScheduledTrigger:
    def test_periodic_aggregation(self):
        sim = Simulator()
        storage = ObjectStorage()
        service = AggregationService(
            sim, storage, ScheduledTrigger(60.0, max_rounds=3),
            model=LogisticRegressionModel(16),
        )
        service.start()
        for t, device in ((10.0, "a"), (70.0, "b"), (130.0, "c")):
            sim.schedule(t, service.receive_update, make_update(device, dim=16))
        sim.run()
        assert service.rounds_completed == 3
        assert [r.time for r in service.history] == [60.0, 120.0, 180.0]
        assert [r.n_updates for r in service.history] == [1, 1, 1]

    def test_empty_periods_skipped(self):
        sim = Simulator()
        service = AggregationService(
            sim, ObjectStorage(), ScheduledTrigger(30.0, max_rounds=4),
            model=LogisticRegressionModel(16),
        )
        service.start()
        sim.schedule(100.0, service.receive_update, make_update("only", dim=16))
        sim.run()
        assert service.rounds_completed == 1

    def test_stop_disarms(self):
        sim = Simulator()
        service = AggregationService(
            sim, ObjectStorage(), ScheduledTrigger(10.0), model=LogisticRegressionModel(16)
        )
        service.start()
        service.receive_update(make_update("a", dim=16))
        service.stop()
        sim.run()
        assert service.rounds_completed == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduledTrigger(0)
        with pytest.raises(ValueError):
            ScheduledTrigger(10.0, max_rounds=0)


class TestAggregationService:
    def test_message_path_fetches_from_storage(self):
        sim = Simulator()
        storage = ObjectStorage()
        update = make_update("d0", dim=32)
        storage.put("u/d0", update, update.payload_bytes())
        service = AggregationService(
            sim, storage, SampleThresholdTrigger(5), model=LogisticRegressionModel(32)
        )
        message = Message(
            task_id="t", device_id="d0", round_index=1, payload_ref="u/d0",
            size_bytes=update.payload_bytes(), n_samples=update.n_samples,
        )
        service.receive_message(message)
        assert service.rounds_completed == 1
        assert service.messages_received == 1
        assert service.bytes_received == update.payload_bytes()

    def test_message_with_non_update_payload_rejected(self):
        sim = Simulator()
        storage = ObjectStorage()
        storage.put("junk", {"not": "an update"}, 10)
        service = AggregationService(
            sim, storage, SampleThresholdTrigger(5), model=LogisticRegressionModel(32)
        )
        message = Message(task_id="t", device_id="d", round_index=1, payload_ref="junk")
        with pytest.raises(TypeError):
            service.receive_message(message)

    def test_fedavg_applied_to_global_model(self):
        sim = Simulator()
        model = LogisticRegressionModel(8)
        service = AggregationService(sim, ObjectStorage(), SampleThresholdTrigger(20), model=model)
        service.receive_update(make_update("a", dim=8, n_samples=10, value=1.0))
        service.receive_update(make_update("b", dim=8, n_samples=10, value=3.0))
        assert np.allclose(model.weights, 2.0)
        assert model.bias == pytest.approx(2.0)

    def test_counting_mode_without_model(self):
        sim = Simulator()
        rounds = []
        service = AggregationService(
            sim, ObjectStorage(), SampleThresholdTrigger(30), model=None,
            on_global_model=lambda r, w, b: rounds.append(r),
        )
        for i in range(6):
            message = Message(task_id="t", device_id=f"d{i}", round_index=1,
                              payload_ref="none", n_samples=10)
            service.receive_message(message)
        assert service.rounds_completed == 2
        assert rounds == [1, 2]

    def test_test_set_evaluation_recorded(self):
        sim = Simulator()
        data = SyntheticAvazu(n_devices=4, records_per_device=10, feature_dim=32, seed=0).generate(
            test_records=200
        )
        service = AggregationService(
            sim, ObjectStorage(), SampleThresholdTrigger(5),
            model=LogisticRegressionModel(32), test_set=data.test,
        )
        service.receive_update(make_update("a", dim=32, value=0.0))
        record = service.history[0]
        assert record.test_loss is not None
        assert 0.0 <= record.test_accuracy <= 1.0

    def test_train_eval_over_contributors(self):
        sim = Simulator()
        data = SyntheticAvazu(n_devices=3, records_per_device=10, feature_dim=32, seed=0).generate()
        ids = data.device_ids()
        service = AggregationService(
            sim, ObjectStorage(), SampleThresholdTrigger(5),
            model=LogisticRegressionModel(32),
            train_eval_shards={d: data.shard(d) for d in ids},
        )
        service.receive_update(
            ModelUpdate(device_id=ids[0], round_index=1, weights=np.zeros(32),
                        bias=0.0, n_samples=10)
        )
        record = service.history[0]
        assert record.train_accuracy is not None

    def test_aggregate_empty_rejected(self):
        sim = Simulator()
        service = AggregationService(
            sim, ObjectStorage(), SampleThresholdTrigger(5), model=LogisticRegressionModel(8)
        )
        with pytest.raises(RuntimeError):
            service.aggregate_now()

    def test_db_row_per_aggregation(self):
        sim = Simulator()
        db = MetricsDatabase()
        service = AggregationService(
            sim, ObjectStorage(), SampleThresholdTrigger(10),
            model=LogisticRegressionModel(8), db=db,
        )
        service.receive_update(make_update("a", dim=8))
        assert db.count("aggregations") == 1
        assert db.query("aggregations")[0]["n_updates"] == 1


class TestMonitor:
    def test_log_and_counters(self):
        sim = Simulator()
        monitor = Monitor(sim)
        monitor.log("task_submitted", task_id="t1")
        sim.schedule(5.0, monitor.log, "round_done")
        sim.run()
        assert monitor.summary() == {"task_submitted": 1, "round_done": 1}
        assert monitor.of_kind("round_done")[0].time == 5.0

    def test_last_and_between(self):
        sim = Simulator()
        monitor = Monitor(sim)
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda when=t: monitor.log("tick", value=when))
        sim.run()
        assert monitor.last("tick").fields["value"] == 3.0
        assert monitor.last("ghost") is None
        assert len(monitor.between(1.5, 3.0)) == 2

    def test_timeline(self):
        sim = Simulator()
        monitor = Monitor(sim)
        monitor.log("loss", value=0.9)
        monitor.log("loss", value=0.7)
        monitor.log("loss", other=1)
        assert monitor.timeline("loss", "value") == [(0.0, 0.9), (0.0, 0.7)]

    def test_empty_kind_rejected(self):
        monitor = Monitor(Simulator())
        with pytest.raises(ValueError):
            monitor.log("")

    def test_kind_index_matches_full_scan(self):
        """of_kind/last are index-backed; they must equal a naive rescan."""
        sim = Simulator()
        monitor = Monitor(sim)
        kinds = ["alpha", "beta", "gamma"]
        for i in range(300):
            sim.schedule(float(i), monitor.log, kinds[i % 3])
        sim.run()
        # Interleave post-run appends so the index sees mixed orders too.
        monitor.log("beta", tag="late")
        for kind in kinds + ["ghost"]:
            scanned = [e for e in monitor.events if e.kind == kind]
            assert monitor.of_kind(kind) == scanned
            assert monitor.last(kind) == (scanned[-1] if scanned else None)
        assert monitor.last("beta").fields == {"tag": "late"}

    def test_of_kind_view_is_immutable_and_live(self):
        """of_kind is a zero-copy read-only view of the live bucket."""
        monitor = Monitor(Simulator())
        monitor.log("tick", value=1)
        bucket = monitor.of_kind("tick")
        assert not hasattr(bucket, "append")
        with pytest.raises(TypeError):
            bucket[0] = "junk"
        with pytest.raises(TypeError):
            hash(bucket)
        assert len(monitor.of_kind("tick")) == 1
        # The view is live: later events show through an existing handle.
        monitor.log("tick", value=2)
        assert len(bucket) == 2
        assert [e.fields["value"] for e in bucket] == [1, 2]
        assert bucket[-1].fields["value"] == 2
        assert bucket[0:2] == list(bucket)
        # Snapshot takers copy explicitly and keep independence.
        snapshot = list(monitor.of_kind("tick"))
        monitor.log("tick", value=3)
        assert len(snapshot) == 2

    def test_subscribers_see_every_event_in_order(self):
        sim = Simulator()
        monitor = Monitor(sim)
        seen = []
        monitor.subscribe(lambda e: seen.append((e.kind, e.fields.get("i"))))
        monitor.log("a", i=0)
        monitor.log("b", i=1)
        assert seen == [("a", 0), ("b", 1)]
        # A subscriber that logs re-enters safely; nested events dispatch.
        def echo(event):
            if event.kind == "ping":
                monitor.log("pong")
        monitor.subscribe(echo)
        monitor.log("ping")
        assert [k for k, _ in seen] == ["a", "b", "ping", "pong"]
        assert monitor.counters["pong"] == 1

    def test_unsubscribe_detaches(self):
        monitor = Monitor(Simulator())
        seen = []
        cb = monitor.subscribe(lambda e: seen.append(e.kind))
        monitor.log("one")
        monitor.unsubscribe(cb)
        monitor.log("two")
        assert seen == ["one"]

    def test_slice_of_view_is_a_view(self):
        """Slicing an EventsView chains views instead of copying lists."""
        from repro.cloud.monitor import EventsView

        sim = Simulator()
        monitor = Monitor(sim)
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(t, lambda when=t: monitor.log("tick", value=when))
        sim.run()
        view = monitor.of_kind("tick")
        sliced = view[1:3]
        assert isinstance(sliced, EventsView)
        assert [e.fields["value"] for e in sliced] == [2.0, 3.0]
        # Chained slicing stays a view; indexing still yields events.
        assert isinstance(sliced[:1], EventsView)
        assert sliced[:1][0].fields["value"] == 2.0
        # A sliced snapshot is detached from the live bucket.
        monitor.log("tick", value=5.0)
        assert len(view) == 5
        assert len(sliced) == 2

    def test_view_between_bisects_time_window(self):
        sim = Simulator()
        monitor = Monitor(sim)
        for t in (1.0, 2.0, 2.0, 3.0, 5.0):
            sim.schedule(t, lambda when=t: monitor.log("tick", value=when))
        sim.run()
        view = monitor.of_kind("tick")
        # Bounds are inclusive and duplicates at a boundary all land inside.
        assert [e.time for e in view.between(2.0, 3.0)] == [2.0, 2.0, 3.0]
        assert [e.time for e in view.between(1.5, 4.0)] == [2.0, 2.0, 3.0]
        assert list(view.between(6.0, 9.0)) == []
        # Matches the naive full-scan semantics of Monitor.between.
        assert list(view.between(0.0, 5.0)) == monitor.between(0.0, 5.0)
        # between on a slice composes (the window re-bisects the snapshot).
        assert [e.time for e in view[1:].between(2.0, 3.0)] == [2.0, 2.0, 3.0]

    def test_count_kind_is_counter_backed(self):
        monitor = Monitor(Simulator())
        assert monitor.count_kind("ghost") == 0
        for _ in range(3):
            monitor.log("tick")
        monitor.log("tock")
        assert monitor.count_kind("tick") == 3
        assert monitor.count_kind("tock") == 1
        assert monitor.count_kind("tick") == len(monitor.of_kind("tick"))

    def test_reentrant_unsubscribe_during_dispatch(self):
        """A subscriber removing itself mid-dispatch must not starve peers."""
        monitor = Monitor(Simulator())
        seen = []

        def one_shot(event):
            seen.append(("one_shot", event.kind))
            monitor.unsubscribe(one_shot)

        monitor.subscribe(one_shot)
        monitor.subscribe(lambda e: seen.append(("steady", e.kind)))
        monitor.log("first")
        monitor.log("second")
        # one_shot fired exactly once; the later subscriber was dispatched
        # for the same event even though the list shifted under the loop.
        assert seen == [("one_shot", "first"), ("steady", "first"), ("steady", "second")]

    def test_reentrant_subscribe_during_dispatch(self):
        """A subscriber added mid-dispatch sees the *next* event, not this one."""
        monitor = Monitor(Simulator())
        seen = []

        def recruiter(event):
            seen.append(("recruiter", event.kind))
            if event.kind == "first":
                monitor.subscribe(lambda e: seen.append(("recruit", e.kind)))

        monitor.subscribe(recruiter)
        monitor.log("first")
        monitor.log("second")
        assert seen == [
            ("recruiter", "first"),
            ("recruiter", "second"),
            ("recruit", "second"),
        ]
