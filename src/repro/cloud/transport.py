"""Fault-tolerant device→cloud transport: a seedable lossy channel.

Real device-cloud deployments never enjoy the lossless, exactly-once,
zero-latency uplink the simulator's ingestion path assumed: uploads are
lost, retried with backoff, occasionally duplicated, and rejected
wholesale while the ingestion service is down.  This module models that
loop deterministically:

* :class:`ChannelModel` — declarative channel behaviour: base delivery
  latency plus uniform jitter, loss/duplication probabilities, and
  scheduled :class:`ChannelWindow` impairments (per-tenant ``loss`` /
  ``duplication`` / ``outage`` windows driven by the scenario fault
  plan).
* a device-side retry policy — capped exponential backoff with
  deterministic jitter drawn from a device-keyed rng stream; after
  ``max_attempts`` sends the upload is *abandoned*.
* :class:`TransportChannel` — the simulation adapter: it fronts any
  :class:`~repro.cloud.sink.OutcomeSink`, plans one upload per device
  round (columnar blocks are routed per device so batched and legacy
  runs consume identical draws), and delivers surviving uploads through
  a :class:`~repro.simkernel.TimeoutPool` at their arrival times.

Determinism contract: every draw comes from a per-``(task, device)``
stream keyed only on ids, and the number of draws per upload depends
only on the *send* times (never on ``sim.now`` at delivery), so repeat
runs and batched-vs-legacy runs consume identical random sequences.
Duplicated deliveries share the primary's arrival time, and the
downstream :class:`~repro.cloud.sink.CloudIngestSink` dedup table folds
them exactly once; the FedAvg fold is error-free-transformed, so the
aggregate is bit-identical no matter the delivery order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.simkernel import Signal, TimeoutPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.actor import DeviceRoundOutcome
    from repro.observability.tracing import Tracer
    from repro.simkernel import RandomStreams, Simulator

#: Impairment kinds a window can schedule (mirrors the FaultSpec kinds
#: ``message_loss`` / ``message_duplication`` / ``service_outage``).
WINDOW_KINDS = ("loss", "duplication", "outage")


@dataclass
class ChannelWindow:
    """One scheduled impairment interval on the channel.

    ``prob`` is the extra loss/duplication probability while the window
    is active (ignored for ``outage``, which rejects every send).  An
    empty ``tenant`` applies the window to every task on the channel.
    """

    kind: str
    at: float
    until: float
    prob: float = 1.0
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_KINDS:
            raise ValueError(f"unknown channel window kind {self.kind!r}; known: {WINDOW_KINDS}")
        if self.until <= self.at:
            raise ValueError(
                f"channel window must end after it starts: until={self.until!r} <= at={self.at!r}"
            )
        if not 0.0 < self.prob <= 1.0:
            raise ValueError(f"channel window prob must be in (0, 1], got {self.prob!r}")

    def active(self, time: float, scope: str) -> bool:
        return self.at <= time < self.until and (not self.tenant or self.tenant == scope)


@dataclass
class UploadPlan:
    """The planned fate of one device-round upload.

    ``arrival`` is the simulated delivery time of the surviving send, or
    ``None`` when every attempt was lost (the upload is abandoned).
    """

    arrival: float | None
    retries: int
    duplicate: bool


@dataclass
class TransportCounters:
    """Transport bookkeeping for one round (or whole task)."""

    uploads: int = 0
    delivered: int = 0
    retries: int = 0
    duplicates: int = 0
    abandoned: int = 0
    late_drops: int = 0

    def merge(self, other: TransportCounters) -> None:
        self.uploads += other.uploads
        self.delivered += other.delivered
        self.retries += other.retries
        self.duplicates += other.duplicates
        self.abandoned += other.abandoned
        self.late_drops += other.late_drops

    def as_dict(self) -> dict[str, int]:
        return {
            "uploads": self.uploads,
            "delivered": self.delivered,
            "retries": self.retries,
            "duplicates": self.duplicates,
            "abandoned": self.abandoned,
            "late_drops": self.late_drops,
        }


@dataclass
class ChannelModel:
    """Declarative device→cloud channel behaviour.

    Base impairments apply for the whole run; :attr:`windows` add
    scheduled intervals on top (active probabilities combine as
    independent loss sources).  The retry policy is capped exponential
    backoff — attempt *k* waits ``min(retry_cap_s, retry_base_s *
    2**(k-1))`` scaled by a deterministic jitter in ``[0.5, 1.0)``.
    """

    latency_s: float = 0.0
    jitter_s: float = 0.0
    loss_prob: float = 0.0
    dup_prob: float = 0.0
    retry_base_s: float = 2.0
    retry_cap_s: float = 60.0
    max_attempts: int = 4
    windows: list[ChannelWindow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.latency_s < 0.0 or self.jitter_s < 0.0:
            raise ValueError(
                f"channel latency/jitter must be >= 0, got "
                f"latency_s={self.latency_s!r}, jitter_s={self.jitter_s!r}"
            )
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(f"loss_prob must be in [0, 1), got {self.loss_prob!r}")
        if not 0.0 <= self.dup_prob <= 1.0:
            raise ValueError(f"dup_prob must be in [0, 1], got {self.dup_prob!r}")
        if self.retry_base_s <= 0.0 or self.retry_cap_s <= 0.0:
            raise ValueError(
                f"retry backoff must be > 0, got base={self.retry_base_s!r}, "
                f"cap={self.retry_cap_s!r}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")

    def loss_prob_at(self, time: float, scope: str) -> float:
        """Combined loss probability at ``time`` (independent sources)."""
        keep = 1.0 - self.loss_prob
        for window in self.windows:
            if window.kind == "loss" and window.active(time, scope):
                keep *= 1.0 - window.prob
        return 1.0 - keep

    def dup_prob_at(self, time: float, scope: str) -> float:
        """Combined duplication probability at ``time``."""
        keep = 1.0 - self.dup_prob
        for window in self.windows:
            if window.kind == "duplication" and window.active(time, scope):
                keep *= 1.0 - window.prob
        return 1.0 - keep

    def in_outage(self, time: float, scope: str) -> bool:
        """Whether the ingestion service rejects sends at ``time``."""
        return any(
            window.kind == "outage" and window.active(time, scope) for window in self.windows
        )

    def active_for(self, scope: str) -> bool:
        """Whether this channel can perturb ``scope``'s uploads at all.

        A trivial model (no base impairment, no applicable window) lets
        the runner skip the channel entirely, keeping the lossless run
        byte-identical to no channel at all.
        """
        if self.latency_s > 0.0 or self.jitter_s > 0.0:
            return True
        if self.loss_prob > 0.0 or self.dup_prob > 0.0:
            return True
        return any(not window.tenant or window.tenant == scope for window in self.windows)

    def plan_upload(self, rng, t0: float, scope: str = "") -> UploadPlan:
        """Plan one upload that first becomes ready at time ``t0``.

        Draw counts depend only on the send times derived from ``t0``,
        never on the caller's clock, so the plan is identical whether
        the upload is routed per device (legacy) or from a columnar
        block (batched).
        """
        t_send = float(t0)
        for attempt in range(1, self.max_attempts + 1):
            if self.in_outage(t_send, scope):
                lost = True  # the service rejects the send outright
            else:
                p = self.loss_prob_at(t_send, scope)
                lost = p > 0.0 and rng.random() < p
            if not lost:
                arrival = t_send + self.latency_s
                if self.jitter_s > 0.0:
                    arrival += rng.random() * self.jitter_s
                q = self.dup_prob_at(t_send, scope)
                duplicate = q > 0.0 and rng.random() < q
                return UploadPlan(arrival=arrival, retries=attempt - 1, duplicate=duplicate)
            if attempt < self.max_attempts:
                backoff = min(self.retry_cap_s, self.retry_base_s * (2.0 ** (attempt - 1)))
                t_send += backoff * (0.5 + 0.5 * rng.random())
        return UploadPlan(arrival=None, retries=self.max_attempts - 1, duplicate=False)


class TransportChannel:
    """Simulation adapter: runs a :class:`ChannelModel` in front of a sink.

    Presents the :class:`~repro.cloud.sink.OutcomeSink` protocol to the
    execution tiers; plans each device's upload with a device-keyed rng
    stream and delivers survivors to ``inner`` through a
    :class:`TimeoutPool` at their (possibly retried, possibly late)
    arrival times.  Columnar blocks are materialized and routed per
    device in assignment order — the same draws, in the same order, as
    the legacy per-device path.

    The runner awaits :meth:`finish_round` after the round barrier so
    in-flight deliveries land before aggregation; deliveries scheduled
    in the past (block rows whose wave already completed) are clamped to
    *now*, which never changes the round-end time because the barrier
    already dominates every block timestamp.
    """

    def __init__(
        self,
        sim: Simulator,
        model: ChannelModel,
        inner,
        streams: RandomStreams,
        task_id: str,
        scope: str = "",
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.model = model
        self.inner = inner
        self.streams = streams
        self.task_id = task_id
        self.scope = scope
        self.tracer = tracer
        self.prefers_blocks = bool(getattr(inner, "prefers_blocks", True))
        self.pool = TimeoutPool(sim, name=f"transport.{task_id}")
        self.totals = TransportCounters()
        self.round = TransportCounters()
        self._deadline: float | None = None
        self._pending = 0
        self._drained: Signal | None = None

    def begin_round(self, round_index: int, deadline: float | None = None) -> None:
        """Reset per-round counters; drop deliveries at/after ``deadline``."""
        self.round = TransportCounters()
        self._deadline = deadline

    def accept(self, outcome: DeviceRoundOutcome) -> None:
        self._route(outcome)

    def accept_block(self, block) -> None:
        # Per-device routing keeps the draw order identical to the
        # legacy generator path; the exact-sum fold downstream makes the
        # delivery order irrelevant to the aggregate.
        for outcome in block.materialize():
            self._route(outcome)

    def _route(self, outcome: DeviceRoundOutcome) -> None:
        self.round.uploads += 1
        rng = self.streams.get(f"transport.{self.task_id}.{outcome.device_id}")
        t0 = float(outcome.finished_at)
        plan = self.model.plan_upload(rng, t0, self.scope)
        self.round.retries += plan.retries
        tracer = self.tracer
        if tracer is not None:
            # The channel is the transport boundary: record the device's
            # completion here (the fronted sink skips its own record) and
            # the upload's planned fate.  Pure appends — no draws, no
            # kernel events — so the traced run stays byte-identical.
            tracer.record_device(
                self.task_id,
                outcome.device_id,
                outcome.grade,
                outcome.round_index,
                outcome.n_samples,
                outcome.payload_bytes,
                t0,
            )
        if plan.arrival is None:
            self.round.abandoned += 1
            if tracer is not None:
                tracer.record_upload(
                    self.task_id, outcome.device_id, outcome.round_index,
                    t0, None, plan.retries, False, "abandoned",
                )
            return
        if self._deadline is not None and plan.arrival >= self._deadline:
            # Late primaries are dropped before duplication: a copy of a
            # late upload would be deduplicated against nothing.
            self.round.late_drops += 1
            if tracer is not None:
                tracer.record_upload(
                    self.task_id, outcome.device_id, outcome.round_index,
                    t0, plan.arrival, plan.retries, False, "late",
                )
            return
        self.round.delivered += 1
        if tracer is not None:
            tracer.record_upload(
                self.task_id, outcome.device_id, outcome.round_index,
                t0, plan.arrival, plan.retries, plan.duplicate, "delivered",
            )
        self._schedule(plan.arrival, outcome)
        if plan.duplicate:
            self.round.duplicates += 1
            self._schedule(plan.arrival, outcome)

    def _schedule(self, arrival: float, outcome: DeviceRoundOutcome) -> None:
        self._pending += 1
        self.pool.add_at(max(arrival, self.sim.now), self._deliver, outcome)

    def _deliver(self, outcome: DeviceRoundOutcome) -> None:
        try:
            self.inner.accept(outcome)
        finally:
            self._pending -= 1
            if self._pending == 0 and self._drained is not None:
                self._drained.fire(None)
                self._drained = None

    def finish_round(self):
        """Wait for in-flight deliveries, fold the round into the totals.

        A generator the runner drives with ``yield from``; returns the
        finished round's counters.
        """
        if self._pending > 0:
            self._drained = Signal(name=f"transport.{self.task_id}.drain")
            yield self._drained
        counters = self.round
        self.totals.merge(counters)
        return counters
