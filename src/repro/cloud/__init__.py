"""Cloud-side services: storage, metrics database, aggregation, monitoring.

In the paper's architecture the compute tiers upload results to shared
storage and notify cloud services through DeviceFlow; "cloud services then
retrieve the corresponding data from storage based on the received
messages for further processing" (§V-A).  The flagship cloud service is
model aggregation, triggered either by a sample-count threshold or on a
schedule — the two conditions §VI-C1 evaluates.  The transport module
models the imperfect device→cloud uplink in front of ingestion: loss,
retries with backoff, duplication, outages and deadline-based round
closure.
"""

from repro.cloud.aggregation import (
    AggregationRecord,
    AggregationService,
    AggregationTrigger,
    DeadlineTrigger,
    SampleThresholdTrigger,
    ScheduledTrigger,
)
from repro.cloud.database import MetricsDatabase
from repro.cloud.monitor import Monitor, MonitorEvent
from repro.cloud.sink import CallbackSink, CloudIngestSink, OutcomeSink, coerce_sink
from repro.cloud.storage import ObjectStorage, StoredObject
from repro.cloud.transport import (
    ChannelModel,
    ChannelWindow,
    TransportChannel,
    TransportCounters,
    UploadPlan,
)

__all__ = [
    "AggregationRecord",
    "AggregationService",
    "AggregationTrigger",
    "CallbackSink",
    "ChannelModel",
    "ChannelWindow",
    "CloudIngestSink",
    "DeadlineTrigger",
    "MetricsDatabase",
    "Monitor",
    "MonitorEvent",
    "ObjectStorage",
    "OutcomeSink",
    "SampleThresholdTrigger",
    "ScheduledTrigger",
    "StoredObject",
    "TransportChannel",
    "TransportCounters",
    "UploadPlan",
    "coerce_sink",
]
