"""The cloud metrics database.

PhoneMgr "retrieves information from these devices at a certain frequency,
organizes it in real-time, and uploads it to the cloud database for
storage" (§IV-C).  The database is a set of append-only tables of dict
records with a small query interface — enough to back the GUI-style
monitoring views and the experiment harness.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable
from typing import Any


class MetricsDatabase:
    """Append-only dict-record tables with filtered queries."""

    def __init__(self) -> None:
        self._tables: dict[str, list[dict[str, Any]]] = defaultdict(list)

    def insert(self, table: str, record: dict[str, Any]) -> None:
        """Append one record (shallow-copied) to ``table``."""
        if not table:
            raise ValueError("table name must be non-empty")
        if not isinstance(record, dict):
            raise TypeError(f"record must be a dict, got {type(record).__name__}")
        self._tables[table].append(dict(record))

    def insert_many(self, table: str, records: Iterable[dict[str, Any]]) -> int:
        """Append several records; returns how many."""
        count = 0
        for record in records:
            self.insert(table, record)
            count += 1
        return count

    def query(
        self,
        table: str,
        where: Callable[[dict[str, Any]], bool] | None = None,
        **equals: Any,
    ) -> list[dict[str, Any]]:
        """Records matching the predicate and/or field-equality filters.

        ``db.query("device_samples", serial="local-00")`` filters on
        equality; ``where`` adds an arbitrary predicate.
        """
        rows = self._tables.get(table, [])
        out = []
        for row in rows:
            if equals and any(row.get(k) != v for k, v in equals.items()):
                continue
            if where is not None and not where(row):
                continue
            out.append(row)
        return out

    def count(self, table: str, **equals: Any) -> int:
        """Number of matching records."""
        return len(self.query(table, **equals))

    def tables(self) -> list[str]:
        """Non-empty table names, sorted."""
        return sorted(name for name, rows in self._tables.items() if rows)

    def column(self, table: str, field: str, **equals: Any) -> list[Any]:
        """One field across matching records (missing fields skipped)."""
        return [row[field] for row in self.query(table, **equals) if field in row]

    def clear(self, table: str | None = None) -> None:
        """Drop one table, or everything."""
        if table is None:
            self._tables.clear()
        else:
            self._tables.pop(table, None)
