"""The aggregation service and its triggers.

§VI-C1: "In real federated learning scenarios, the cloud usually does not
know the exact number of participating devices or samples per training
round in advance.  Therefore, conditions must be set to trigger
aggregation.  Common triggers include reaching a threshold of total edge
training samples or reaching scheduled times."  Both trigger types are
implemented here and drive Figs. 9 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.cloud.database import MetricsDatabase
from repro.cloud.storage import ObjectStorage
from repro.data.avazu import DeviceDataset
from repro.deviceflow.messages import Message, MessageBlock
from repro.ml.fedavg import FedAvgAggregator, FedAvgPartial, ModelUpdate
from repro.ml.model import LogisticRegressionModel
from repro.simkernel import Simulator


@dataclass
class AggregationRecord:
    """One completed aggregation round on the cloud side."""

    round_index: int
    time: float
    n_updates: int
    n_samples: int
    test_loss: float | None = None
    test_accuracy: float | None = None
    test_auc: float | None = None
    train_loss: float | None = None
    train_accuracy: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)


class AggregationTrigger:
    """Base trigger; subclasses decide *when* the buffer folds."""

    def start(self, service: AggregationService) -> None:
        """Called once when the service starts (schedule timers here)."""

    def on_update(self, service: AggregationService) -> None:
        """Called after every buffered update."""

    def stop(self, service: AggregationService) -> None:
        """Called when the service shuts down."""


class SampleThresholdTrigger(AggregationTrigger):
    """Aggregate as soon as buffered training samples reach a threshold."""

    def __init__(self, threshold_samples: int) -> None:
        if threshold_samples <= 0:
            raise ValueError("threshold_samples must be positive")
        self.threshold_samples = int(threshold_samples)

    def on_update(self, service: AggregationService) -> None:
        while service.pending_samples >= self.threshold_samples:
            service.aggregate_now()


class ScheduledTrigger(AggregationTrigger):
    """Aggregate at a fixed period (the paper's "scheduled aggregation").

    Rounds with an empty buffer are skipped (nothing to fold), matching
    timed-aggregation deployments that no-op on idle periods.
    """

    def __init__(self, period_s: float, max_rounds: int | None = None) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if max_rounds is not None and max_rounds <= 0:
            raise ValueError("max_rounds must be positive when set")
        self.period_s = float(period_s)
        self.max_rounds = max_rounds
        self._fired = 0
        self._stopped = False

    def start(self, service: AggregationService) -> None:
        self._schedule_next(service)

    def stop(self, service: AggregationService) -> None:
        self._stopped = True

    def _schedule_next(self, service: AggregationService) -> None:
        if self._stopped:
            return
        if self.max_rounds is not None and self._fired >= self.max_rounds:
            return
        service.sim.schedule(self.period_s, self._fire, service)

    def _fire(self, service: AggregationService) -> None:
        if self._stopped:
            return
        self._fired += 1
        if service.pending_updates > 0:
            service.aggregate_now()
        self._schedule_next(service)


class DeadlineTrigger(AggregationTrigger):
    """Fold whatever arrived once, ``deadline_s`` after the service starts.

    The deadline-based round closure primitive: production FL rounds
    close on a clock with the partial fold over on-time reports.  An
    empty buffer at the deadline is a no-op — the round degrades
    gracefully instead of raising on a fully-lost cohort.
    """

    def __init__(self, deadline_s: float) -> None:
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s!r}")
        self.deadline_s = float(deadline_s)
        self._fired = False
        self._stopped = False

    def start(self, service: AggregationService) -> None:
        service.sim.schedule(self.deadline_s, self._fire, service)

    def stop(self, service: AggregationService) -> None:
        self._stopped = True

    def _fire(self, service: AggregationService) -> None:
        if self._stopped or self._fired:
            return
        self._fired = True
        if service.pending_updates > 0:
            service.aggregate_now()


class AggregationService:
    """Receives update messages, folds them with FedAvg, tracks metrics.

    Ingestion surface
    -----------------
    Exactly three entry points buffer work, and everything else (the
    triggers, :meth:`aggregate_now`, the counters) is downstream of them:

    * :meth:`receive_message` — the scalar DeviceFlow endpoint: one
      :class:`~repro.deviceflow.messages.Message`, payload fetched from
      storage.
    * :meth:`receive_block` — the columnar endpoint: one
      :class:`~repro.deviceflow.messages.MessageBlock` folds a whole
      round via the exact :class:`~repro.ml.fedavg.FedAvgPartial`
      primitive (bit-identical to the equivalent scalar stream, in any
      mix, by FedAvg partition invariance).
    * :meth:`receive_update` — direct scalar ingestion bypassing
      DeviceFlow and storage (experiment harnesses).

    Triggers observe the buffer only through ``pending_updates`` /
    ``pending_samples`` and fold it only through :meth:`aggregate_now`;
    note a block is buffered atomically, so a threshold trigger fires at
    block rather than message granularity on the columnar path.

    Parameters
    ----------
    sim:
        Shared simulator.
    storage:
        Shared object storage messages point into.
    trigger:
        Aggregation condition.
    model:
        The global model; ``None`` runs the service in counting mode
        (large-scale scalability sweeps with no numeric training).
    test_set:
        Optional held-out shard evaluated after every aggregation.
    train_eval_shards:
        Optional ``device_id -> shard`` map; when present, each
        aggregation also reports the aggregated model's metrics over the
        union of *contributing* devices' data, or — with
        ``train_eval_full`` — over the whole population (Fig. 9b's train
        accuracy, measuring how representative the aggregate is of the
        true distribution).
    train_eval_full:
        Evaluate train metrics over every shard instead of contributors.
    on_global_model:
        Callback ``(round_index, weights, bias)`` after each aggregation —
        the platform redistributes the model to devices with it.
    db:
        Optional metrics database receiving one row per aggregation.
    """

    def __init__(
        self,
        sim: Simulator,
        storage: ObjectStorage,
        trigger: AggregationTrigger,
        *,
        model: LogisticRegressionModel | None = None,
        test_set: DeviceDataset | None = None,
        train_eval_shards: dict[str, DeviceDataset] | None = None,
        train_eval_full: bool = False,
        on_global_model: Callable[[int, np.ndarray, float], None] | None = None,
        db: MetricsDatabase | None = None,
        name: str = "aggregation",
    ) -> None:
        self.sim = sim
        self.storage = storage
        self.trigger = trigger
        self.model = model
        self.test_set = test_set
        self.train_eval_shards = train_eval_shards or {}
        self.train_eval_full = train_eval_full
        self.on_global_model = on_global_model
        self.db = db
        self.name = name
        self.aggregator = FedAvgAggregator()
        self.history: list[AggregationRecord] = []
        self.messages_received = 0
        self.bytes_received = 0
        self.receive_log: list[tuple[float, int]] = []
        self._pending_sample_count = 0
        self._contributors: list[str] = []
        #: Block-path buffer: one exact partial per received block, merged
        #: with the scalar aggregator's own partial at fold time.
        self._partials: list[FedAvgPartial] = []
        self._partial_updates = 0
        self._round = 0
        self._started = False

    # ------------------------------------------------------------------
    @property
    def pending_updates(self) -> int:
        """Updates buffered since the last aggregation (scalar + block)."""
        if self.model is not None:
            return len(self.aggregator) + self._partial_updates
        return len(self._contributors)

    @property
    def pending_samples(self) -> int:
        """Training samples represented by the buffer."""
        return self._pending_sample_count

    @property
    def rounds_completed(self) -> int:
        """Aggregations performed so far."""
        return self._round

    def start(self) -> None:
        """Arm the trigger (idempotent)."""
        if not self._started:
            self._started = True
            self.trigger.start(self)

    def stop(self) -> None:
        """Disarm the trigger."""
        if self._started:
            self.trigger.stop(self)
            self._started = False

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def receive_message(self, message: Message) -> None:
        """DeviceFlow downstream endpoint: fetch and buffer the update."""
        self.messages_received += 1
        self.bytes_received += message.size_bytes
        self.receive_log.append((self.sim.now, 1))
        if self.model is not None:
            payload = self.storage.get(message.payload_ref)
            if not isinstance(payload, ModelUpdate):
                raise TypeError(
                    f"storage object {message.payload_ref!r} is not a ModelUpdate"
                )
            self.aggregator.add(payload)
        self._contributors.append(message.device_id)
        self._pending_sample_count += message.n_samples
        self.trigger.on_update(self)

    def receive_block(self, block: MessageBlock) -> None:
        """Columnar endpoint: buffer a whole round's updates in one fold.

        Counters advance in bulk (one ``receive_log`` entry of the
        block's size), and numeric payloads fold through
        :meth:`FedAvgPartial.from_arrays` — the exact primitive, so the
        global model after :meth:`aggregate_now` is bit-identical to the
        same updates streamed through :meth:`receive_message`, in any
        scalar/block mix.  Empty blocks are ignored.
        """
        n = len(block)
        if n == 0:
            return
        self.messages_received += n
        self.bytes_received += block.total_bytes
        self.receive_log.append((self.sim.now, n))
        if self.model is not None:
            if block.update_weights is None or block.update_biases is None:
                raise TypeError(
                    f"block for task {block.task_id!r} carries no stacked update "
                    "arrays but the service aggregates a model"
                )
            self._partials.append(
                FedAvgPartial.from_arrays(
                    block.update_weights, block.update_biases, block.n_samples
                )
            )
            self._partial_updates += n
        self._contributors.extend(block.device_ids)
        self._pending_sample_count += block.total_samples
        self.trigger.on_update(self)

    def receive_update(self, update: ModelUpdate) -> None:
        """Direct ingestion path (bypassing DeviceFlow and storage)."""
        self.messages_received += 1
        self.receive_log.append((self.sim.now, 1))
        if self.model is not None:
            self.aggregator.add(update)
        self._contributors.append(update.device_id)
        self._pending_sample_count += update.n_samples
        self.trigger.on_update(self)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def aggregate_now(self) -> AggregationRecord:
        """Fold the buffer into the global model and record metrics."""
        if self.pending_updates == 0:
            raise RuntimeError("nothing buffered to aggregate")
        self._round += 1
        contributors, self._contributors = self._contributors, []
        n_samples, self._pending_sample_count = self._pending_sample_count, 0
        record = AggregationRecord(
            round_index=self._round,
            time=self.sim.now,
            n_updates=len(contributors),
            n_samples=n_samples,
        )
        if self.model is not None:
            if self._partials:
                parts = list(self._partials)
                if len(self.aggregator):
                    parts.insert(0, self.aggregator.partial())
                self._partials = []
                self._partial_updates = 0
                weights, bias, _ = FedAvgAggregator.merge(parts)
            else:
                weights, bias, _ = self.aggregator.aggregate()
            self.model.set_params(weights, bias)
            self._evaluate(record, contributors)
            if self.on_global_model is not None:
                self.on_global_model(self._round, weights, bias)
        elif self.on_global_model is not None:
            self.on_global_model(self._round, np.zeros(1), 0.0)
        self.history.append(record)
        if self.db is not None:
            self.db.insert(
                "aggregations",
                {
                    "service": self.name,
                    "round": record.round_index,
                    "time": record.time,
                    "n_updates": record.n_updates,
                    "n_samples": record.n_samples,
                    "test_loss": record.test_loss,
                    "test_accuracy": record.test_accuracy,
                },
            )
        return record

    def _evaluate(self, record: AggregationRecord, contributors: list[str]) -> None:
        assert self.model is not None
        if self.test_set is not None:
            metrics = self.model.evaluate(self.test_set.features, self.test_set.labels)
            record.test_loss = metrics["log_loss"]
            record.test_accuracy = metrics["accuracy"]
            record.test_auc = metrics["auc"]
        shards = (
            list(self.train_eval_shards.values())
            if self.train_eval_full
            else [
                self.train_eval_shards[d]
                for d in set(contributors)
                if d in self.train_eval_shards
            ]
        )
        if shards:
            features = np.concatenate([s.features for s in shards])
            labels = np.concatenate([s.labels for s in shards])
            metrics = self.model.evaluate(features, labels)
            record.train_loss = metrics["log_loss"]
            record.train_accuracy = metrics["accuracy"]
