"""Shared object storage for model payloads and device results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class StoredObject:
    """One stored payload with accounting metadata."""

    key: str
    value: Any
    size_bytes: int
    stored_at: float
    writer: str = ""


class ObjectStorage:
    """A keyed blob store with transfer-time accounting.

    Values are arbitrary Python objects (serialized updates, model
    parameters, dataset shards); ``size_bytes`` drives the simulated
    transfer costs charged by the tiers that move the data.  The store
    itself is instantaneous — durability and placement are out of the
    paper's scope.
    """

    def __init__(self, bandwidth_bps: float = 1e9, latency_s: float = 0.01) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self._objects: dict[str, StoredObject] = {}
        self.total_bytes_written = 0
        self.total_bytes_read = 0
        self.put_count = 0
        self.get_count = 0

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def put(self, key: str, value: Any, size_bytes: int, now: float = 0.0, writer: str = "") -> StoredObject:
        """Store (or overwrite) a payload under ``key``."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        record = StoredObject(key=key, value=value, size_bytes=int(size_bytes), stored_at=now, writer=writer)
        self._objects[key] = record
        self.total_bytes_written += int(size_bytes)
        self.put_count += 1
        return record

    def get(self, key: str) -> Any:
        """Fetch a payload; raises ``KeyError`` if absent."""
        if key not in self._objects:
            raise KeyError(f"no object stored under {key!r}")
        record = self._objects[key]
        self.total_bytes_read += record.size_bytes
        self.get_count += 1
        return record.value

    def head(self, key: str) -> StoredObject:
        """Metadata of a stored object without a read charge."""
        if key not in self._objects:
            raise KeyError(f"no object stored under {key!r}")
        return self._objects[key]

    def delete(self, key: str) -> None:
        """Remove a payload."""
        if key not in self._objects:
            raise KeyError(f"no object stored under {key!r}")
        del self._objects[key]

    def transfer_duration(self, size_bytes: int) -> float:
        """Seconds to move ``size_bytes`` over the storage link."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        return self.latency_s + size_bytes / self.bandwidth_bps

    def keys(self) -> list[str]:
        """All stored keys, sorted."""
        return sorted(self._objects)
