"""Shared object storage for model payloads and device results."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

import numpy as np


@dataclass
class StoredObject:
    """One stored payload with accounting metadata."""

    key: str
    value: Any
    size_bytes: int
    stored_at: float
    writer: str = ""


class _StoredBlock:
    """Shared metadata of one ``put_block`` call (one object per block)."""

    __slots__ = ("values", "sizes", "times", "writers")

    def __init__(
        self,
        values: Sequence[Any],
        sizes: np.ndarray,
        times: np.ndarray,
        writers: Sequence[str] | str,
    ) -> None:
        self.values = values
        self.sizes = sizes
        self.times = times
        self.writers = writers

    def writer_at(self, position: int) -> str:
        return self.writers if isinstance(self.writers, str) else self.writers[position]


class _BlockSlot:
    """One key's two-field handle into a shared :class:`_StoredBlock`."""

    __slots__ = ("block", "position")

    def __init__(self, block: _StoredBlock, position: int) -> None:
        self.block = block
        self.position = position


class ObjectStorage:
    """A keyed blob store with transfer-time accounting.

    Values are arbitrary Python objects (serialized updates, model
    parameters, dataset shards); ``size_bytes`` drives the simulated
    transfer costs charged by the tiers that move the data.  The store
    itself is instantaneous — durability and placement are out of the
    paper's scope.

    Two write granularities share the same keyspace and counters:
    :meth:`put` stores one payload, :meth:`put_block` stores a whole
    columnar round (one dict update, vectorized byte accounting) with
    per-key reads, heads and deletes indistinguishable from ``n``
    scalar puts.
    """

    def __init__(self, bandwidth_bps: float = 1e9, latency_s: float = 0.01) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self._objects: dict[str, StoredObject | _BlockSlot] = {}
        self.total_bytes_written = 0
        self.total_bytes_read = 0
        self.put_count = 0
        self.get_count = 0

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def put(self, key: str, value: Any, size_bytes: int, *, now: float = 0.0, writer: str = "") -> StoredObject:
        """Store (or overwrite) a payload under ``key``.

        ``now`` and ``writer`` are record-shaping metadata and therefore
        keyword-only — a positional float after ``size_bytes`` was too
        easy to misread as another size.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        record = StoredObject(key=key, value=value, size_bytes=int(size_bytes), stored_at=now, writer=writer)
        self._objects[key] = record
        self.total_bytes_written += int(size_bytes)
        self.put_count += 1
        return record

    def put_block(
        self,
        keys: Sequence[str],
        values: Sequence[Any],
        size_bytes: int | np.ndarray,
        *,
        now: float | np.ndarray = 0.0,
        writers: Sequence[str] | str = "",
    ) -> int:
        """Store a whole block of payloads in one call; returns the count.

        Accounting is equivalent to ``n`` scalar :meth:`put` calls
        (``put_count += n``, ``total_bytes_written += sum(sizes)``), but
        the store performs ONE dict update and allocates one shared
        metadata object plus a two-field slot per key — no per-key
        :class:`StoredObject` until someone reads it.  ``size_bytes``,
        ``now`` and ``writers`` each accept either one broadcast value or
        a per-key sequence; ``values`` may be any lazy sequence (indexed
        only on :meth:`get`/:meth:`head`).
        """
        n = len(keys)
        if len(values) != n:
            raise ValueError(f"got {n} keys but {len(values)} values")
        if not isinstance(writers, str) and len(writers) != n:
            raise ValueError(f"got {n} keys but {len(writers)} writers")
        if n == 0:
            return 0
        sizes = np.broadcast_to(np.asarray(size_bytes, dtype=np.int64), (n,))
        if sizes.min() < 0:
            raise ValueError("size_bytes must be >= 0")
        times = np.broadcast_to(np.asarray(now, dtype=np.float64), (n,))
        block = _StoredBlock(values, sizes, times, writers)
        self._objects.update(
            (key, _BlockSlot(block, position)) for position, key in enumerate(keys)
        )
        self.total_bytes_written += int(sizes.sum())
        self.put_count += n
        return n

    def get(self, key: str) -> Any:
        """Fetch a payload; raises ``KeyError`` if absent."""
        record = self._objects.get(key)
        if record is None:
            raise KeyError(f"no object stored under {key!r}")
        if type(record) is _BlockSlot:
            self.total_bytes_read += int(record.block.sizes[record.position])
            self.get_count += 1
            return record.block.values[record.position]
        self.total_bytes_read += record.size_bytes
        self.get_count += 1
        return record.value

    def head(self, key: str) -> StoredObject:
        """Metadata of a stored object without a read charge."""
        record = self._objects.get(key)
        if record is None:
            raise KeyError(f"no object stored under {key!r}")
        if type(record) is _BlockSlot:
            block, position = record.block, record.position
            return StoredObject(
                key=key,
                value=block.values[position],
                size_bytes=int(block.sizes[position]),
                stored_at=float(block.times[position]),
                writer=block.writer_at(position),
            )
        return record

    def delete(self, key: str) -> None:
        """Remove a payload."""
        if key not in self._objects:
            raise KeyError(f"no object stored under {key!r}")
        del self._objects[key]

    def transfer_duration(self, size_bytes: int) -> float:
        """Seconds to move ``size_bytes`` over the storage link."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        return self.latency_s + size_bytes / self.bandwidth_bps

    def keys(self) -> list[str]:
        """All stored keys, sorted."""
        return sorted(self._objects)
