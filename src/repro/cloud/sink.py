"""Outcome sinks: the cloud-side ingestion surface of the compute tiers.

PRs 1-5 batched the kernel, the tiers and the numeric math, which moved
the profiled bottleneck onto per-outcome cloud-side Python: one
``ObjectStorage.put``, one :class:`~repro.deviceflow.messages.Message`
and one aggregation fold per simulated device.  SimDC's own cloud design
treats aggregation as buffer-and-fold over whole rounds (§VI-C), so the
delivery API mirrors that: an :class:`OutcomeSink` receives either one
outcome at a time (``accept``) or a whole wave as a columnar block
(``accept_block``), and :class:`CloudIngestSink` implements the full
cloud path — storage, messaging, aggregation — for both granularities
with byte-identical simulated results.

Scalar → block method map (see README, "Cloud tier"):

========================  ==============================
per-device (scalar)       per-round (columnar block)
========================  ==============================
``sink.accept``           ``sink.accept_block``
``storage.put``           ``storage.put_block``
``Message``               ``MessageBlock``
``deviceflow.submit``     ``deviceflow.submit_block``
``service.receive_message``  ``service.receive_block``
``db.insert``             ``db.insert_many``
========================  ==============================
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.cloud.aggregation import AggregationService
from repro.cloud.storage import ObjectStorage
from repro.deviceflow.controller import DeviceFlow
from repro.deviceflow.messages import Message, MessageBlock
from repro.simkernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily: cluster.runner imports this module for coerce_sink,
    # so a runtime import here would be circular.
    from repro.cluster.actor import DeviceRoundOutcome
    from repro.cluster.runner import ColumnarOutcomes
    from repro.observability.tracing import Tracer


@runtime_checkable
class OutcomeSink(Protocol):
    """Receives device-round results from the execution tiers.

    The tiers deliver through exactly one of two granularities:

    * :meth:`accept` — one :class:`DeviceRoundOutcome` at a time, fired
      *as each device completes* (the generator path, benchmark phones,
      and any batched plan whose sink asks for streaming).
    * :meth:`accept_block` — one :class:`ColumnarOutcomes` block per
      batched plan, fired once at the block's last completion time.

    The optional class/instance attribute ``prefers_blocks`` (default
    ``True`` when absent) tells a tier which granularity to use for
    plans that support both; sinks that need per-device delivery (e.g.
    anything feeding DeviceFlow mid-round) set it to ``False``.
    """

    def accept(self, outcome: DeviceRoundOutcome) -> None:
        """Ingest one device's round result."""
        ...  # pragma: no cover - protocol

    def accept_block(self, block: ColumnarOutcomes) -> None:
        """Ingest a whole batched plan's round as one columnar block."""
        ...  # pragma: no cover - protocol


class CallbackSink:
    """Adapter wrapping a bare ``Callable[[DeviceRoundOutcome], None]``.

    This is the compatibility shim behind the deprecated ``on_outcome``
    callable parameter of the tiers' ``run_round``: callbacks observe
    devices one at a time, so the sink requests streaming delivery and
    materializes any block it is handed.
    """

    prefers_blocks = False

    def __init__(self, callback: Callable[[DeviceRoundOutcome], None]) -> None:
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {type(callback).__name__}")
        self.callback = callback

    def accept(self, outcome: DeviceRoundOutcome) -> None:
        self.callback(outcome)

    def accept_block(self, block: ColumnarOutcomes) -> None:
        for outcome in block.materialize():
            self.callback(outcome)


def coerce_sink(sink: OutcomeSink | Callable[[DeviceRoundOutcome], None] | None) -> OutcomeSink | None:
    """Normalize a ``run_round`` sink argument to an :class:`OutcomeSink`.

    ``None`` passes through (the tiers then record columnar blocks with
    no delivery at all).  A bare callable is deprecated: it is wrapped in
    a :class:`CallbackSink` with a :class:`DeprecationWarning`.
    """
    if sink is None:
        return None
    if isinstance(sink, OutcomeSink):
        return sink
    if callable(sink):
        warnings.warn(
            "passing a bare callable as on_outcome is deprecated; wrap it in "
            "repro.cloud.CallbackSink (or implement the OutcomeSink protocol)",
            DeprecationWarning,
            stacklevel=3,
        )
        return CallbackSink(sink)
    raise TypeError(
        f"sink must implement OutcomeSink (accept/accept_block) or be a "
        f"callable, got {type(sink).__name__}"
    )


class _BlockUpdateView:
    """Lazy per-device view of a block's stacked model updates.

    ``ObjectStorage.put_block`` stores the whole sequence behind one
    shared handle; a :class:`~repro.ml.fedavg.ModelUpdate` object is only
    built if someone actually ``get``\\ s that device's key — the batched
    aggregation path never does, it folds the stacked arrays directly.
    """

    __slots__ = ("_block",)

    def __init__(self, block: ColumnarOutcomes) -> None:
        self._block = block

    def __len__(self) -> int:
        return len(self._block)

    def __getitem__(self, position: int):
        return self._block.update_at(position)


class CloudIngestSink:
    """The production sink: storage + DeviceFlow/aggregation ingestion.

    Scalar delivery (:meth:`accept`) reproduces the legacy per-outcome
    hot loop exactly: one storage put (numeric runs), one
    :class:`Message`, then either a DeviceFlow submission or a direct
    ``service.receive_message``.  Block delivery (:meth:`accept_block`)
    performs the same ingestion wholesale: one ``storage.put_block``
    stamped with the block's per-device completion times, one
    :class:`MessageBlock`, one ``service.receive_block`` fold — with the
    global model bit-identical to the scalar path by FedAvg partition
    invariance.

    Parameters
    ----------
    sim / task_id / storage / service:
        Cloud plumbing and the owning task.
    deviceflow:
        When set, scalar outcomes are submitted to DeviceFlow instead of
        delivered directly; traffic shaping samples per-device arrival
        times mid-round, so a flow-connected sink always requests
        streaming delivery (``prefers_blocks`` is forced ``False``).
    prefer_blocks:
        Ask batched plans for whole-round blocks (the default when no
        DeviceFlow is attached).
    dedup:
        Arm the idempotent-ingestion table: every ``(device, round)``
        upload folds exactly once, duplicated/retried deliveries are
        counted in ``duplicate_drops`` and discarded.  Armed whenever a
        lossy transport channel fronts the sink.

    When neither dedup nor a round deadline is armed, every ingestion
    path is byte-for-byte the ungated fast path — the gate costs nothing
    unless the transport layer is in play.
    """

    def __init__(
        self,
        sim: Simulator,
        task_id: str,
        storage: ObjectStorage,
        service: AggregationService,
        deviceflow: DeviceFlow | None = None,
        prefer_blocks: bool = True,
        dedup: bool = False,
        tracer: Tracer | None = None,
        trace_devices: bool = True,
    ) -> None:
        self.sim = sim
        self.task_id = task_id
        self.storage = storage
        self.service = service
        self.deviceflow = deviceflow
        self.prefers_blocks = bool(prefer_blocks) and deviceflow is None
        self.dedup = bool(dedup)
        # ``trace_devices`` is False when a TransportChannel fronts this
        # sink — the channel records each device completion instead
        # (deliveries here would otherwise double-record, once per retry
        # duplicate).  Ingest-gate drops are always recorded here.
        self.tracer = tracer
        self._trace_devices = tracer is not None and trace_devices
        #: Uploads admitted / dropped by the ingestion gate.
        self.delivered = 0
        self.duplicate_drops = 0
        self.late_drops = 0
        self._seen: set[tuple[str, int]] = set()
        self._deadlines: dict[int, float] = {}
        self._guarded = self.dedup

    # ------------------------------------------------------------------
    def begin_round(self, round_index: int, deadline: float | None = None) -> None:
        """Arm the ingestion gate for one round.

        ``deadline`` is an absolute simulated time: scalar deliveries at
        or after it (and block rows finishing at or after it) are
        dropped as late instead of folded.
        """
        if deadline is not None:
            self._deadlines[round_index] = float(deadline)
            self._guarded = True

    def _admit(self, device_id: str, round_index: int, when: float) -> bool:
        """Late/duplicate gate for one upload; updates the counters."""
        deadline = self._deadlines.get(round_index)
        if deadline is not None and when >= deadline:
            self.late_drops += 1
            if self.tracer is not None:
                self.tracer.record_ingest_drop(self.task_id, device_id, round_index, when, "late")
            return False
        if self.dedup:
            key = (device_id, round_index)
            if key in self._seen:
                self.duplicate_drops += 1
                if self.tracer is not None:
                    self.tracer.record_ingest_drop(
                        self.task_id, device_id, round_index, when, "duplicate"
                    )
                return False
            self._seen.add(key)
        self.delivered += 1
        return True

    def _admit_block(self, block: ColumnarOutcomes) -> list[int] | None:
        """Gate a whole block; ``None`` means every row was admitted."""
        deadline = self._deadlines.get(block.round_index)
        if not self.dedup:
            if deadline is None:
                self.delivered += len(block)
                return None
            late = np.asarray(block.finished_at) >= deadline
            n_late = int(late.sum())
            if n_late == 0:
                self.delivered += len(block)
                return None
            self.late_drops += n_late
            if self.tracer is not None:
                for position in np.flatnonzero(late):
                    self.tracer.record_ingest_drop(
                        self.task_id,
                        block.plan.assignments[position].device_id,
                        block.round_index,
                        float(block.finished_at[position]),
                        "late",
                    )
            keep = np.flatnonzero(~late).tolist()
            self.delivered += len(keep)
            return keep
        keep = []
        dropped = False
        for position, assignment in enumerate(block.plan.assignments):
            when = float(block.finished_at[position])
            if deadline is not None and when >= deadline:
                self.late_drops += 1
                dropped = True
                if self.tracer is not None:
                    self.tracer.record_ingest_drop(
                        self.task_id, assignment.device_id, block.round_index, when, "late"
                    )
                continue
            key = (assignment.device_id, block.round_index)
            if key in self._seen:
                self.duplicate_drops += 1
                dropped = True
                if self.tracer is not None:
                    self.tracer.record_ingest_drop(
                        self.task_id, assignment.device_id, block.round_index, when, "duplicate"
                    )
                continue
            self._seen.add(key)
            keep.append(position)
        self.delivered += len(keep)
        return keep if dropped else None

    # ------------------------------------------------------------------
    def accept(self, outcome: DeviceRoundOutcome) -> None:
        """Per-device ingestion (the legacy ``_handle_outcome`` semantics)."""
        if self._trace_devices:
            self.tracer.record_device(
                self.task_id,
                outcome.device_id,
                outcome.grade,
                outcome.round_index,
                outcome.n_samples,
                outcome.payload_bytes,
                float(outcome.finished_at),
            )
        # Flow-connected sinks gate at dispatcher delivery instead
        # (:meth:`flow_receive`): a submission is not an ingestion yet.
        if (
            self._guarded
            and self.deviceflow is None
            and not self._admit(outcome.device_id, outcome.round_index, self.sim.now)
        ):
            return
        self._ingest(outcome)

    def _ingest(self, outcome: DeviceRoundOutcome) -> None:
        ref = f"{self.task_id}/{outcome.device_id}/r{outcome.round_index}"
        if outcome.update is not None:
            self.storage.put(
                ref, outcome.update, outcome.payload_bytes, now=self.sim.now,
                writer=outcome.device_id,
            )
        message = Message(
            task_id=self.task_id,
            device_id=outcome.device_id,
            round_index=outcome.round_index,
            payload_ref=ref,
            size_bytes=outcome.payload_bytes,
            n_samples=outcome.n_samples,
            metadata={"grade": outcome.grade},
        )
        if self.deviceflow is not None:
            self.deviceflow.submit(message)
        else:
            self.service.receive_message(message)

    def accept_block(self, block: ColumnarOutcomes) -> None:
        """Whole-round ingestion: one put, one message block, one fold."""
        n = len(block)
        if n == 0:
            return
        if self._trace_devices:
            # O(1): the tracer keeps a reference to the columnar block
            # and expands it to per-device records at assembly time.
            self.tracer.record_block(self.task_id, block)
        if self._guarded and self.deviceflow is None:
            keep = self._admit_block(block)
            if keep is not None:
                # Rows were dropped: ingest the survivors per device (in
                # block order).  The exact-sum fold makes the aggregate
                # bit-identical to a filtered block ingest.
                outcomes = block.materialize()
                for position in keep:
                    self._ingest(outcomes[position])
                return
        round_index = block.round_index
        device_ids = [a.device_id for a in block.plan.assignments]
        refs = [f"{self.task_id}/{d}/r{round_index}" for d in device_ids]
        has_updates = block.update_weights is not None and block.update_biases is not None
        if has_updates:
            self.storage.put_block(
                refs,
                _BlockUpdateView(block),
                block.payload_bytes,
                now=block.finished_at,
                writers=device_ids,
            )
        message_block = MessageBlock(
            task_id=self.task_id,
            round_index=round_index,
            device_ids=device_ids,
            payload_refs=refs,
            size_bytes=block.payload_bytes,
            n_samples=block.n_samples_array(),
            finished_at=block.finished_at,
            metadata={"grade": block.plan.grade},
            update_weights=block.update_weights if has_updates else None,
            update_biases=block.update_biases if has_updates else None,
        )
        if self.deviceflow is not None:
            self.deviceflow.submit_block(message_block)
        else:
            self.service.receive_block(message_block)

    # ------------------------------------------------------------------
    def flow_receive(self, message: Message) -> None:
        """DeviceFlow downstream endpoint with the ingestion gate applied.

        Flow-dispatched messages reach the cloud at dispatcher delivery
        time, so the late/duplicate check runs against ``sim.now`` here
        rather than at outcome production.
        """
        if self._guarded and not self._admit(
            message.device_id, message.round_index, self.sim.now
        ):
            return
        self.service.receive_message(message)
