"""Task and platform monitoring — the GUI's data source.

The paper's users "monitor various computational metrics, edge device
performance, and updates to cloud services throughout the task execution
process via the GUI" (§III-C).  The GUI itself is presentation; this
module captures everything it would show as a queryable event log plus
counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.simkernel import Simulator


@dataclass
class MonitorEvent:
    """One timestamped platform event."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)


class Monitor:
    """Chronological event log with per-kind counters and summaries."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events: list[MonitorEvent] = []
        self.counters: Counter = Counter()

    def log(self, kind: str, **fields: Any) -> MonitorEvent:
        """Record an event at the current simulated time."""
        if not kind:
            raise ValueError("event kind must be non-empty")
        event = MonitorEvent(time=self.sim.now, kind=kind, fields=fields)
        self.events.append(event)
        self.counters[kind] += 1
        return event

    def of_kind(self, kind: str) -> list[MonitorEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def last(self, kind: str) -> Optional[MonitorEvent]:
        """Most recent event of one kind."""
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    def between(self, start: float, end: float) -> list[MonitorEvent]:
        """Events with ``start <= time <= end``."""
        return [e for e in self.events if start <= e.time <= end]

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        return dict(self.counters)

    def timeline(self, kind: str, value_field: str) -> list[tuple[float, Any]]:
        """``(time, fields[value_field])`` series for plotting."""
        return [
            (e.time, e.fields[value_field]) for e in self.of_kind(kind) if value_field in e.fields
        ]
