"""Task and platform monitoring — the GUI's data source.

The paper's users "monitor various computational metrics, edge device
performance, and updates to cloud services throughout the task execution
process via the GUI" (§III-C).  The GUI itself is presentation; this
module captures everything it would show as a queryable event log plus
counters.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.simkernel import Simulator


@dataclass
class MonitorEvent:
    """One timestamped platform event."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)


class EventsView(Sequence):
    """A read-only, zero-copy view over one kind's event bucket.

    :meth:`Monitor.of_kind` used to copy the full per-kind list on every
    call — hot in KPI extraction and in live alarm evaluation, where the
    same kinds are queried per event over logs with hundreds of
    thousands of entries.  This view wraps the live bucket instead:
    indexing, slicing, iteration and equality against any sequence work,
    mutation does not.  The view is *live* — events logged after it was
    taken are visible through it.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Sequence[MonitorEvent]) -> None:
        self._events = events

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            # A slice of a view is a view: callers chain slices and the
            # trace assembler's time-bounded helpers without paying a
            # copy (the sliced snapshot is immutable, so the live-bucket
            # caveat above does not extend to it).
            return EventsView(self._events[index])
        return self._events[index]

    def between(self, start: float, end: float) -> EventsView:
        """Events with ``start <= time <= end`` as a view.

        Event buckets are chronological (events are logged at the
        simulator's current time), so the window is located by bisection
        — O(log n) instead of a full scan.
        """
        lo = bisect_left(self._events, start, key=lambda e: e.time)
        hi = bisect_right(self._events, end, key=lambda e: e.time)
        return EventsView(self._events[lo:hi])

    def __iter__(self) -> Iterator[MonitorEvent]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventsView):
            other = other._events
        if isinstance(other, (list, tuple)):
            return len(self._events) == len(other) and all(
                a == b for a, b in zip(self._events, other)
            )
        return NotImplemented

    def __hash__(self) -> None:  # pragma: no cover - mutable view
        raise TypeError("EventsView is unhashable (it reflects a live bucket)")

    def __repr__(self) -> str:
        return f"EventsView({list(self._events)!r})"


_EMPTY: tuple[MonitorEvent, ...] = ()


class Monitor:
    """Chronological event log with per-kind counters and summaries.

    Events are indexed by kind as they arrive, so :meth:`of_kind` and
    :meth:`last` cost O(matches) / O(1) instead of rescanning the whole
    log — scenario KPI extraction queries a handful of kinds out of logs
    with hundreds of thousands of entries.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events: list[MonitorEvent] = []
        self.counters: Counter = Counter()
        self._by_kind: dict[str, list[MonitorEvent]] = {}
        self._subscribers: list[Callable[[MonitorEvent], None]] = []

    def subscribe(self, callback: Callable[[MonitorEvent], None]) -> Callable:
        """Register a streaming consumer called on every logged event.

        Subscribers run synchronously inside :meth:`log`, in subscription
        order, *after* the event is indexed — a subscriber that logs
        further events (the alarm engine does) re-enters :meth:`log`
        safely, and those nested events are dispatched too.  Subscribers
        must not raise: an exception propagates to whatever platform code
        logged the event.  Returns ``callback`` (handy for tests).
        """
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[MonitorEvent], None]) -> None:
        """Detach a previously subscribed consumer."""
        self._subscribers.remove(callback)

    def log(self, kind: str, **fields: Any) -> MonitorEvent:
        """Record an event at the current simulated time."""
        if not kind:
            raise ValueError("event kind must be non-empty")
        event = MonitorEvent(time=self.sim.now, kind=kind, fields=fields)
        self.events.append(event)
        self._by_kind.setdefault(kind, []).append(event)
        self.counters[kind] += 1
        # Dispatch over a snapshot: a subscriber that subscribes or
        # unsubscribes while being dispatched (tear-down on a terminal
        # alarm, say) must not shift the live list under this loop.
        # Late subscribers see the *next* event; a same-dispatch
        # unsubscribee still receives this one.
        for subscriber in tuple(self._subscribers):
            subscriber(event)
        return event

    def of_kind(self, kind: str) -> Sequence[MonitorEvent]:
        """All events of one kind, in order, as a read-only live view.

        The view is zero-copy (the old list copy dominated KPI
        extraction); callers that need an independent snapshot take
        ``list(monitor.of_kind(kind))`` explicitly.
        """
        return EventsView(self._by_kind.get(kind, _EMPTY))

    def count_kind(self, kind: str) -> int:
        """How many events of one kind were logged — O(1), no view built."""
        return self.counters.get(kind, 0)

    def last(self, kind: str) -> MonitorEvent | None:
        """Most recent event of one kind."""
        bucket = self._by_kind.get(kind)
        return bucket[-1] if bucket else None

    def between(self, start: float, end: float) -> list[MonitorEvent]:
        """Events with ``start <= time <= end``."""
        return [e for e in self.events if start <= e.time <= end]

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        return dict(self.counters)

    def timeline(self, kind: str, value_field: str) -> list[tuple[float, Any]]:
        """``(time, fields[value_field])`` series for plotting."""
        return [
            (e.time, e.fields[value_field]) for e in self.of_kind(kind) if value_field in e.fields
        ]
