"""Task and platform monitoring — the GUI's data source.

The paper's users "monitor various computational metrics, edge device
performance, and updates to cloud services throughout the task execution
process via the GUI" (§III-C).  The GUI itself is presentation; this
module captures everything it would show as a queryable event log plus
counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.simkernel import Simulator


@dataclass
class MonitorEvent:
    """One timestamped platform event."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)


class Monitor:
    """Chronological event log with per-kind counters and summaries.

    Events are indexed by kind as they arrive, so :meth:`of_kind` and
    :meth:`last` cost O(matches) / O(1) instead of rescanning the whole
    log — scenario KPI extraction queries a handful of kinds out of logs
    with hundreds of thousands of entries.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events: list[MonitorEvent] = []
        self.counters: Counter = Counter()
        self._by_kind: dict[str, list[MonitorEvent]] = {}

    def log(self, kind: str, **fields: Any) -> MonitorEvent:
        """Record an event at the current simulated time."""
        if not kind:
            raise ValueError("event kind must be non-empty")
        event = MonitorEvent(time=self.sim.now, kind=kind, fields=fields)
        self.events.append(event)
        self._by_kind.setdefault(kind, []).append(event)
        self.counters[kind] += 1
        return event

    def of_kind(self, kind: str) -> list[MonitorEvent]:
        """All events of one kind, in order."""
        return list(self._by_kind.get(kind, ()))

    def last(self, kind: str) -> MonitorEvent | None:
        """Most recent event of one kind."""
        bucket = self._by_kind.get(kind)
        return bucket[-1] if bucket else None

    def between(self, start: float, end: float) -> list[MonitorEvent]:
        """Events with ``start <= time <= end``."""
        return [e for e in self.events if start <= e.time <= end]

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        return dict(self.counters)

    def timeline(self, kind: str, value_field: str) -> list[tuple[float, Any]]:
        """``(time, fields[value_field])`` series for plotting."""
        return [
            (e.time, e.fields[value_field]) for e in self.of_kind(kind) if value_field in e.fields
        ]
