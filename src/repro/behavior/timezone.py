"""Timezone assignment for simulated device populations."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

#: A coarse population-weighted UTC-offset distribution (hour offsets and
#: relative weights): Asia-heavy, with European and American clusters —
#: the Fig. 3 scenario mixes UTC+8, UTC-6 and UTC-4 devices.
DEFAULT_OFFSET_WEIGHTS: tuple[tuple[int, float], ...] = (
    (-8, 0.03), (-6, 0.06), (-5, 0.07), (-4, 0.04), (-3, 0.04),
    (0, 0.05), (1, 0.10), (2, 0.06), (3, 0.06),
    (5, 0.12), (6, 0.05), (7, 0.06), (8, 0.18), (9, 0.06),
)


class TimezoneMixture:
    """Draws per-device UTC offsets from a population distribution.

    Parameters
    ----------
    offset_weights:
        ``(utc_offset_hours, weight)`` pairs; weights are normalised.
    seed:
        Draw reproducibility.
    """

    def __init__(
        self,
        offset_weights: Sequence[tuple[int, float]] = DEFAULT_OFFSET_WEIGHTS,
        seed: int = 0,
    ) -> None:
        offset_weights = list(offset_weights)
        if not offset_weights:
            raise ValueError("at least one timezone is required")
        if any(w <= 0 for _, w in offset_weights):
            raise ValueError("weights must be positive")
        self.offsets = np.array([o for o, _ in offset_weights], dtype=np.int32)
        weights = np.array([w for _, w in offset_weights], dtype=np.float64)
        self.weights = weights / weights.sum()
        self._rng = np.random.default_rng(np.random.SeedSequence((seed, 0x72)))

    def sample(self, n_devices: int) -> np.ndarray:
        """UTC offsets (hours) for ``n_devices``."""
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        return self._rng.choice(self.offsets, size=n_devices, p=self.weights)

    def local_hour(self, utc_hour: float, offset: int) -> float:
        """Local wall-clock hour in ``[0, 24)`` for a device."""
        return (utc_hour + offset) % 24.0

    def offset_fractions(self) -> dict[int, float]:
        """The normalised population share per UTC offset."""
        return {int(o): float(w) for o, w in zip(self.offsets, self.weights)}
