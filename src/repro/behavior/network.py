"""Network-condition profiles for simulated devices.

Fig. 3 shows devices on wifi, GPRS, and flight mode; network condition
determines upload bandwidth, latency and the chance a transmission fails —
the physical grounding of DeviceFlow's dropout probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


@dataclass(frozen=True)
class NetworkProfile:
    """Connectivity class of a device.

    Attributes
    ----------
    name:
        Profile label.
    bandwidth_bps:
        Sustained uplink throughput (0 = disconnected).
    latency_s:
        Per-transfer latency floor.
    failure_prob:
        Chance an individual upload attempt fails.
    """

    name: str
    bandwidth_bps: float
    latency_s: float
    failure_prob: float

    def __post_init__(self) -> None:
        if self.bandwidth_bps < 0 or self.latency_s < 0:
            raise ValueError(f"invalid network profile {self.name!r}")
        if not 0.0 <= self.failure_prob <= 1.0:
            raise ValueError("failure_prob must be in [0, 1]")

    @property
    def connected(self) -> bool:
        """Whether any traffic can flow at all."""
        return self.bandwidth_bps > 0

    def upload_duration(self, n_bytes: int) -> float:
        """Seconds to upload ``n_bytes`` (``inf`` when disconnected)."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        if not self.connected:
            return float("inf")
        return self.latency_s + n_bytes / self.bandwidth_bps


WIFI = NetworkProfile("wifi", bandwidth_bps=40e6 / 8, latency_s=0.02, failure_prob=0.01)
LTE = NetworkProfile("lte", bandwidth_bps=12e6 / 8, latency_s=0.05, failure_prob=0.05)
GPRS = NetworkProfile("gprs", bandwidth_bps=56e3 / 8, latency_s=0.6, failure_prob=0.20)
FLIGHT_MODE = NetworkProfile("flight-mode", bandwidth_bps=0.0, latency_s=0.0, failure_prob=1.0)

#: Default population mix: mostly wifi, some cellular, a sliver offline.
DEFAULT_NETWORK_MIX: tuple[tuple[NetworkProfile, float], ...] = (
    (WIFI, 0.62),
    (LTE, 0.28),
    (GPRS, 0.07),
    (FLIGHT_MODE, 0.03),
)


class NetworkMixture:
    """Assigns network profiles to a device population."""

    def __init__(
        self,
        mix: Sequence[tuple[NetworkProfile, float]] = DEFAULT_NETWORK_MIX,
        seed: int = 0,
    ) -> None:
        mix = list(mix)
        if not mix:
            raise ValueError("at least one network profile is required")
        if any(w <= 0 for _, w in mix):
            raise ValueError("weights must be positive")
        self.profiles = [p for p, _ in mix]
        weights = np.array([w for _, w in mix], dtype=np.float64)
        self.weights = weights / weights.sum()
        self._rng = np.random.default_rng(np.random.SeedSequence((seed, 0x4E7)))

    def sample(self, n_devices: int) -> list[NetworkProfile]:
        """One profile per device."""
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        indices = self._rng.choice(len(self.profiles), size=n_devices, p=self.weights)
        return [self.profiles[i] for i in indices]

    def expected_failure_prob(self) -> float:
        """Population-average upload failure probability.

        A principled default for DeviceFlow's per-message dropout ``p``.
        """
        return float(sum(w * p.failure_prob for p, w in zip(self.profiles, self.weights)))
