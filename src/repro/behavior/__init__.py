"""Device-behaviour models: timezones, networks, availability, dropout.

§V motivates DeviceFlow with real-world phone populations that differ in
"timezones, environmental networks, user actions, and inherent
variability" (Fig. 3).  This package provides generative models of those
factors; their aggregate upload-rate curves are exactly the traffic curves
DeviceFlow's time-interval strategy consumes, closing the loop between
per-device behaviour and population-level traffic shaping.
"""

from repro.behavior.availability import DiurnalAvailability, population_traffic_curve
from repro.behavior.dropout import DropoutModel
from repro.behavior.network import (
    FLIGHT_MODE,
    GPRS,
    LTE,
    WIFI,
    NetworkMixture,
    NetworkProfile,
)
from repro.behavior.timezone import TimezoneMixture

__all__ = [
    "DiurnalAvailability",
    "DropoutModel",
    "FLIGHT_MODE",
    "GPRS",
    "LTE",
    "NetworkMixture",
    "NetworkProfile",
    "TimezoneMixture",
    "WIFI",
    "population_traffic_curve",
]
