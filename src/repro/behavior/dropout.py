"""Per-round device dropout models (§VI-C2's final experiment)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class DropoutModel:
    """Decides which devices fail to deliver their update each round.

    Supports the paper's independent-Bernoulli dropout (probability 0.3 /
    0.7 / 0.9 in Fig. 11) plus optional per-device *stickiness*: a device
    that dropped last round is more likely to drop again, modelling
    persistent connectivity problems rather than i.i.d. flakiness.

    Parameters
    ----------
    probability:
        Base per-round dropout probability.
    stickiness:
        In ``[0, 1)``; 0 reproduces independent dropout.  With stickiness
        ``s``, a device's effective probability is
        ``p + s * (1 - p)`` if it dropped last round and ``p * (1 - s)``
        otherwise.
    seed:
        Draw reproducibility.
    """

    def __init__(self, probability: float, stickiness: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not 0.0 <= stickiness < 1.0:
            raise ValueError("stickiness must be in [0, 1)")
        self.probability = float(probability)
        self.stickiness = float(stickiness)
        self._rng = np.random.default_rng(np.random.SeedSequence((seed, 0xD80)))
        self._last_dropped: dict[str, bool] = {}

    def draw_round(self, device_ids: Sequence[str]) -> dict[str, bool]:
        """``device_id -> dropped`` for one round."""
        result: dict[str, bool] = {}
        for device_id in device_ids:
            p = self.probability
            if self.stickiness > 0.0:
                p = (
                    p + self.stickiness * (1.0 - p)
                    if self._last_dropped.get(device_id, False)
                    else p * (1.0 - self.stickiness)
                )
            dropped = bool(self._rng.random() < p)
            result[device_id] = dropped
            self._last_dropped[device_id] = dropped
        return result

    def survivors(self, device_ids: Sequence[str]) -> list[str]:
        """Device ids that deliver this round, preserving order."""
        draw = self.draw_round(device_ids)
        return [d for d in device_ids if not draw[d]]

    def reset(self) -> None:
        """Forget dropout history (stickiness state)."""
        self._last_dropped.clear()
