"""Diurnal device availability and population traffic curves.

Devices participate "only if the user experience remains unaffected"
(§I) — in practice: idle, charging, overnight.  Each device's availability
follows a diurnal curve in *local* time; summing availability across a
timezone mixture produces the population's upload-rate curve over UTC,
which feeds directly into DeviceFlow's time-interval strategy.
"""

from __future__ import annotations


import numpy as np

from repro.behavior.timezone import TimezoneMixture
from repro.deviceflow.curves import TrafficCurve


class DiurnalAvailability:
    """Probability a device is eligible to train, by local hour.

    The default shape peaks overnight (devices idle and charging, the
    standard FL eligibility window) with a secondary evening shoulder.

    Parameters
    ----------
    night_peak / evening_peak:
        Local hours of maximum and secondary availability.
    base_level:
        Floor probability at the least-available hour.
    """

    def __init__(
        self,
        night_peak: float = 2.0,
        evening_peak: float = 21.0,
        base_level: float = 0.05,
    ) -> None:
        if not 0 <= night_peak < 24 or not 0 <= evening_peak < 24:
            raise ValueError("peak hours must be within [0, 24)")
        if not 0.0 <= base_level < 1.0:
            raise ValueError("base_level must be in [0, 1)")
        self.night_peak = float(night_peak)
        self.evening_peak = float(evening_peak)
        self.base_level = float(base_level)

    def probability(self, local_hour: np.ndarray) -> np.ndarray:
        """Availability probability at local hour(s), in ``[0, 1]``."""
        hour = np.asarray(local_hour, dtype=np.float64) % 24.0
        night = 0.75 * np.exp(-0.5 * (self._circular_delta(hour, self.night_peak) / 2.5) ** 2)
        evening = 0.35 * np.exp(-0.5 * (self._circular_delta(hour, self.evening_peak) / 1.8) ** 2)
        return np.clip(self.base_level + night + evening, 0.0, 1.0)

    @staticmethod
    def _circular_delta(hour: np.ndarray, peak: float) -> np.ndarray:
        delta = np.abs(hour - peak)
        return np.minimum(delta, 24.0 - delta)

    def is_available(
        self, local_hour: float, rng: np.random.Generator | None = None
    ) -> bool:
        """Bernoulli availability draw for one device at one instant."""
        rng = rng or np.random.default_rng(0)
        return bool(rng.random() < float(self.probability(np.array([local_hour]))[0]))


def population_traffic_curve(
    timezones: TimezoneMixture,
    availability: DiurnalAvailability | None = None,
    name: str = "population-diurnal",
) -> TrafficCurve:
    """Aggregate upload-rate curve of a timezone-mixed population over UTC.

    For each UTC hour, sums each timezone cluster's availability at its
    local hour, weighted by the cluster's population share.  The result is
    a valid :class:`TrafficCurve` on ``[0, 24)`` — hand it straight to a
    :class:`~repro.deviceflow.strategy.TimeIntervalStrategy` to replay a
    realistic global day of device traffic against cloud services.
    """
    availability = availability or DiurnalAvailability()
    fractions = timezones.offset_fractions()

    def fn(utc_hour: np.ndarray) -> np.ndarray:
        utc_hour = np.asarray(utc_hour, dtype=np.float64)
        total = np.zeros_like(utc_hour)
        for offset, share in fractions.items():
            total += share * availability.probability((utc_hour + offset) % 24.0)
        return total

    return TrafficCurve(fn, (0.0, 24.0), name=name)
