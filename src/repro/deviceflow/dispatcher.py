"""The Dispatcher: releases shelved messages downstream under a strategy.

"Upon receiving these messages, DeviceFlow activates the Dispatcher module
which handles the message dispatching.  The Dispatcher module first
retrieves and parses the corresponding strategy from the Strategy module,
then extracts the pending messages from the Shelf module and dispatches
them to the cloud services according to the predefined strategy" (§V-A).

Transmission is single-threaded and rate-limited (the paper's example
capacity: 700 messages per second), so a burst dispatched "at" one time
point reaches the cloud spread over the following instants — exactly the
effect visible in Fig. 10(b).
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import TYPE_CHECKING

import numpy as np

from repro.deviceflow.messages import Message
from repro.deviceflow.shelf import Shelf
from repro.simkernel import Signal, Simulator, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deviceflow.strategy import DispatchStrategy


class Dispatcher:
    """Executes one task's dispatch strategy against its shelf.

    Parameters
    ----------
    sim:
        Shared simulator.
    shelf:
        The task's message buffer.
    strategy:
        User-defined dispatch behaviour.
    downstream:
        Callback receiving each delivered :class:`Message` (the cloud
        service endpoint).
    capacity_per_second:
        Single-threaded transmission capacity.
    rng:
        Seeded generator for dropout draws.
    """

    #: Transmission sub-chunk period: messages inside one chunk share an
    #: arrival timestamp, keeping event counts manageable at scale.
    CHUNK_SECONDS = 0.1

    def __init__(
        self,
        sim: Simulator,
        shelf: Shelf,
        strategy: DispatchStrategy,
        downstream: Callable[[Message], None],
        capacity_per_second: float = 700.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if capacity_per_second <= 0:
            raise ValueError("capacity_per_second must be positive")
        self.sim = sim
        self.shelf = shelf
        self.strategy = strategy
        self.downstream = downstream
        self.capacity_per_second = float(capacity_per_second)
        self.rng = rng or np.random.default_rng(0)
        self.current_round = 0
        # Counters and logs for monitoring / figure regeneration.
        self.dispatched = 0
        self.delivered = 0
        self.dropped_failure = 0
        self.dropped_discard = 0
        self.dispatch_log: list[tuple[float, int]] = []
        self.delivery_log: list[tuple[float, int]] = []
        # Batched FIFO: messages append at the tail, transmission consumes
        # chunk-sized slices from a moving head cursor (no per-message pops).
        self._send_queue: list[Message] = []
        self._send_head = 0
        self._sender_busy = False
        self.idle = Signal(name=f"dispatcher.{shelf.task_id}.idle")
        self.idle.fire()  # starts idle
        strategy.bind(self)

    # ------------------------------------------------------------------
    # controller-facing lifecycle
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        """A message just landed on the shelf."""
        self.strategy.on_message(self)

    def on_block(self, count: int) -> None:
        """A whole block of ``count`` messages just landed on the shelf.

        Strategies are notified once per block rather than once per
        message — block arrival is atomic, so accumulation-style
        strategies observe the post-block shelf state directly.
        """
        self.strategy.on_message(self)

    def round_started(self, round_index: int) -> None:
        """The task opened a new collaboration round."""
        self.current_round = round_index
        self.strategy.on_round_start(self, round_index)

    def round_completed(self, round_index: int) -> None:
        """The task's round finished computing."""
        self.strategy.on_round_complete(self, round_index)

    # ------------------------------------------------------------------
    # strategy-facing primitives
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def shelf_size(self) -> int:
        """Messages currently buffered."""
        return len(self.shelf)

    def take(self, count: int) -> list[Message]:
        """Pull up to ``count`` oldest messages off the shelf."""
        return self.shelf.take(count)

    def take_all(self) -> list[Message]:
        """Drain the shelf."""
        return self.shelf.take_all()

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        self.sim.schedule(delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at an absolute simulated time."""
        self.sim.schedule_at(max(time, self.sim.now), callback)

    def dispatch(
        self,
        messages: list[Message],
        failure_prob: float = 0.0,
        discard_count: int = 0,
    ) -> tuple[int, int]:
        """Apply dropout and enqueue survivors for transmission.

        Returns ``(sent, dropped)``.  Dropout semantics follow §V-B: a
        uniformly random selection of ``discard_count`` messages is
        discarded, then each remaining message independently fails with
        ``failure_prob``.
        """
        if not 0.0 <= failure_prob <= 1.0:
            raise ValueError("failure_prob must be in [0, 1]")
        if discard_count < 0:
            raise ValueError("discard_count must be >= 0")
        if not messages:
            return (0, 0)
        survivors = list(messages)
        if discard_count > 0:
            keep = max(0, len(survivors) - discard_count)
            kept_idx = sorted(self.rng.choice(len(survivors), size=keep, replace=False))
            self.dropped_discard += len(survivors) - keep
            survivors = [survivors[i] for i in kept_idx]
        if failure_prob > 0.0 and survivors:
            mask = self.rng.random(len(survivors)) >= failure_prob
            self.dropped_failure += int((~mask).sum())
            survivors = [m for m, ok in zip(survivors, mask) if ok]
        dropped = len(messages) - len(survivors)
        if survivors:
            self.dispatched += len(survivors)
            self.dispatch_log.append((self.sim.now, len(survivors)))
            self._enqueue(survivors)
        return (len(survivors), dropped)

    # ------------------------------------------------------------------
    # rate-limited transmission
    # ------------------------------------------------------------------
    def _enqueue(self, messages: list[Message]) -> None:
        self._send_queue.extend(messages)
        if not self._sender_busy:
            self._sender_busy = True
            self.idle = Signal(name=f"dispatcher.{self.shelf.task_id}.idle")
            self.sim.process(self._sender(), name=f"dispatcher.{self.shelf.task_id}.sender")

    def _sender(self) -> Generator:
        """Rate-limited transmission loop, one chunk per simulated hop.

        Each chunk is extracted as one list slice — batch-aware in the
        DCSim sense — while keeping the seed semantics exactly: a chunk's
        membership is decided when its transmission *starts*, so messages
        dispatched while a chunk is in flight join the stream right behind
        it.
        """
        chunk_capacity = max(1, int(round(self.capacity_per_second * self.CHUNK_SECONDS)))
        while self._send_head < len(self._send_queue):
            head = self._send_head
            chunk = self._send_queue[head : head + chunk_capacity]
            self._send_head = head + len(chunk)
            yield Timeout(len(chunk) / self.capacity_per_second)
            for message in chunk:
                self.downstream(message)
            self.delivered += len(chunk)
            self.delivery_log.append((self.sim.now, len(chunk)))
            # Compact the consumed prefix once it dominates the buffer so a
            # long-lived dispatcher doesn't retain every delivered message.
            if self._send_head > 4096 and 2 * self._send_head >= len(self._send_queue):
                del self._send_queue[: self._send_head]
                self._send_head = 0
        self._send_queue.clear()
        self._send_head = 0
        self._sender_busy = False
        self.idle.fire()

    def __repr__(self) -> str:
        return (
            f"Dispatcher(task={self.shelf.task_id!r}, shelf={len(self.shelf)}, "
            f"dispatched={self.dispatched}, delivered={self.delivered})"
        )
