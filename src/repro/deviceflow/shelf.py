"""Shelves: per-task FIFO buffers inside DeviceFlow."""

from __future__ import annotations

from collections import deque

from repro.deviceflow.messages import Message


class Shelf:
    """Buffers one task's pending messages until its Dispatcher releases them.

    "The Dispatcher modules associated with different Shelf modules operate
    independently, ensuring that the dispatch processes of different tasks
    remain isolated and do not interfere" (§V-A) — isolation falls out of
    one shelf (and one dispatcher) per task id.
    """

    def __init__(self, task_id: str) -> None:
        if not task_id:
            raise ValueError("task_id must be non-empty")
        self.task_id = task_id
        self._messages: deque[Message] = deque()
        self.total_stored = 0

    def __len__(self) -> int:
        return len(self._messages)

    def store(self, message: Message) -> None:
        """Append a message (validated against the shelf's task)."""
        if message.task_id != self.task_id:
            raise ValueError(
                f"message for task {message.task_id!r} stored on shelf {self.task_id!r}"
            )
        self._messages.append(message)
        self.total_stored += 1

    def store_block(self, messages: list[Message]) -> None:
        """Append a whole block's messages: one task check, one extend."""
        for message in messages:
            if message.task_id != self.task_id:
                raise ValueError(
                    f"message for task {message.task_id!r} stored on shelf {self.task_id!r}"
                )
        self._messages.extend(messages)
        self.total_stored += len(messages)

    def take(self, count: int) -> list[Message]:
        """Remove and return up to ``count`` oldest messages."""
        if count < 0:
            raise ValueError("count must be >= 0")
        taken: list[Message] = []
        while self._messages and len(taken) < count:
            taken.append(self._messages.popleft())
        return taken

    def take_all(self) -> list[Message]:
        """Drain the shelf."""
        return self.take(len(self._messages))

    def peek_oldest(self) -> Message | None:
        """Oldest buffered message without removing it."""
        return self._messages[0] if self._messages else None
