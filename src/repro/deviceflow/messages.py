"""Messages flowing from simulated devices through DeviceFlow to the cloud.

§V-A: "edge devices ... typically upload computation results to storage
upon task completion and transmit messages to cloud services.  Cloud
services then retrieve the corresponding data from storage based on the
received messages."  A message therefore carries a *reference* into shared
storage, not the payload itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_message_counter = itertools.count()


@dataclass
class Message:
    """One device-to-cloud notification.

    Attributes
    ----------
    task_id:
        Owning task; the Sorter routes on this.
    device_id:
        Producing simulated device.
    round_index:
        Collaboration round of the enclosed result.
    payload_ref:
        Key into shared object storage where the result bytes live.
    size_bytes:
        Size of the referenced payload (for bandwidth accounting).
    created_at:
        Simulated time the message entered DeviceFlow.
    n_samples:
        Training samples behind the result (drives sample-threshold
        aggregation without a storage round-trip).
    metadata:
        Free-form extras (grade, tier, backend ...).
    """

    task_id: str
    device_id: str
    round_index: int
    payload_ref: str
    size_bytes: int = 0
    created_at: float = 0.0
    n_samples: int = 1
    metadata: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        if self.n_samples <= 0:
            raise ValueError("n_samples must be positive")
