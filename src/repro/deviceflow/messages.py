"""Messages flowing from simulated devices through DeviceFlow to the cloud.

§V-A: "edge devices ... typically upload computation results to storage
upon task completion and transmit messages to cloud services.  Cloud
services then retrieve the corresponding data from storage based on the
received messages."  A message therefore carries a *reference* into shared
storage, not the payload itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

import numpy as np

_message_counter = itertools.count()


@dataclass
class Message:
    """One device-to-cloud notification.

    Attributes
    ----------
    task_id:
        Owning task; the Sorter routes on this.
    device_id:
        Producing simulated device.
    round_index:
        Collaboration round of the enclosed result.
    payload_ref:
        Key into shared object storage where the result bytes live.
    size_bytes:
        Size of the referenced payload (for bandwidth accounting).
    created_at:
        Simulated time the message entered DeviceFlow.
    n_samples:
        Training samples behind the result (drives sample-threshold
        aggregation without a storage round-trip).
    metadata:
        Free-form extras (grade, tier, backend ...).
    """

    task_id: str
    device_id: str
    round_index: int
    payload_ref: str
    size_bytes: int = 0
    created_at: float = 0.0
    n_samples: int = 1
    metadata: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        if self.n_samples <= 0:
            raise ValueError("n_samples must be positive")


@dataclass
class MessageBlock:
    """A whole round's notifications as one struct-of-arrays block.

    The columnar counterpart of :class:`Message`: one block carries every
    device of a batched plan's round, so DeviceFlow and the cloud
    services account for the traffic in bulk (one counter bump, one
    FedAvg fold) while still being able to shelve and deliver per-device
    via :meth:`messages`.

    A scalar :class:`Message` carries only a *reference* into shared
    storage; the block variant additionally inlines the stacked update
    arrays (``update_weights`` / ``update_biases``) when the producing
    plan was numeric — eliding per-device storage round-trips is exactly
    the point of block ingestion, and the referenced payloads remain
    stored (one ``put_block``) for any consumer that wants them.

    Attributes
    ----------
    task_id / round_index:
        Owning task and collaboration round (one block never spans
        rounds — batched plans emit per round).
    device_ids:
        Producing devices, in block (assignment) order.
    payload_refs:
        Per-device keys into shared object storage, aligned with
        ``device_ids``.
    size_bytes:
        Per-device payload size (blocks are grade-homogeneous, so one
        number covers every device).
    n_samples:
        Per-device training-sample counts (``(n,)`` int array).
    finished_at:
        Per-device completion times; :meth:`messages` stamps these as the
        materialized messages' ``created_at`` when no explicit arrival
        time is given.
    created_at:
        Simulated time the block entered DeviceFlow (stamped by
        ``DeviceFlow.submit_block``).
    metadata:
        Free-form extras shared by every device (grade, tier, ...).
    update_weights / update_biases:
        Optional stacked model updates (``(n, dim)`` / ``(n,)``) for
        numeric rounds; ``None`` for time-only traffic.
    """

    task_id: str
    round_index: int
    device_ids: Sequence[str]
    payload_refs: Sequence[str]
    size_bytes: int = 0
    n_samples: np.ndarray | None = None
    finished_at: np.ndarray | None = None
    created_at: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)
    update_weights: np.ndarray | None = None
    update_biases: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        n = len(self.device_ids)
        if len(self.payload_refs) != n:
            raise ValueError(f"got {n} device_ids but {len(self.payload_refs)} payload_refs")
        if self.n_samples is None:
            self.n_samples = np.ones(n, dtype=np.int64)
        else:
            self.n_samples = np.asarray(self.n_samples, dtype=np.int64)
            if len(self.n_samples) != n:
                raise ValueError(f"got {n} device_ids but {len(self.n_samples)} n_samples")
            if n and self.n_samples.min() <= 0:
                raise ValueError("n_samples must be positive")
        if self.finished_at is not None and len(self.finished_at) != n:
            raise ValueError(f"got {n} device_ids but {len(self.finished_at)} finished_at")
        if self.update_weights is not None and len(self.update_weights) != n:
            raise ValueError(f"got {n} device_ids but {len(self.update_weights)} update rows")
        if self.update_biases is not None and len(self.update_biases) != n:
            raise ValueError(f"got {n} device_ids but {len(self.update_biases)} update biases")

    def __len__(self) -> int:
        return len(self.device_ids)

    @property
    def total_bytes(self) -> int:
        """Bytes represented by the whole block (bulk accounting)."""
        return self.size_bytes * len(self.device_ids)

    @property
    def total_samples(self) -> int:
        """Training samples represented by the whole block."""
        return int(self.n_samples.sum()) if len(self.device_ids) else 0

    def messages(self, created_at: float | None = None) -> list[Message]:
        """Materialize per-device :class:`Message` objects, in block order.

        ``created_at`` overrides every message's arrival stamp (DeviceFlow
        passes the submission time); otherwise each message inherits its
        device's ``finished_at`` (falling back to the block's own
        ``created_at``).
        """
        times = self.finished_at
        return [
            Message(
                task_id=self.task_id,
                device_id=device_id,
                round_index=self.round_index,
                payload_ref=self.payload_refs[position],
                size_bytes=self.size_bytes,
                created_at=(
                    created_at
                    if created_at is not None
                    else (float(times[position]) if times is not None else self.created_at)
                ),
                n_samples=int(self.n_samples[position]),
                metadata=dict(self.metadata),
            )
            for position, device_id in enumerate(self.device_ids)
        ]
