"""AUC discretisation of traffic curves into dispatch ticks.

§V-B's three-step recipe for specific time-interval dispatching:

1. "the total amount of pending messages is equated to the total area
   under the curve (AUC) y = f(t) over its entire domain";
2. "based on the single-threaded transmission capacity limit of DeviceFlow
   (e.g., 700 messages per second), a reasonable discrete transmission
   time interval is calculated ... to ensure that the number of messages
   sent at any single point does not exceed the transmission capacity
   limit and that the interval is sufficiently small";
3. "the corresponding dispatching quantity is calculated for each discrete
   interval based on the AUC ratios with total AUC, and the starting point
   of the interval is taken as the transmission time point."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.deviceflow.curves import TrafficCurve


@dataclass(frozen=True)
class DispatchTick:
    """One transmission time point with its message quantity.

    ``offset`` is seconds from the start of the dispatch window (the
    tick's interval *start*, per the paper).
    """

    offset: float
    count: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be >= 0")
        if self.count < 0:
            raise ValueError("count must be >= 0")


def choose_tick_width(
    curve: TrafficCurve,
    interval_seconds: float,
    total_messages: int,
    capacity_per_second: float,
    max_tick: float = 1.0,
    min_ticks: int = 24,
) -> float:
    """Pick the discrete transmission interval (step 2 of the recipe).

    The tick must be small enough that (a) no single tick's quantity
    exceeds the single-point capacity limit and (b) the curve is sampled
    finely ("the interval is sufficiently small"), but not so small that
    every tick rounds to zero messages.
    """
    if interval_seconds <= 0:
        raise ValueError("interval_seconds must be positive")
    if total_messages <= 0:
        raise ValueError("total_messages must be positive")
    if capacity_per_second <= 0:
        raise ValueError("capacity_per_second must be positive")
    grid = np.linspace(curve.domain[0], curve.domain[1], 4096)
    values = curve(grid)
    area = float(np.trapezoid(values, grid))
    peak = float(values.max())
    # Peak dispatch rate in messages per actual second after scaling the
    # AUC to total_messages and the domain to the window.
    peak_rate = total_messages * peak * curve.width / (area * interval_seconds)
    tick = min(max_tick, interval_seconds / min_ticks)
    if peak_rate > 0:
        # Single-point quantity peak_rate * tick must stay within capacity.
        tick = min(tick, capacity_per_second / peak_rate)
    # Avoid sub-millisecond ticks on extreme curves.
    return max(tick, 1e-3)


def discretize_curve(
    curve: TrafficCurve,
    interval_seconds: float,
    total_messages: int,
    capacity_per_second: float = 700.0,
    tick_width: float | None = None,
) -> list[DispatchTick]:
    """Turn a rate curve into exact-integer dispatch ticks.

    Message conservation is exact: tick counts are produced by cumulative
    rounding of the scaled AUC, so ``sum(counts) == total_messages``
    regardless of tick width or curve shape.  Ticks with a zero quantity
    are dropped (no empty transmissions).
    """
    if tick_width is None:
        tick_width = choose_tick_width(curve, interval_seconds, total_messages, capacity_per_second)
    if tick_width <= 0:
        raise ValueError("tick_width must be positive")
    n_ticks = max(1, int(np.ceil(interval_seconds / tick_width)))
    edges = np.linspace(0.0, interval_seconds, n_ticks + 1)

    # Map window edges onto the curve domain and integrate per tick with a
    # fine sub-grid so narrow spikes are not lost between edges.
    low, width = curve.domain[0], curve.width
    sub = 16
    fine = np.linspace(0.0, interval_seconds, n_ticks * sub + 1)
    values = curve(low + width * fine / interval_seconds)
    segment_area = np.zeros(n_ticks)
    for i in range(n_ticks):
        chunk = slice(i * sub, (i + 1) * sub + 1)
        segment_area[i] = np.trapezoid(values[chunk], fine[chunk])
    total_area = float(segment_area.sum())
    if total_area <= 0:
        raise ValueError("curve has zero area over the dispatch window")

    cumulative = np.cumsum(segment_area) / total_area * total_messages
    rounded = np.round(cumulative).astype(int)
    counts = np.diff(np.concatenate(([0], rounded)))

    ticks = [
        DispatchTick(offset=float(edges[i]), count=int(counts[i]))
        for i in range(n_ticks)
        if counts[i] > 0
    ]
    assert sum(t.count for t in ticks) == total_messages
    return ticks


def schedule_correlation(
    curve: TrafficCurve, ticks: list[DispatchTick], interval_seconds: float
) -> float:
    """Pearson correlation between the curve and the realised schedule.

    This is Table II's fidelity metric: curve values at the tick offsets
    (mapped back to the curve domain) against per-tick dispatch amounts.
    """
    if len(ticks) < 2:
        raise ValueError("need at least two ticks to correlate")
    offsets = np.array([t.offset for t in ticks])
    counts = np.array([t.count for t in ticks], dtype=np.float64)
    low, width = curve.domain[0], curve.width
    # Each tick's quantity integrates the curve over [offset, offset+dt);
    # comparing against the curve at the tick *midpoint* avoids penalising
    # the comparison with a spurious half-tick phase shift.
    diffs = np.diff(offsets)
    tick_width = float(np.median(diffs)) if len(diffs) else interval_seconds
    midpoints = offsets + tick_width / 2.0
    expected = curve(low + width * midpoints / interval_seconds)
    if np.std(expected) == 0 or np.std(counts) == 0:
        return 1.0 if np.allclose(counts, counts[0]) else 0.0
    return float(np.corrcoef(expected, counts)[0, 1])
