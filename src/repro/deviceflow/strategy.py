"""User-definable message dispatching strategies (§V-B).

Two families exist:

* **Real-time accumulated dispatching** — activated at the beginning of
  each round; whenever the shelf accumulates the next threshold ``n`` of a
  user-defined sequence, that many messages ship immediately.  ``n = 1``
  degenerates to the plain real-time forwarding other simulators perform.
  A per-message transmission-failure probability models device dropout.

* **Rule-based dispatching** — activated upon round completion; messages
  ship at specific *time points* (relative to round end, or absolute) or
  across a *time interval* shaped by an arbitrary rate curve (see
  :mod:`repro.deviceflow.discretize`).  Both support dropout via failure
  probability and random discard.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.deviceflow.curves import TrafficCurve
from repro.deviceflow.discretize import DispatchTick, discretize_curve
from repro.deviceflow.dispatcher import Dispatcher


class DispatchStrategy:
    """Base class; concrete strategies override the lifecycle hooks."""

    def bind(self, dispatcher: Dispatcher) -> None:
        """Called once when the dispatcher is created."""

    def on_round_start(self, dispatcher: Dispatcher, round_index: int) -> None:
        """A new round of the task's operator flow began."""

    def on_message(self, dispatcher: Dispatcher) -> None:
        """A message was shelved."""

    def on_round_complete(self, dispatcher: Dispatcher, round_index: int) -> None:
        """The round's computation finished."""


class RealTimeAccumulatedStrategy(DispatchStrategy):
    """Threshold-sequence dispatching with failure-probability dropout.

    Parameters
    ----------
    thresholds:
        Cyclic quantity sequence, e.g. ``[20, 100, 50]`` (§VI-C2); the
        plain ``[1]`` behaves "like other simulators, immediately sending
        messages to the cloud service after computation".
    failure_prob:
        Independent per-message transmission-failure probability ``p``.
    flush_on_round_complete:
        Ship any sub-threshold remainder when the round ends, so no
        update is silently stranded between rounds.
    """

    def __init__(
        self,
        thresholds: Sequence[int] = (1,),
        failure_prob: float = 0.0,
        flush_on_round_complete: bool = True,
    ) -> None:
        thresholds = list(thresholds)
        if not thresholds:
            raise ValueError("thresholds must be non-empty")
        if any(int(t) != t or t < 1 for t in thresholds):
            raise ValueError(f"thresholds must be integers >= 1, got {thresholds}")
        if not 0.0 <= failure_prob <= 1.0:
            raise ValueError("failure_prob must be in [0, 1]")
        self.thresholds = [int(t) for t in thresholds]
        self.failure_prob = float(failure_prob)
        self.flush_on_round_complete = flush_on_round_complete
        self._cycle = 0

    @property
    def current_threshold(self) -> int:
        """The next quantity to accumulate before shipping."""
        return self.thresholds[self._cycle % len(self.thresholds)]

    def on_round_start(self, dispatcher: Dispatcher, round_index: int) -> None:
        self._cycle = 0

    def on_message(self, dispatcher: Dispatcher) -> None:
        while dispatcher.shelf_size() >= self.current_threshold:
            batch = dispatcher.take(self.current_threshold)
            dispatcher.dispatch(batch, failure_prob=self.failure_prob)
            self._cycle += 1

    def on_round_complete(self, dispatcher: Dispatcher, round_index: int) -> None:
        if self.flush_on_round_complete and dispatcher.shelf_size() > 0:
            dispatcher.dispatch(dispatcher.take_all(), failure_prob=self.failure_prob)


@dataclass(frozen=True)
class TimePoint:
    """One rule-based transmission instant.

    ``time`` is seconds after round completion in relative mode, or an
    absolute simulated timestamp otherwise.  Dropout per §V-B: "the
    probability of transmission failure can be set for each time point,
    and a random selection of a certain number of messages can be
    discarded at each time point."
    """

    time: float
    count: int
    failure_prob: float = 0.0
    discard_count: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not 0.0 <= self.failure_prob <= 1.0:
            raise ValueError("failure_prob must be in [0, 1]")
        if self.discard_count < 0:
            raise ValueError("discard_count must be >= 0")


class TimePointStrategy(DispatchStrategy):
    """Specific time-point dispatching (rule-based, §V-B).

    Parameters
    ----------
    points:
        Transmission instants with quantities and dropout settings.
    relative:
        Whether point times are measured from the end of the round
        (the paper supports both relative and absolute settings).
    """

    def __init__(self, points: Sequence[TimePoint], relative: bool = True) -> None:
        points = list(points)
        if not points:
            raise ValueError("at least one time point is required")
        if relative and any(p.time < 0 for p in points):
            raise ValueError("relative time points must be >= 0")
        self.points = sorted(points, key=lambda p: p.time)
        self.relative = relative

    def on_round_complete(self, dispatcher: Dispatcher, round_index: int) -> None:
        base = dispatcher.now if self.relative else 0.0
        for point in self.points:
            fire_at = base + point.time

            def fire(p: TimePoint = point) -> None:
                available = dispatcher.shelf_size()
                if available == 0:
                    return
                batch = dispatcher.take(min(p.count, available))
                dispatcher.dispatch(batch, failure_prob=p.failure_prob, discard_count=p.discard_count)

            dispatcher.schedule_at(fire_at, fire)


class TimeIntervalStrategy(DispatchStrategy):
    """Specific time-interval dispatching over a rate curve (§V-B).

    On round completion the pending message total is matched to the area
    under the user's curve, the curve is discretised against DeviceFlow's
    transmission capacity, and each resulting tick becomes a time-point
    dispatch — "these above operations transform the specific time-
    interval dispatching mechanism into the aforementioned specific
    time-point dispatching mechanism for execution".

    Parameters
    ----------
    curve:
        Validated transmission-rate function.
    interval_seconds:
        Actual dispatch window length the curve domain is scaled onto.
    relative:
        Window starts at round completion (True) or at ``start_time``.
    start_time:
        Absolute window start when ``relative`` is False.
    failure_prob / discard_per_tick:
        Dropout applied within every tick.
    tick_width:
        Optional manual discretisation step (otherwise derived from the
        capacity limit).
    """

    def __init__(
        self,
        curve: TrafficCurve,
        interval_seconds: float,
        relative: bool = True,
        start_time: float | None = None,
        failure_prob: float = 0.0,
        discard_per_tick: int = 0,
        tick_width: float | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if not relative and start_time is None:
            raise ValueError("absolute mode requires start_time")
        if not 0.0 <= failure_prob <= 1.0:
            raise ValueError("failure_prob must be in [0, 1]")
        if discard_per_tick < 0:
            raise ValueError("discard_per_tick must be >= 0")
        self.curve = curve
        self.interval_seconds = float(interval_seconds)
        self.relative = relative
        self.start_time = start_time
        self.failure_prob = float(failure_prob)
        self.discard_per_tick = int(discard_per_tick)
        self.tick_width = tick_width
        self.last_schedule: list[DispatchTick] = []

    def on_round_complete(self, dispatcher: Dispatcher, round_index: int) -> None:
        total = dispatcher.shelf_size()
        if total == 0:
            return
        ticks = discretize_curve(
            self.curve,
            self.interval_seconds,
            total,
            capacity_per_second=dispatcher.capacity_per_second,
            tick_width=self.tick_width,
        )
        self.last_schedule = ticks
        base = dispatcher.now if self.relative else float(self.start_time)  # type: ignore[arg-type]
        for tick in ticks:

            def fire(t: DispatchTick = tick) -> None:
                available = dispatcher.shelf_size()
                if available == 0:
                    return
                batch = dispatcher.take(min(t.count, available))
                dispatcher.dispatch(
                    batch, failure_prob=self.failure_prob, discard_count=self.discard_per_tick
                )

            dispatcher.schedule_at(base + tick.offset, fire)
