"""The DeviceFlow facade: wiring Sorter, Shelves, Dispatchers, Strategies."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.deviceflow.dispatcher import Dispatcher
from repro.deviceflow.messages import Message, MessageBlock
from repro.deviceflow.shelf import Shelf
from repro.deviceflow.sorter import Sorter
from repro.deviceflow.strategy import DispatchStrategy
from repro.simkernel import RandomStreams, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.tracing import Tracer


@dataclass
class TaskFlowStats:
    """Monitoring snapshot of one task's traffic through DeviceFlow."""

    task_id: str
    received: int
    shelved: int
    dispatched: int
    delivered: int
    dropped_failure: int
    dropped_discard: int

    @property
    def dropped(self) -> int:
        """All dropout losses."""
        return self.dropped_failure + self.dropped_discard


class DeviceFlow:
    """The device behaviour traffic controller.

    Tasks register a strategy plus a downstream endpoint; the compute
    tiers submit messages; the platform signals round boundaries.  Every
    task gets an isolated shelf + dispatcher pair, so "the dispatch
    processes of different tasks remain isolated and do not interfere".

    Parameters
    ----------
    sim:
        Shared simulator.
    streams:
        Deterministic random streams (dropout draws).
    capacity_per_second:
        Single-threaded transmission capacity of each dispatcher (the
        paper's example: 700 messages per second).
    tracer:
        Optional :class:`~repro.observability.tracing.Tracer`: shelve
        times are recorded at submission and delivery times by wrapping
        each task's downstream endpoint.  Recording is append-only and
        draws nothing, so traced flows stay byte-identical.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams | None = None,
        capacity_per_second: float = 700.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.streams = streams or RandomStreams(0)
        self.capacity_per_second = float(capacity_per_second)
        self.tracer = tracer
        self.sorter = Sorter()
        self._dispatchers: dict[str, Dispatcher] = {}
        self._received: dict[str, int] = {}
        self._capacity_scale = 1.0

    # ------------------------------------------------------------------
    # task registration
    # ------------------------------------------------------------------
    def register_task(
        self,
        task_id: str,
        strategy: DispatchStrategy,
        downstream: Callable[[Message], None],
    ) -> Dispatcher:
        """Create the task's shelf + dispatcher; returns the dispatcher."""
        if task_id in self._dispatchers:
            raise ValueError(f"task {task_id!r} already registered with DeviceFlow")
        if self.tracer is not None:
            tracer, sim, inner = self.tracer, self.sim, downstream

            def traced_downstream(message: Message) -> None:
                tracer.record_flow_delivery(
                    message.task_id, message.device_id, message.round_index, sim.now
                )
                inner(message)

            downstream = traced_downstream
        shelf = Shelf(task_id)
        self.sorter.register_shelf(shelf)
        dispatcher = Dispatcher(
            self.sim,
            shelf,
            strategy,
            downstream,
            capacity_per_second=self.capacity_per_second * self._capacity_scale,
            rng=self.streams.get(f"deviceflow.{task_id}"),
        )
        self._dispatchers[task_id] = dispatcher
        self._received[task_id] = 0
        return dispatcher

    def unregister_task(self, task_id: str) -> None:
        """Detach a finished task (its shelf must be empty)."""
        dispatcher = self._require(task_id)
        if len(dispatcher.shelf) > 0:
            raise RuntimeError(
                f"task {task_id!r} still has {len(dispatcher.shelf)} shelved messages"
            )
        self.sorter.unregister_shelf(task_id)
        del self._dispatchers[task_id]

    def force_unregister(self, task_id: str) -> int:
        """Detach a crashed task, discarding shelved messages.

        Returns the number of messages discarded.  Already-scheduled
        dispatch callbacks become no-ops (the shelf is empty).
        """
        dispatcher = self._require(task_id)
        discarded = len(dispatcher.shelf.take_all())
        self.sorter.unregister_shelf(task_id)
        del self._dispatchers[task_id]
        return discarded

    def discard_shelved(self, task_id: str) -> int:
        """Drop a task's shelved messages (deadline-based round closure).

        The task stays registered; the discarded messages count into the
        dispatcher's ``dropped_discard`` statistic (they never reach the
        cloud).  Returns the number of messages discarded.
        """
        dispatcher = self._require(task_id)
        messages = dispatcher.shelf.take_all()
        dispatcher.dropped_discard += len(messages)
        return len(messages)

    def dispatcher_for(self, task_id: str) -> Dispatcher:
        """The task's dispatcher (for inspection / monitoring)."""
        return self._require(task_id)

    @property
    def task_ids(self) -> list[str]:
        """Registered task ids."""
        return sorted(self._dispatchers)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def submit(self, message: Message) -> None:
        """Accept a message from a compute tier (stamps arrival time)."""
        dispatcher = self._require(message.task_id)
        message.created_at = self.sim.now
        if self.tracer is not None:
            self.tracer.record_flow_submit(
                message.task_id, message.device_id, message.round_index, self.sim.now
            )
        self.sorter.route(message)
        self._received[message.task_id] += 1
        dispatcher.on_message(message)

    def submit_block(self, block: MessageBlock) -> int:
        """Accept a whole round's messages as one columnar block.

        The block materializes to per-device messages (shelving and
        delivery stay per-device — the cloud endpoint is unchanged), but
        bookkeeping runs in bulk: one arrival stamp, one shelf extend,
        one received-counter bump and ONE strategy notification for the
        whole block.  The shelved messages equal ``block.messages()``
        submitted back-to-back at this instant; strategies that react per
        arrival therefore see one burst instead of ``n`` ticks, which is
        why tiers feeding mid-round traffic shaping keep the scalar
        :meth:`submit` path.  Returns the number of messages shelved.
        """
        dispatcher = self._require(block.task_id)
        block.created_at = self.sim.now
        messages = block.messages(created_at=self.sim.now)
        if self.tracer is not None:
            for message in messages:
                self.tracer.record_flow_submit(
                    message.task_id, message.device_id, message.round_index, self.sim.now
                )
        self.sorter.route_block(block.task_id, messages)
        self._received[block.task_id] += len(messages)
        dispatcher.on_block(len(messages))
        return len(messages)

    # ------------------------------------------------------------------
    # control plane (round lifecycle from the platform)
    # ------------------------------------------------------------------
    def set_capacity_scale(self, scale: float) -> float:
        """Rescale transmission capacity for all current and future tasks.

        Models network-tier degradation windows: a scenario's fault plan
        drops the scale below 1.0 for a window and restores it afterwards.
        Every registered dispatcher's ``capacity_per_second`` is reset to
        ``base * scale`` (never accumulated, so repeated calls cannot
        drift), and dispatchers registered while the window is open start
        degraded.  Returns the previous scale.
        """
        if scale <= 0:
            raise ValueError("capacity scale must be positive")
        previous = self._capacity_scale
        self._capacity_scale = float(scale)
        for dispatcher in self._dispatchers.values():
            dispatcher.capacity_per_second = self.capacity_per_second * self._capacity_scale
        return previous

    @property
    def capacity_scale(self) -> float:
        """The currently applied degradation scale (1.0 = healthy)."""
        return self._capacity_scale

    def round_started(self, task_id: str, round_index: int) -> None:
        """Signal that a task's round began computing."""
        self._require(task_id).round_started(round_index)

    def round_completed(self, task_id: str, round_index: int) -> None:
        """Signal that a task's round finished computing."""
        self._require(task_id).round_completed(round_index)

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def stats(self, task_id: str) -> TaskFlowStats:
        """Current traffic counters for one task."""
        dispatcher = self._require(task_id)
        return TaskFlowStats(
            task_id=task_id,
            received=self._received[task_id],
            shelved=len(dispatcher.shelf),
            dispatched=dispatcher.dispatched,
            delivered=dispatcher.delivered,
            dropped_failure=dispatcher.dropped_failure,
            dropped_discard=dispatcher.dropped_discard,
        )

    def _require(self, task_id: str) -> Dispatcher:
        if task_id not in self._dispatchers:
            raise KeyError(f"task {task_id!r} is not registered with DeviceFlow")
        return self._dispatchers[task_id]
