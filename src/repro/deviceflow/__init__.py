"""DeviceFlow: the programmable device-behaviour traffic controller.

§V: "DeviceFlow operates as an intermediary component, bridging edge
devices and cloud services by managing message transmission.  From the
perspective of edge devices, DeviceFlow functions as a proxy for the
cloud, while from the viewpoint of cloud services, it serves as a
representation of the edge devices."

Four modules cooperate (Fig. 4): the **Sorter** routes incoming messages
to per-task **Shelves**; per-shelf **Dispatchers** release buffered
messages downstream according to the user-defined **Strategy** — real-time
accumulated dispatching, specific time-point dispatching, or specific
time-interval dispatching over an arbitrary bounded non-negative rate
curve, each with dropout simulation (per-message failure probability and
random discard).
"""

from repro.deviceflow.controller import DeviceFlow, TaskFlowStats
from repro.deviceflow.curves import (
    TABLE2_CURVES,
    TrafficCurve,
    cos_plus_one,
    exponential_curve,
    gaussian_pdf,
    right_tailed_normal,
    sin_plus_one,
)
from repro.deviceflow.discretize import DispatchTick, discretize_curve
from repro.deviceflow.dispatcher import Dispatcher
from repro.deviceflow.messages import Message, MessageBlock
from repro.deviceflow.shelf import Shelf
from repro.deviceflow.sorter import Sorter
from repro.deviceflow.strategy import (
    DispatchStrategy,
    RealTimeAccumulatedStrategy,
    TimeIntervalStrategy,
    TimePoint,
    TimePointStrategy,
)

__all__ = [
    "DeviceFlow",
    "DispatchStrategy",
    "DispatchTick",
    "Dispatcher",
    "Message",
    "MessageBlock",
    "RealTimeAccumulatedStrategy",
    "Shelf",
    "Sorter",
    "TABLE2_CURVES",
    "TaskFlowStats",
    "TimeIntervalStrategy",
    "TimePoint",
    "TimePointStrategy",
    "TrafficCurve",
    "cos_plus_one",
    "discretize_curve",
    "exponential_curve",
    "gaussian_pdf",
    "right_tailed_normal",
    "sin_plus_one",
]
