"""Traffic-curve library for time-interval dispatching.

§V-B constrains user-defined transmission-rate functions: "The transmission
rate function y must be a single-valued, bounded, non-negative continuous
function, supporting piecewise continuity."  :class:`TrafficCurve` wraps a
plain callable with its domain and enforces those properties numerically;
the module also ships every curve the paper evaluates (Table II and the
right-tailed normals of Figs. 9-10).
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np


class TrafficCurve:
    """A validated transmission-rate function ``y = f(t)`` on ``[a, b]``.

    Parameters
    ----------
    fn:
        Vectorisable callable (accepts numpy arrays).
    domain:
        Closed interval the curve is defined on.  §V-B: "the domain of t
        is a closed interval, which can be scaled to align with the user-
        defined specific time interval."
    name:
        Display name (appears in Table II).
    validation_points:
        Grid resolution used to check non-negativity and boundedness.
    """

    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        domain: tuple[float, float],
        name: str = "custom",
        validation_points: int = 2048,
    ) -> None:
        low, high = float(domain[0]), float(domain[1])
        if not math.isfinite(low) or not math.isfinite(high):
            raise ValueError("domain endpoints must be finite")
        if high <= low:
            raise ValueError(f"domain must satisfy a < b, got [{low}, {high}]")
        self.fn = fn
        self.domain = (low, high)
        self.name = name
        self._validate(validation_points)

    def _validate(self, n_points: int) -> None:
        grid = np.linspace(self.domain[0], self.domain[1], n_points)
        values = np.asarray(self.fn(grid), dtype=np.float64)
        if values.shape != grid.shape:
            raise ValueError(f"curve {self.name!r} is not single-valued/vectorised")
        if not np.all(np.isfinite(values)) or float(np.abs(values).max()) > 1e12:
            raise ValueError(f"curve {self.name!r} is unbounded on its domain")
        if np.any(values < 0):
            raise ValueError(f"curve {self.name!r} is negative on its domain")
        if float(values.max()) == 0.0:
            raise ValueError(f"curve {self.name!r} is identically zero")

    def __call__(self, t: np.ndarray) -> np.ndarray:
        return np.asarray(self.fn(np.asarray(t, dtype=np.float64)), dtype=np.float64)

    @property
    def width(self) -> float:
        """Domain length ``b - a``."""
        return self.domain[1] - self.domain[0]

    def area(self, n_points: int = 4096) -> float:
        """Trapezoidal area under the curve over its whole domain."""
        grid = np.linspace(self.domain[0], self.domain[1], n_points)
        return float(np.trapezoid(self(grid), grid))

    def to_actual_time(self, interval_seconds: float) -> Callable[[np.ndarray], np.ndarray]:
        """Rate as a function of actual elapsed seconds in ``[0, T]``.

        Linearly rescales the domain onto the dispatch window; the *shape*
        is preserved, message totals handle amplitude separately.
        """
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        low, width = self.domain[0], self.width

        def rate(tau: np.ndarray) -> np.ndarray:
            t = low + width * np.asarray(tau, dtype=np.float64) / interval_seconds
            return self(t)

        return rate

    def __repr__(self) -> str:
        return f"TrafficCurve({self.name!r}, domain={self.domain})"


# ----------------------------------------------------------------------
# the paper's curve families
# ----------------------------------------------------------------------
def gaussian_pdf(sigma: float, domain: tuple[float, float] = (-4.0, 4.0)) -> TrafficCurve:
    """``N(0, sigma)`` density on ``domain`` (Table II rows 1-2)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")

    def fn(t: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * (t / sigma) ** 2) / (sigma * math.sqrt(2.0 * math.pi))

    return TrafficCurve(fn, domain, name=f"N(0, {sigma:g})")


def right_tailed_normal(sigma: float, tail_sigmas: float = 4.0) -> TrafficCurve:
    """The right tail of ``N(0, sigma)`` — the Fig. 9/10 response curves.

    Models devices whose responses peak immediately after a round opens
    and decay with timezone/network spread controlled by ``sigma``.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")

    def fn(t: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * (t / sigma) ** 2) / (sigma * math.sqrt(2.0 * math.pi))

    return TrafficCurve(fn, (0.0, tail_sigmas * sigma), name=f"right-tail N(0, {sigma:g})")


def sin_plus_one(domain: tuple[float, float] = (0.0, 6.0 * math.pi)) -> TrafficCurve:
    """``sin(t) + 1`` on ``[0, 6π]`` (Table II row 3)."""
    return TrafficCurve(lambda t: np.sin(t) + 1.0, domain, name="sin(t)+1")


def cos_plus_one(domain: tuple[float, float] = (0.0, 6.0 * math.pi)) -> TrafficCurve:
    """``cos(t) + 1`` on ``[0, 6π]`` (Table II row 4)."""
    return TrafficCurve(lambda t: np.cos(t) + 1.0, domain, name="cos(t)+1")


def exponential_curve(base: float, domain: tuple[float, float] = (0.0, 3.0)) -> TrafficCurve:
    """``base ** t`` on ``[0, 3]`` (Table II rows 5-6)."""
    if base <= 0:
        raise ValueError("base must be positive")
    return TrafficCurve(lambda t: np.power(base, t), domain, name=f"{base:g}^t")


def diurnal_curve(peak_hour: float = 20.0, base_level: float = 0.15) -> TrafficCurve:
    """A 24-hour activity curve peaking in the evening.

    Not from Table II, but the natural input for the paper's Fig. 10(c-d)
    day-scale scenario (dispatch bursts at 10:00 and 18:00-22:00 local
    time) and for timezone-mixture experiments.
    """
    if not 0 <= peak_hour < 24:
        raise ValueError("peak_hour must be within [0, 24)")
    if base_level < 0:
        raise ValueError("base_level must be >= 0")

    def fn(t: np.ndarray) -> np.ndarray:
        phase = 2.0 * math.pi * (np.asarray(t) - peak_hour) / 24.0
        return base_level + (1.0 + np.cos(phase)) / 2.0

    return TrafficCurve(fn, (0.0, 24.0), name=f"diurnal(peak={peak_hour:g}h)")


#: The exact rows of Table II: (curve, paper-stated domain).
TABLE2_CURVES: tuple[TrafficCurve, ...] = (
    gaussian_pdf(1.0, (-4.0, 4.0)),
    gaussian_pdf(2.0, (-4.0, 4.0)),
    sin_plus_one((0.0, 6.0 * math.pi)),
    cos_plus_one((0.0, 6.0 * math.pi)),
    exponential_curve(2.0, (0.0, 3.0)),
    exponential_curve(10.0, (0.0, 3.0)),
)
