"""The Sorter: routes incoming messages to the right shelf."""

from __future__ import annotations

from collections.abc import Callable

from repro.deviceflow.messages import Message
from repro.deviceflow.shelf import Shelf


class Sorter:
    """Receives messages from the compute tiers and shelves them by task.

    "The Sorter module is responsible for receiving messages from
    computational clusters and determining the appropriate Shelf for
    storage based on the task_id within the messages" (§V-A).
    """

    def __init__(self, on_stored: Callable[[Message], None] | None = None) -> None:
        self._shelves: dict[str, Shelf] = {}
        self._on_stored = on_stored
        self.total_routed = 0

    def register_shelf(self, shelf: Shelf) -> None:
        """Attach a task's shelf; one shelf per task id."""
        if shelf.task_id in self._shelves:
            raise ValueError(f"shelf for task {shelf.task_id!r} already registered")
        self._shelves[shelf.task_id] = shelf

    def unregister_shelf(self, task_id: str) -> Shelf:
        """Detach (and return) a task's shelf."""
        if task_id not in self._shelves:
            raise KeyError(f"no shelf registered for task {task_id!r}")
        return self._shelves.pop(task_id)

    def shelf_for(self, task_id: str) -> Shelf:
        """Look up a task's shelf."""
        if task_id not in self._shelves:
            raise KeyError(f"no shelf registered for task {task_id!r}")
        return self._shelves[task_id]

    def route(self, message: Message) -> Shelf:
        """Store a message on its task's shelf; returns that shelf."""
        shelf = self.shelf_for(message.task_id)
        shelf.store(message)
        self.total_routed += 1
        if self._on_stored is not None:
            self._on_stored(message)
        return shelf

    def route_block(self, task_id: str, messages: list[Message]) -> Shelf:
        """Shelve a whole block's messages with bulk bookkeeping.

        One shelf lookup and one counter bump per block; the per-message
        ``on_stored`` hook still fires for each message so observers see
        the same stream either way.
        """
        shelf = self.shelf_for(task_id)
        shelf.store_block(messages)
        self.total_routed += len(messages)
        if self._on_stored is not None:
            for message in messages:
                self._on_stored(message)
        return shelf

    @property
    def task_ids(self) -> list[str]:
        """Registered task ids, sorted."""
        return sorted(self._shelves)
