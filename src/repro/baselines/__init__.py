"""Comparator simulators for the scalability study (Fig. 8).

§VI-B4 compares SimDC's single-round wall time against FedScale and
FederatedScope across 100-100,000 simulated devices.  Neither framework
is available offline, so this package re-implements their *execution
semantics* as calibrated cost models:

* **FedScale-like** — "does not use device-cloud communication during
  simulations.  Its data and models are stored directly in memory, and
  data is transferred only between memories when simulating different
  clients": a pure in-process round with a tiny per-client constant.
* **FederatedScope-like** — "employs a similar strategy for data and
  models and can only use a single resource instance to simulate
  clients", while still "independently simulat[ing] clients and us[ing]
  device-cloud communication for aggregation": per-client compute plus a
  communication term, bounded by one machine's cores.
* **SimDC's own round model** is provided for the same sweep: actors
  distributed across servers, each paying per-round data/model downloads
  and shared-storage uploads — slower below ~1000 devices, comparable to
  FederatedScope at scale.
"""

from repro.baselines.models import (
    FedScaleLikeSimulator,
    FederatedScopeLikeSimulator,
    RoundCostBreakdown,
    SimDCRoundModel,
)

__all__ = [
    "FedScaleLikeSimulator",
    "FederatedScopeLikeSimulator",
    "RoundCostBreakdown",
    "SimDCRoundModel",
]
