"""Execution/cost models of FedScale- and FederatedScope-like simulators.

Each baseline offers two things:

* ``round_time(n_devices)`` — the calibrated single-round wall-time model
  used by the Fig. 8 scalability sweep, with a :class:`RoundCostBreakdown`
  explaining where the time goes;
* ``run_round(clients, model)`` — a *functional* in-memory FedAvg round
  over real :class:`~repro.ml.client.FLClient` objects, demonstrating that
  the baselines produce the same learning outcome and differ only in
  execution architecture (which is the paper's point: FedScale's speed
  comes from skipping the device-cloud path, not from better math).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.ml.client import FLClient
from repro.ml.fedavg import fedavg
from repro.ml.model import LogisticRegressionModel


@dataclass
class RoundCostBreakdown:
    """Where one simulated round's wall time goes."""

    setup: float = 0.0
    compute: float = 0.0
    memory_copies: float = 0.0
    communication: float = 0.0
    storage: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.setup + self.compute + self.memory_copies + self.communication + self.storage


@dataclass
class FedScaleLikeSimulator:
    """In-memory, communication-free round execution (FedScale's design).

    "FedScale does not use device-cloud communication during simulations.
    Its data and models are stored directly in memory, and data is
    transferred only between memories when simulating different clients"
    (§VI-B4).  Fast, but "its simulation deviate[s] significantly from
    real-world scenarios".

    Attributes
    ----------
    total_cores:
        Parallelism of the hosting server cluster (the sweep uses the
        paper's 200 cores).
    client_train_s:
        CPU seconds of one client's local training.
    memory_copy_s:
        Per-client in-memory data/model hand-off cost.
    startup_s:
        Fixed per-round framework overhead.
    """

    total_cores: int = 200
    client_train_s: float = 1.0
    memory_copy_s: float = 0.0005
    startup_s: float = 2.0

    def __post_init__(self) -> None:
        if self.total_cores <= 0:
            raise ValueError("total_cores must be positive")
        if self.client_train_s <= 0:
            raise ValueError("client_train_s must be positive")

    def round_breakdown(self, n_devices: int) -> RoundCostBreakdown:
        """Cost components for one round over ``n_devices`` clients."""
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        return RoundCostBreakdown(
            setup=self.startup_s,
            compute=n_devices * self.client_train_s / self.total_cores,
            memory_copies=n_devices * self.memory_copy_s,
        )

    def round_time(self, n_devices: int) -> float:
        """Single-round wall time (seconds)."""
        return self.round_breakdown(n_devices).total

    def run_round(
        self,
        clients: Sequence[FLClient],
        model: LogisticRegressionModel,
        round_index: int = 1,
    ) -> LogisticRegressionModel:
        """Functional in-memory round: train every client, fold, return."""
        weights, bias = model.get_params()
        updates = [client.local_train(weights, bias, round_index) for client in clients]
        new_weights, new_bias = fedavg(updates)
        model.set_params(new_weights, new_bias)
        return model


@dataclass
class FederatedScopeLikeSimulator:
    """Single-instance execution with device-cloud communication.

    "FederatedScope employs a similar strategy for data and models and can
    only use a single resource instance to simulate clients", yet — like
    SimDC — it "independently simulate[s] clients and use[s] device-cloud
    communication for aggregation" (§VI-B4).

    Attributes
    ----------
    instance_cores:
        Cores of the one resource instance clients run on.
    client_train_s:
        CPU seconds of one client's local training.
    client_comm_s:
        Per-client device-cloud communication cost.
    startup_s:
        Fixed per-round overhead.
    """

    instance_cores: int = 64
    client_train_s: float = 1.0
    client_comm_s: float = 0.05
    startup_s: float = 3.0

    def __post_init__(self) -> None:
        if self.instance_cores <= 0:
            raise ValueError("instance_cores must be positive")

    def round_breakdown(self, n_devices: int) -> RoundCostBreakdown:
        """Cost components for one round over ``n_devices`` clients."""
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        return RoundCostBreakdown(
            setup=self.startup_s,
            compute=n_devices * self.client_train_s / self.instance_cores,
            communication=n_devices * self.client_comm_s / self.instance_cores,
        )

    def round_time(self, n_devices: int) -> float:
        """Single-round wall time (seconds)."""
        return self.round_breakdown(n_devices).total

    def run_round(
        self,
        clients: Sequence[FLClient],
        model: LogisticRegressionModel,
        round_index: int = 1,
    ) -> LogisticRegressionModel:
        """Functional round with an explicit (in-process) message step."""
        weights, bias = model.get_params()
        mailbox = []
        for client in clients:
            update = client.local_train(weights, bias, round_index)
            mailbox.append(update)  # the "device-cloud" hop, in process
        new_weights, new_bias = fedavg(mailbox)
        model.set_params(new_weights, new_bias)
        return model


@dataclass
class SimDCRoundModel:
    """SimDC's own round-time model for the same sweep.

    Ray actors spread over physical servers; every actor pays per-round
    data and model downloads and uploads results to shared storage before
    messaging the cloud (§VI-B4) — "although SimDC takes longer for fewer
    devices, its architecture more closely mirrors real-world business
    applications".

    Attributes
    ----------
    total_cores:
        Actor slots (one single-grade device per 1-core bundle).
    device_round_s:
        Per-device operator-flow execution time (alpha at this scale).
    download_s / upload_s:
        Per-device data+model download and result upload via shared
        storage.
    runner_setup_s:
        Ray Runner job setup per round.
    """

    total_cores: int = 200
    device_round_s: float = 2.5
    download_s: float = 0.2
    upload_s: float = 0.1
    runner_setup_s: float = 8.0

    def __post_init__(self) -> None:
        if self.total_cores <= 0:
            raise ValueError("total_cores must be positive")
        if self.device_round_s <= 0:
            raise ValueError("device_round_s must be positive")

    def round_breakdown(self, n_devices: int) -> RoundCostBreakdown:
        """Cost components for one round over ``n_devices`` devices."""
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        waves = -(-n_devices // self.total_cores)
        return RoundCostBreakdown(
            setup=self.runner_setup_s,
            compute=waves * self.device_round_s,
            storage=waves * (self.download_s + self.upload_s),
        )

    def round_time(self, n_devices: int) -> float:
        """Single-round wall time (seconds)."""
        return self.round_breakdown(n_devices).total
