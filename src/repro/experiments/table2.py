"""Table II: fidelity of DeviceFlow dispatch to user-defined curves.

"We further compared the similarity between DeviceFlow's actual dispatch
strategy and the user-defined traffic curves for various single-value
bounded non-negative continuous functions.  The Pearson correlation
coefficients exceed 0.99 in all cases."

Unlike the unit-level discretiser check, this experiment measures the
*realised* dispatch log of a live DeviceFlow instance, end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deviceflow import (
    DeviceFlow,
    Message,
    TABLE2_CURVES,
    TimeIntervalStrategy,
)
from repro.deviceflow.discretize import DispatchTick, schedule_correlation
from repro.experiments.render import format_table
from repro.simkernel import RandomStreams, Simulator

#: Paper: every row reports r > 0.99 (rows 1-2, 5-6 report 0.999, rows
#: 3-4 report 0.995/0.996).
PAPER_TABLE2 = {
    "N(0, 1)": 0.999,
    "N(0, 2)": 0.999,
    "sin(t)+1": 0.995,
    "cos(t)+1": 0.996,
    "2^t": 0.999,
    "10^t": 0.999,
}


@dataclass
class CurveFidelityResult:
    """Measured correlation per curve."""

    rows: list[tuple[str, tuple[float, float], float]] = field(default_factory=list)

    def min_correlation(self) -> float:
        """Worst correlation across curves (paper: > 0.99)."""
        return min(r for _, _, r in self.rows)


def run_table2_curve_fidelity(
    n_messages: int = 10_000,
    interval_seconds: float = 60.0,
    capacity: float = 700.0,
    seed: int = 0,
) -> CurveFidelityResult:
    """Dispatch ``n_messages`` through every Table II curve and correlate."""
    result = CurveFidelityResult()
    for curve in TABLE2_CURVES:
        sim = Simulator()
        flow = DeviceFlow(sim, streams=RandomStreams(seed), capacity_per_second=capacity)
        flow.register_task("t2", TimeIntervalStrategy(curve, interval_seconds), lambda m: None)
        flow.round_started("t2", 1)
        for i in range(n_messages):
            flow.submit(
                Message(task_id="t2", device_id=f"d{i}", round_index=1, payload_ref=f"p{i}")
            )
        flow.round_completed("t2", 1)
        base = sim.now
        sim.run()
        log = flow.dispatcher_for("t2").dispatch_log
        ticks = [DispatchTick(offset=t - base, count=n) for t, n in log]
        correlation = schedule_correlation(curve, ticks, interval_seconds)
        result.rows.append((curve.name, curve.domain, correlation))
    return result


def format_table2(result: CurveFidelityResult) -> str:
    """Render measured vs paper correlations."""
    rows = [
        (name, f"[{domain[0]:g}, {domain[1]:g}]", round(corr, 4), PAPER_TABLE2.get(name, "-"))
        for name, domain, corr in result.rows
    ]
    table = format_table(
        "Table II: Pearson correlation between user curves and realised dispatch",
        ["curve", "domain", "measured r", "paper r"],
        rows,
    )
    return table + f"\nmin r = {result.min_correlation():.4f} (paper: all > 0.99)"
