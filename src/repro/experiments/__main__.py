"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.experiments list
    python -m repro.experiments table1 table2
    python -m repro.experiments all --scale small

``--scale small`` trims device counts for a fast pass; ``--scale paper``
uses the publication parameters.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10,
    format_fig11,
    format_table1,
    format_table2,
    run_fig5_device_trace,
    run_fig6_hybrid_accuracy,
    run_fig7_allocation_time,
    run_fig8_scalability,
    run_fig9_traffic_impact,
    run_fig10_dispatch_demo,
    run_fig11_dropout_impact,
    run_table1_stage_metrics,
    run_table2_curve_fidelity,
)


def _table1(scale: str) -> str:
    n = {"small": 20, "medium": 60, "paper": 500}[scale]
    return format_table1(run_table1_stage_metrics(n_devices_per_grade=n, n_benchmark_per_grade=5))


def _fig5(scale: str) -> str:
    return format_fig5(run_fig5_device_trace(rounds=3))


def _fig6(scale: str) -> str:
    scales = {
        "small": ((4, 4), (20, 20)),
        "medium": ((4, 4), (20, 20), (100, 100)),
        "paper": ((4, 4), (20, 20), (100, 100), (500, 500)),
    }[scale]
    rounds = 10 if scale == "paper" else 5
    return format_fig6(run_fig6_hybrid_accuracy(scales=scales, rounds=rounds, feature_dim=512))


def _fig7(scale: str) -> str:
    return format_fig7(run_fig7_allocation_time())


def _fig8(scale: str) -> str:
    return format_fig8(run_fig8_scalability())


def _fig9(scale: str) -> str:
    n = {"small": 60, "medium": 120, "paper": 300}[scale]
    return format_fig9(run_fig9_traffic_impact(n_devices=n, window_s=1200.0, rounds=10))


def _fig10(scale: str) -> str:
    return format_fig10(run_fig10_dispatch_demo(interval_messages=10_000))


def _fig11(scale: str) -> str:
    n = {"small": 60, "medium": 120, "paper": 1000}[scale]
    return format_fig11(run_fig11_dropout_impact(n_devices=n, rounds=10))


def _table2(scale: str) -> str:
    return format_table2(run_table2_curve_fidelity(n_messages=10_000))


EXPERIMENTS = {
    "table1": _table1,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "table2": _table2,
    "fig11": _fig11,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the SimDC paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "paper"),
        default="medium",
        help="workload scale (default: medium)",
    )
    args = parser.parse_args(argv)

    if args.names == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; try 'list'")

    for name in names:
        started = time.perf_counter()
        output = EXPERIMENTS[name](args.scale)
        elapsed = time.perf_counter() - started
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s wall time]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
