"""Fig. 7: task execution time vs scale for Types 1-5 and the optimizer.

"For smaller scales, execution time on physical devices is primarily
influenced by the APK startup time, making logical simulation relatively
faster.  In contrast, at larger scales ... the underlying implementation
of device simulation operators executes faster.  The red line [the
optimizer] consistently demonstrates shorter execution time compared to
other allocation ratios."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.fig6 import TYPE_RATIOS
from repro.experiments.render import format_table
from repro.scheduler.allocation import (
    AllocationProblem,
    GradeAllocationParams,
    fixed_ratio_allocation,
    solve_allocation,
)


def paper_problem(n_high: int, n_low: int) -> AllocationProblem:
    """The experimental environment of §VI-A2 as an allocation instance.

    High devices: 4-CPU/12-GB actors (10 concurrent slots from 40 unit
    bundles), 17 phones (4 local + 13 MSP); Low devices: 1-CPU/6-GB
    actors (10 slots from 60 bundles), 13 phones (6 local + 7 MSP).
    Alphas come from the logical cost model, betas/lambdas from Table I's
    training durations and framework startup.
    """
    return AllocationProblem(
        [
            GradeAllocationParams(
                grade="High", n_devices=n_high, bundles=40, units_per_device=4,
                n_phones=17, alpha=12.0, beta=16.2, lam=45.0,
            ),
            GradeAllocationParams(
                grade="Low", n_devices=n_low, bundles=60, units_per_device=6,
                n_phones=13, alpha=20.0, beta=21.6, lam=60.0,
            ),
        ]
    )


@dataclass
class AllocationTimeResult:
    """Execution time (s) per scale for each strategy."""

    scales: list[tuple[int, int]] = field(default_factory=list)
    times: dict[tuple[str, tuple[int, int]], float] = field(default_factory=dict)
    optimizer_splits: dict[tuple[int, int], dict[str, int]] = field(default_factory=dict)

    def strategy_times(self, name: str) -> list[float]:
        """Time series of one strategy across scales."""
        return [self.times[(name, scale)] for scale in self.scales]


def run_fig7_allocation_time(
    scales: tuple[tuple[int, int], ...] = ((4, 4), (20, 20), (100, 100), (500, 500)),
) -> AllocationTimeResult:
    """Evaluate Types 1-5 and the optimizer on the paper's environment."""
    result = AllocationTimeResult(scales=list(scales))
    for scale in scales:
        problem = paper_problem(*scale)
        for type_name, fraction in TYPE_RATIOS:
            result.times[(type_name, scale)] = fixed_ratio_allocation(
                problem, fraction
            ).total_time
        optimal = solve_allocation(problem)
        result.times[("Optimization", scale)] = optimal.total_time
        result.optimizer_splits[scale] = optimal.x
    return result


def format_fig7(result: AllocationTimeResult) -> str:
    """Render execution times with the optimizer's chosen splits."""
    strategies = [name for name, _ in TYPE_RATIOS] + ["Optimization"]
    rows = []
    for name in strategies:
        rows.append([name] + [round(t, 1) for t in result.strategy_times(name)])
    headers = ["Strategy"] + [f"({h},{l})" for h, l in result.scales]
    table = format_table("Fig. 7: task execution time (s) vs scale", headers, rows)
    splits = "; ".join(
        f"({h},{l})->x={result.optimizer_splits[(h, l)]}" for h, l in result.scales
    )
    return table + f"\noptimizer logical splits: {splits}"
