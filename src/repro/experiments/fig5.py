"""Fig. 5: CPU and memory trace of one benchmarking device over 3 rounds.

"Performance measurement starts with the APK launch, and no data is
recorded during the device's wait for global aggregation to complete."
The trace comes straight out of the cloud metrics database that PhoneMgr
uploads samples to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import NodeSpec
from repro.cluster.resources import ResourceBundle
from repro.core import PlatformConfig, SimDC
from repro.experiments.render import format_table
from repro.scheduler.task import GradeRequirement, TaskSpec


@dataclass
class DeviceTraceResult:
    """The sampled series of one benchmarking phone."""

    serial: str
    times: list[float] = field(default_factory=list)
    cpu_percent: list[float] = field(default_factory=list)
    memory_mb: list[float] = field(default_factory=list)
    round_windows: list[tuple[float, float]] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        """Total samples collected."""
        return len(self.times)

    def gaps(self) -> list[tuple[float, float]]:
        """Unsampled intervals between consecutive round windows."""
        out = []
        for (_, end), (start, _) in zip(self.round_windows, self.round_windows[1:]):
            out.append((end, start))
        return out


def run_fig5_device_trace(rounds: int = 3, seed: int = 0, batch: bool = True) -> DeviceTraceResult:
    """Run a 3-round task with one benchmarking phone; return its trace.

    ``batch=False`` polls through the legacy per-phone sampler processes
    instead of the shared ticker — identical trace either way.
    """
    config = PlatformConfig(seed=seed, cluster_nodes=[NodeSpec(20, 30)] * 2, batch=batch)
    platform = SimDC(config)
    spec = TaskSpec(
        name="fig5",
        grades=[
            GradeRequirement(
                grade="High",
                n_devices=8,
                n_benchmark=1,
                bundles=8,
                n_phones=2,
                device_bundle=ResourceBundle(cpus=4, memory_gb=12),
            )
        ],
        rounds=rounds,
        numeric=False,
        feature_dim=4096,
    )
    platform.submit(spec)
    platform.run_until_idle(max_time=1e8)
    result = platform.result(spec.task_id)
    serial = result.benchmark_records[0].serial
    samples = platform.db.query("device_samples", task_id=spec.task_id, serial=serial)
    samples.sort(key=lambda r: r["time"])
    trace = DeviceTraceResult(serial=serial)
    for row in samples:
        trace.times.append(row["time"])
        trace.cpu_percent.append(row["cpu_percent"])
        trace.memory_mb.append(row["memory_kb"] / 1024.0)
    for record in result.benchmark_records:
        if record.serial == serial:
            start = min(s for _, s, _ in record.boundaries)
            end = max(e for _, _, e in record.boundaries)
            trace.round_windows.append((start, end))
    trace.round_windows.sort()
    return trace


def format_fig5(trace: DeviceTraceResult, bins: int = 12) -> str:
    """Render a down-sampled view of the trace plus the inter-round gaps."""
    if trace.n_samples == 0:
        return "Fig. 5: no samples collected"
    step = max(1, trace.n_samples // bins)
    rows = [
        (round(trace.times[i], 1), round(trace.cpu_percent[i], 2), round(trace.memory_mb[i], 2))
        for i in range(0, trace.n_samples, step)
    ]
    table = format_table(
        f"Fig. 5: benchmarking device {trace.serial} trace "
        f"({trace.n_samples} samples, {len(trace.round_windows)} rounds)",
        ["time s", "CPU %", "memory MB"],
        rows,
    )
    gaps = ", ".join(f"[{a:.0f}s..{b:.0f}s]" for a, b in trace.gaps())
    return table + f"\nno-data windows while waiting for aggregation: {gaps or 'none'}"
