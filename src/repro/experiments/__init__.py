"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run_*`` (returns a structured result object) and
``format_*`` (renders the same rows/series the paper reports).  Benchmarks
under ``benchmarks/`` call these with paper-scale parameters; tests call
them scaled down; EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.fig5 import DeviceTraceResult, format_fig5, run_fig5_device_trace
from repro.experiments.fig6 import HybridAccuracyResult, format_fig6, run_fig6_hybrid_accuracy
from repro.experiments.fig7 import AllocationTimeResult, format_fig7, run_fig7_allocation_time
from repro.experiments.fig8 import ScalabilityResult, format_fig8, run_fig8_scalability
from repro.experiments.fig9 import TrafficImpactResult, format_fig9, run_fig9_traffic_impact
from repro.experiments.fig10 import DispatchDemoResult, format_fig10, run_fig10_dispatch_demo
from repro.experiments.fig11 import DropoutImpactResult, format_fig11, run_fig11_dropout_impact
from repro.experiments.table1 import StageMetricsResult, format_table1, run_table1_stage_metrics
from repro.experiments.table2 import CurveFidelityResult, format_table2, run_table2_curve_fidelity

__all__ = [
    "AllocationTimeResult",
    "CurveFidelityResult",
    "DeviceTraceResult",
    "DispatchDemoResult",
    "DropoutImpactResult",
    "HybridAccuracyResult",
    "ScalabilityResult",
    "StageMetricsResult",
    "TrafficImpactResult",
    "format_fig5",
    "format_fig6",
    "format_fig7",
    "format_fig8",
    "format_fig9",
    "format_fig10",
    "format_fig11",
    "format_table1",
    "format_table2",
    "run_fig5_device_trace",
    "run_fig6_hybrid_accuracy",
    "run_fig7_allocation_time",
    "run_fig8_scalability",
    "run_fig9_traffic_impact",
    "run_fig10_dispatch_demo",
    "run_fig11_dropout_impact",
    "run_table1_stage_metrics",
    "run_table2_curve_fidelity",
]
