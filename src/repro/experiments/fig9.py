"""Fig. 9: impact of device-behaviour traffic curves on aggregation.

The non-IID scenario: "clients with higher CTR transmit data faster to the
cloud, while those with lower CTR experience longer delays", with response
curves shaped as right-tailed normals N(0, sigma), sigma in {1, 2, 3}.

(a) Under *sample-threshold* aggregation, a smaller sigma concentrates
    arrivals early: the threshold is reached sooner and more often inside
    the fixed 20-minute window, so more aggregation rounds complete and
    the loss ends lower.  Larger sigmas leave part of the response tail
    outside the window entirely.
(b) Under *scheduled* aggregation, devices respond every round with a
    curve-shaped delay; only responses inside the period contribute.
    A smaller sigma aggregates more (and less CTR-biased) samples per
    round, yielding higher train accuracy — measured against the full
    training population, i.e. how representative the aggregate is of the
    true distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.aggregation import AggregationService, SampleThresholdTrigger
from repro.cloud.storage import ObjectStorage
from repro.data import make_federated_ctr_data
from repro.data.partition import assign_delay_profiles
from repro.experiments.render import format_table
from repro.ml import FLClient, LogisticRegressionModel, fedavg
from repro.simkernel import Simulator

#: Local-training recipe strong enough for visible convergence dynamics on
#: the synthetic CTR data (the paper's absolute Avazu numbers differ; the
#: orderings are what reproduce).
_EPOCHS = 10
_LEARNING_RATE = 0.3


@dataclass
class TrafficImpactResult:
    """Per-sigma aggregation histories."""

    window_s: float
    threshold_loss: dict[float, list[tuple[float, float]]] = field(default_factory=dict)
    threshold_rounds: dict[float, int] = field(default_factory=dict)
    arrivals_in_window: dict[float, int] = field(default_factory=dict)
    scheduled_accuracy: dict[float, list[tuple[int, float]]] = field(default_factory=dict)
    participation: dict[float, list[int]] = field(default_factory=dict)

    def final_threshold_loss(self, sigma: float) -> float:
        """Loss after the last threshold aggregation for one sigma."""
        series = self.threshold_loss[sigma]
        if not series:
            raise ValueError(f"no aggregations completed for sigma={sigma}")
        return series[-1][1]

    def loss_at(self, sigma: float, minute: float) -> float:
        """Loss of the latest aggregation at/before ``minute``."""
        last = None
        for t, loss in self.threshold_loss[sigma]:
            if t <= minute:
                last = loss
        if last is None:
            raise ValueError(f"no aggregation before minute {minute} for sigma={sigma}")
        return last


def _make_clients(dataset, feature_dim: int, seed: int) -> dict[str, FLClient]:
    return {
        d: FLClient(
            dataset.shard(d), feature_dim, epochs=_EPOCHS, learning_rate=_LEARNING_RATE,
            rng=np.random.default_rng(np.random.SeedSequence((seed, i))),
        )
        for i, d in enumerate(dataset.device_ids())
    }


def _run_threshold(
    sigma: float, n_devices: int, window_s: float, feature_dim: int, seed: int
):
    """Panel (a): one-shot arrivals, sample-threshold aggregation."""
    dataset = make_federated_ctr_data(
        n_devices=n_devices, records_per_device=40, feature_dim=feature_dim,
        seed=seed, skew={"positive_fraction": 0.5, "spread": 1.5},
        test_records=1500, base_ctr=0.5,
    )
    # sigma=1 fits inside the window (4 sigma = window); larger sigmas
    # push part of the response tail beyond it.
    sigma_seconds = sigma * window_s / 4.0
    delays = assign_delay_profiles(
        dataset.device_biases, sigma=sigma_seconds, max_delay=10.0 * window_s, seed=seed
    )
    sim = Simulator()
    service = AggregationService(
        sim,
        ObjectStorage(),
        SampleThresholdTrigger(max(1, dataset.n_records // 8)),
        model=LogisticRegressionModel(feature_dim),
        test_set=dataset.test,
        name=f"fig9a-sigma{sigma}",
    )
    service.start()
    clients = _make_clients(dataset, feature_dim, seed)
    arrivals = {"n": 0}

    def arrival(device_id: str) -> None:
        arrivals["n"] += 1
        weights, bias = service.model.get_params()
        service.receive_update(
            clients[device_id].local_train(weights, bias, service.rounds_completed + 1)
        )

    for device_id, delay in delays.items():
        if delay <= window_s:
            sim.schedule(delay, arrival, device_id)
    sim.run(until=window_s)
    service.stop()
    return service, arrivals["n"]


def _run_scheduled(
    sigma: float, n_devices: int, window_s: float, rounds: int, feature_dim: int, seed: int
):
    """Panel (b): per-round responses; in-period responders aggregate."""
    dataset = make_federated_ctr_data(
        n_devices=n_devices, records_per_device=40, feature_dim=feature_dim,
        seed=seed, skew={"positive_fraction": 0.5, "spread": 1.5},
        test_records=1500, base_ctr=0.5,
    )
    period = window_s / rounds
    sigma_seconds = sigma * period  # sigma=1: most responses fit one period
    delays = assign_delay_profiles(
        dataset.device_biases, sigma=sigma_seconds, max_delay=10.0 * period, seed=seed
    )
    clients = _make_clients(dataset, feature_dim, seed)
    model = LogisticRegressionModel(feature_dim)
    shards = {d: dataset.shard(d) for d in dataset.device_ids()}
    all_features = np.concatenate([s.features for s in shards.values()])
    all_labels = np.concatenate([s.labels for s in shards.values()])
    jitter_rng = np.random.default_rng(np.random.SeedSequence((seed, 0x919)))

    accuracy_by_round: list[tuple[int, float]] = []
    participation: list[int] = []
    for round_index in range(1, rounds + 1):
        weights, bias = model.get_params()
        updates = []
        for device_id, delay in delays.items():
            effective = delay * jitter_rng.lognormal(0.0, 0.15)
            if effective <= period:
                updates.append(clients[device_id].local_train(weights, bias, round_index))
        participation.append(len(updates))
        if updates:
            model.set_params(*fedavg(updates))
        train_accuracy = model.evaluate(all_features, all_labels)["accuracy"]
        accuracy_by_round.append((round_index, train_accuracy))
    return accuracy_by_round, participation


def run_fig9_traffic_impact(
    sigmas: tuple[float, ...] = (1.0, 2.0, 3.0),
    n_devices: int = 120,
    window_s: float = 1200.0,
    rounds: int = 10,
    feature_dim: int = 512,
    seed: int = 0,
) -> TrafficImpactResult:
    """Both panels of Fig. 9 across the sigma family."""
    result = TrafficImpactResult(window_s=window_s)
    for sigma in sigmas:
        service, arrived = _run_threshold(sigma, n_devices, window_s, feature_dim, seed)
        result.threshold_loss[sigma] = [
            (record.time / 60.0, record.test_loss) for record in service.history
        ]
        result.threshold_rounds[sigma] = service.rounds_completed
        result.arrivals_in_window[sigma] = arrived
        accuracy, participation = _run_scheduled(
            sigma, n_devices, window_s, rounds, feature_dim, seed
        )
        result.scheduled_accuracy[sigma] = accuracy
        result.participation[sigma] = participation
    return result


def format_fig9(result: TrafficImpactResult) -> str:
    """Render both panels as tables."""
    sigmas = sorted(result.threshold_loss)
    window_min = result.window_s / 60.0
    checkpoints = [window_min * f for f in (0.25, 0.5, 1.0)]

    def loss_or_dash(sigma: float, minute: float):
        try:
            return round(result.loss_at(sigma, minute), 4)
        except ValueError:
            return None

    rows_a = [
        [
            f"sigma={sigma:g}",
            result.arrivals_in_window[sigma],
            result.threshold_rounds[sigma],
        ]
        + [loss_or_dash(sigma, m) for m in checkpoints]
        for sigma in sigmas
    ]
    part_a = format_table(
        f"Fig. 9(a): sample-threshold aggregation in a {window_min:.0f}-minute window",
        ["curve", "arrivals in window", "aggregations"]
        + [f"loss@{m:.0f}min" for m in checkpoints],
        rows_a,
    )
    rows_b = []
    max_round = max(
        (r for sigma in sigmas for r, _ in result.scheduled_accuracy[sigma]), default=0
    )
    for sigma in sigmas:
        series = dict(result.scheduled_accuracy[sigma])
        rows_b.append(
            [f"sigma={sigma:g}"]
            + [round(series.get(r, float("nan")), 4) for r in range(1, max_round + 1)]
            + [round(float(np.mean(result.participation[sigma])), 1)]
        )
    part_b = format_table(
        "Fig. 9(b): scheduled aggregation, train accuracy per round (full population)",
        ["curve"] + [f"r{r}" for r in range(1, max_round + 1)] + ["avg participants"],
        rows_b,
    )
    return part_a + "\n\n" + part_b
