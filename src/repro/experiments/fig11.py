"""Fig. 11: device dropout vs data distribution.

"In the real-time dispatching scenario, we simulated 1,000 devices with
varying dropout probabilities (0.3, 0.7, 0.9) and recorded the aggregation
results using a timed aggregation strategy."  With identically distributed
device data, dropout barely moves test accuracy; with differentially
distributed data (70% of devices positive-heavy, 30% negative-heavy),
convergence destabilises and accuracy degrades as dropout grows.

Messages travel through a live DeviceFlow with the real-time accumulated
strategy's per-message failure probability — the platform's dropout
mechanism, not an ad-hoc coin flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.aggregation import AggregationService, ScheduledTrigger
from repro.cloud.storage import ObjectStorage
from repro.data import make_federated_ctr_data
from repro.deviceflow import DeviceFlow, Message, RealTimeAccumulatedStrategy
from repro.experiments.render import format_table
from repro.ml import FLClient, LogisticRegressionModel
from repro.simkernel import RandomStreams, Simulator, Timeout


@dataclass
class DropoutImpactResult:
    """Test accuracy per round for each (distribution, dropout) setting."""

    rounds: int
    accuracy: dict[tuple[str, float], list[float]] = field(default_factory=dict)

    def final_accuracy(self, distribution: str, dropout: float) -> float:
        """Accuracy after the last round of one setting."""
        return self.accuracy[(distribution, dropout)][-1]

    def volatility(self, distribution: str, dropout: float) -> float:
        """Std-dev of the round-to-round accuracy changes (instability)."""
        series = np.array(self.accuracy[(distribution, dropout)])
        if len(series) < 2:
            return 0.0
        return float(np.std(np.diff(series)))


def _run_setting(
    dropout: float,
    skew: dict | None,
    n_devices: int,
    rounds: int,
    feature_dim: int,
    seed: int,
) -> list[float]:
    """One multi-round FL run with DeviceFlow dropout; returns accuracies."""
    dataset = make_federated_ctr_data(
        n_devices=n_devices,
        records_per_device=40,
        feature_dim=feature_dim,
        seed=seed,
        skew=skew,
        test_records=1500,
        base_ctr=0.5,  # balanced labels keep accuracy an informative metric
    )
    sim = Simulator()
    streams = RandomStreams(seed)
    storage = ObjectStorage()
    period = 60.0
    service = AggregationService(
        sim,
        storage,
        ScheduledTrigger(period, max_rounds=rounds),
        model=LogisticRegressionModel(feature_dim),
        test_set=dataset.test,
        name=f"fig11-p{dropout}",
    )
    service.start()
    flow = DeviceFlow(sim, streams=streams, capacity_per_second=5000.0)
    flow.register_task(
        "fig11",
        RealTimeAccumulatedStrategy([1], failure_prob=dropout),
        service.receive_message,
    )
    ids = dataset.device_ids()
    clients = {
        d: FLClient(
            dataset.shard(d), feature_dim, epochs=10, learning_rate=0.3,
            rng=streams.get(f"client.{d}"),
        )
        for d in ids
    }

    def round_loop():
        for round_index in range(1, rounds + 1):
            flow.round_started("fig11", round_index)
            weights, bias = service.model.get_params()
            for device_id in ids:
                update = clients[device_id].local_train(weights, bias, round_index)
                ref = f"fig11/{device_id}/r{round_index}"
                storage.put(ref, update, update.payload_bytes(), now=sim.now)
                flow.submit(
                    Message(
                        task_id="fig11", device_id=device_id, round_index=round_index,
                        payload_ref=ref, size_bytes=update.payload_bytes(),
                        n_samples=update.n_samples,
                    )
                )
            flow.round_completed("fig11", round_index)
            yield Timeout(period)

    sim.process(round_loop())
    sim.run(until=rounds * period + 1.0)
    service.stop()
    accuracies = [record.test_accuracy for record in service.history]
    # Rounds where every message dropped produce no aggregation; carry the
    # previous accuracy forward so series align across settings.
    while len(accuracies) < rounds:
        accuracies.append(accuracies[-1] if accuracies else 0.5)
    return accuracies[:rounds]


def run_fig11_dropout_impact(
    dropouts: tuple[float, ...] = (0.0, 0.3, 0.7, 0.9),
    n_devices: int = 200,
    rounds: int = 10,
    feature_dim: int = 512,
    seed: int = 0,
) -> DropoutImpactResult:
    """Both panels: identically and differentially distributed data."""
    result = DropoutImpactResult(rounds=rounds)
    for dropout in dropouts:
        result.accuracy[("iid", dropout)] = _run_setting(
            dropout, None, n_devices, rounds, feature_dim, seed
        )
        result.accuracy[("skewed", dropout)] = _run_setting(
            dropout,
            {"positive_fraction": 0.7, "spread": 2.5},
            n_devices,
            rounds,
            feature_dim,
            seed,
        )
    return result


def format_fig11(result: DropoutImpactResult) -> str:
    """Render per-round accuracy for both distributions."""
    parts = []
    for distribution, title in (
        ("iid", "Fig. 11(a): identically distributed"),
        ("skewed", "Fig. 11(b): differentially distributed (70/30)"),
    ):
        dropouts = sorted(p for d, p in result.accuracy if d == distribution)
        rows = []
        for p in dropouts:
            series = result.accuracy[(distribution, p)]
            rows.append(
                [f"dropout={p:g}"]
                + [round(a, 4) for a in series]
                + [round(result.volatility(distribution, p), 4)]
            )
        headers = ["setting"] + [f"r{r}" for r in range(1, result.rounds + 1)] + ["volatility"]
        parts.append(format_table(title + " — test accuracy per round", headers, rows))
    return "\n\n".join(parts)
