"""Fig. 10: rule-based dispatch strategies, end to end through DeviceFlow.

(a)/(b): specific time-point dispatching — amounts sent at designated
points, with the cloud receiving each burst spread over subsequent
instants because of the 700 msg/s single-threaded transmission cap.

(c)/(d): specific time-interval dispatching — a right-tailed N(0,1) curve
scaled to a 1-minute window and 10,000 messages; the realised per-second
send amounts track the curve and the cloud-side cumulative count ramps
accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.deviceflow import (
    DeviceFlow,
    Message,
    TimeIntervalStrategy,
    TimePoint,
    TimePointStrategy,
    right_tailed_normal,
)
from repro.experiments.render import format_table
from repro.simkernel import RandomStreams, Simulator


@dataclass
class DispatchDemoResult:
    """Send/receive series for both rule-based mechanisms."""

    point_dispatches: list[tuple[float, int]] = field(default_factory=list)
    point_cumulative_received: list[tuple[float, int]] = field(default_factory=list)
    interval_dispatches: list[tuple[float, int]] = field(default_factory=list)
    interval_curve: list[tuple[float, float]] = field(default_factory=list)
    interval_cumulative_received: list[tuple[float, int]] = field(default_factory=list)
    interval_total: int = 0

    def received_total(self, series: list[tuple[float, int]]) -> int:
        """Final cumulative count of a receive series."""
        return series[-1][1] if series else 0


def _run_flow(strategy, n_messages: int, capacity: float, seed: int):
    sim = Simulator()
    flow = DeviceFlow(sim, streams=RandomStreams(seed), capacity_per_second=capacity)
    received: list[tuple[float, int]] = []
    counter = {"n": 0}

    def downstream(message: Message) -> None:
        counter["n"] += 1
        received.append((sim.now, counter["n"]))

    flow.register_task("demo", strategy, downstream)
    flow.round_started("demo", 1)
    for i in range(n_messages):
        flow.submit(
            Message(task_id="demo", device_id=f"d{i}", round_index=1, payload_ref=f"p{i}")
        )
    flow.round_completed("demo", 1)
    base = sim.now
    sim.run()
    dispatcher = flow.dispatcher_for("demo")
    dispatches = [(t - base, n) for t, n in dispatcher.dispatch_log]
    cumulative = [(t - base, n) for t, n in received]
    return dispatches, cumulative


def run_fig10_dispatch_demo(
    interval_messages: int = 10_000,
    interval_seconds: float = 60.0,
    capacity: float = 700.0,
    seed: int = 0,
) -> DispatchDemoResult:
    """Run both panels' scenarios through a real DeviceFlow instance."""
    result = DispatchDemoResult(interval_total=interval_messages)

    # (a)/(b): three designated time points with fixed quantities.
    points = [TimePoint(0.0, 200), TimePoint(10.0, 400), TimePoint(30.0, 600)]
    result.point_dispatches, result.point_cumulative_received = _run_flow(
        TimePointStrategy(points), n_messages=1200, capacity=capacity, seed=seed
    )

    # (c)/(d): right-tailed N(0,1) over one minute, 10k messages.
    curve = right_tailed_normal(1.0)
    strategy = TimeIntervalStrategy(curve, interval_seconds=interval_seconds)
    result.interval_dispatches, result.interval_cumulative_received = _run_flow(
        strategy, n_messages=interval_messages, capacity=capacity, seed=seed
    )
    grid = np.linspace(0.0, interval_seconds, 61)
    scaled = curve.to_actual_time(interval_seconds)(grid)
    result.interval_curve = [(float(t), float(v)) for t, v in zip(grid, scaled)]
    return result


def format_fig10(result: DispatchDemoResult) -> str:
    """Render the four panels as compact tables."""
    part_a = format_table(
        "Fig. 10(a): time-point dispatch amounts",
        ["t (s)", "messages sent"],
        [(round(t, 2), n) for t, n in result.point_dispatches],
    )
    received_b = result.received_total(result.point_cumulative_received)
    sample_b = result.point_cumulative_received[:: max(1, len(result.point_cumulative_received) // 8)]
    part_b = format_table(
        f"Fig. 10(b): cloud cumulative receipt (total {received_b})",
        ["t (s)", "cumulative"],
        [(round(t, 2), n) for t, n in sample_b],
    )
    # Bucket the interval dispatches per second for panel (c).
    buckets: dict[int, int] = {}
    for t, n in result.interval_dispatches:
        buckets[int(t)] = buckets.get(int(t), 0) + n
    part_c = format_table(
        "Fig. 10(c): per-second dispatch amounts vs traffic function",
        ["t (s)", "sent", "f(t)"],
        [
            (second, buckets.get(second, 0), round(dict(result.interval_curve).get(float(second), 0.0), 4))
            for second in range(0, 60, 5)
        ],
    )
    received_d = result.received_total(result.interval_cumulative_received)
    part_d = f"Fig. 10(d): cloud received {received_d}/{result.interval_total} messages"
    return "\n\n".join([part_a, part_b, part_c, part_d])
