"""Fig. 8: single-round time vs device scale for three simulators.

"For fewer than 1,000 devices, the single-round training time of SimDC is
larger than that of the other two frameworks ... The single-round training
times of SimDC and FederatedScope are comparable at large scales ...
While FedScale appears faster, its simulation deviate[s] significantly
from real-world scenarios."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import (
    FedScaleLikeSimulator,
    FederatedScopeLikeSimulator,
    SimDCRoundModel,
)
from repro.experiments.render import format_table

DEFAULT_SCALES: tuple[int, ...] = (100, 316, 1000, 3162, 10_000, 31_623, 100_000)


@dataclass
class ScalabilityResult:
    """Round time (s) per simulator per scale."""

    scales: list[int] = field(default_factory=list)
    simdc: list[float] = field(default_factory=list)
    fedscale: list[float] = field(default_factory=list)
    federatedscope: list[float] = field(default_factory=list)

    def crossover_scale(self) -> int:
        """First scale where SimDC is within 20% of FederatedScope."""
        for scale, ours, theirs in zip(self.scales, self.simdc, self.federatedscope):
            if ours <= theirs * 1.2:
                return scale
        return self.scales[-1]


def run_fig8_scalability(
    scales: tuple[int, ...] = DEFAULT_SCALES,
    total_cores: int = 200,
) -> ScalabilityResult:
    """Sweep the three round-time models over the device scales."""
    simdc = SimDCRoundModel(total_cores=total_cores)
    fedscale = FedScaleLikeSimulator(total_cores=total_cores)
    federatedscope = FederatedScopeLikeSimulator()
    result = ScalabilityResult(scales=list(scales))
    for scale in scales:
        result.simdc.append(simdc.round_time(scale))
        result.fedscale.append(fedscale.round_time(scale))
        result.federatedscope.append(federatedscope.round_time(scale))
    return result


def format_fig8(result: ScalabilityResult) -> str:
    """Render the scalability table and key shape statements."""
    rows = [
        (scale, round(ours, 1), round(fs, 1), round(fscope, 1))
        for scale, ours, fs, fscope in zip(
            result.scales, result.simdc, result.fedscale, result.federatedscope
        )
    ]
    table = format_table(
        "Fig. 8: average single-round time (s) vs number of simulated devices",
        ["devices", "SimDC", "FedScale", "FederatedScope"],
        rows,
    )
    notes = [
        f"SimDC comparable to FederatedScope from ~{result.crossover_scale()} devices",
        "FedScale fastest throughout (no device-cloud communication)",
    ]
    return table + "\n" + "\n".join(notes)
