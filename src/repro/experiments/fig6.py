"""Fig. 6: hybrid heterogeneous computing does not hurt accuracy.

The paper trains with PyMNN operators in logical simulation and C++ MNN
operators on phones, splits each grade's devices across tiers at five
ratios (Type 1 = 100% logical ... Type 5 = 100% physical), and shows the
final accuracy stays within +/-0.5% of the benchmark "local distributed
computing" run at every scale from (4,4) to (500,500) devices per grade.

Accuracy differences are a pure function of *which backend trains which
client* — the timing layers cannot change the aggregated mathematics of a
synchronous round — so this experiment runs at the client level with the
two numeric backends, keeping the full (500,500) sweep tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import make_federated_ctr_data
from repro.experiments.render import format_table
from repro.ml import DEVICE_BACKEND, SERVER_BACKEND, FLClient, LogisticRegressionModel, fedavg

#: The paper's five allocation ratios (logical-tier fraction).
TYPE_RATIOS: tuple[tuple[str, float], ...] = (
    ("Type 1", 1.00),
    ("Type 2", 0.75),
    ("Type 3", 0.50),
    ("Type 4", 0.25),
    ("Type 5", 0.00),
)


@dataclass
class HybridAccuracyResult:
    """ACC difference (percentage points) per scale and allocation type."""

    scales: list[tuple[int, int]] = field(default_factory=list)
    diffs: dict[tuple[str, tuple[int, int]], float] = field(default_factory=dict)
    benchmark_accuracy: dict[tuple[int, int], float] = field(default_factory=dict)

    def max_abs_diff(self) -> float:
        """Worst-case deviation across all cells (the <0.5% claim)."""
        return max(abs(v) for v in self.diffs.values())


def _train_hybrid(
    dataset, feature_dim: int, logical_fraction: float, rounds: int, seed: int
) -> float:
    """Synchronous FedAvg with a backend split; returns test accuracy.

    Clients on the physical tier run the device backend, whose operator
    implementation differs from the server's in two realistic ways:
    float32 arithmetic with a different reduction order, and the SDK's own
    mini-batch shuffling stream (the shuffle seed is salted with the
    backend name).  Both are implementation details of "operators with
    identical functionalities but differing underlying implementations"
    (§VI-B2) — the sources of the sub-0.5% accuracy deviations.
    """
    ids = dataset.device_ids()
    n_logical = int(round(logical_fraction * len(ids)))
    clients = []
    for index, device_id in enumerate(ids):
        backend = SERVER_BACKEND if index < n_logical else DEVICE_BACKEND
        shuffle_words = (seed, index, sum(backend.name.encode()))
        clients.append(
            FLClient(
                dataset.shard(device_id),
                feature_dim,
                backend=backend,
                epochs=10,
                learning_rate=0.05,
                rng=np.random.default_rng(np.random.SeedSequence(shuffle_words)),
            )
        )
    model = LogisticRegressionModel(feature_dim)
    for round_index in range(1, rounds + 1):
        weights, bias = model.get_params()
        updates = [client.local_train(weights, bias, round_index) for client in clients]
        model.set_params(*fedavg(updates))
    return model.evaluate(dataset.test.features, dataset.test.labels)["accuracy"]


def run_fig6_hybrid_accuracy(
    scales: tuple[tuple[int, int], ...] = ((4, 4), (20, 20), (100, 100), (500, 500)),
    rounds: int = 10,
    feature_dim: int = 512,
    seed: int = 0,
) -> HybridAccuracyResult:
    """ACC difference of every Type vs the all-server benchmark run.

    The benchmark "local distributed computing environment" trains every
    client with the server backend (Type 1 and the benchmark differ only
    in execution placement, which is why their difference is ~0).
    """
    result = HybridAccuracyResult(scales=list(scales))
    for scale in scales:
        n_high, n_low = scale
        dataset = make_federated_ctr_data(
            n_devices=n_high + n_low,
            records_per_device=20,
            feature_dim=feature_dim,
            seed=seed,
            test_records=2000,
            base_ctr=0.5,  # balanced labels keep accuracy sensitive
        )
        benchmark = _train_hybrid(dataset, feature_dim, 1.0, rounds, seed)
        result.benchmark_accuracy[scale] = benchmark
        for type_name, fraction in TYPE_RATIOS:
            accuracy = _train_hybrid(dataset, feature_dim, fraction, rounds, seed)
            result.diffs[(type_name, scale)] = 100.0 * (accuracy - benchmark)
    return result


def format_fig6(result: HybridAccuracyResult) -> str:
    """Render ACC differences (percentage points) by scale and type."""
    rows = []
    for type_name, _ in TYPE_RATIOS:
        row = [type_name]
        for scale in result.scales:
            row.append(round(result.diffs[(type_name, scale)], 4))
        rows.append(row)
    headers = ["Allocation"] + [f"({h},{l})" for h, l in result.scales]
    table = format_table(
        "Fig. 6: ACC difference (pct pts) vs local distributed benchmark "
        "(paper: all within +/-0.5%)",
        headers,
        rows,
    )
    return table + f"\nmax |ACC diff| = {result.max_abs_diff():.4f} pct pts"
