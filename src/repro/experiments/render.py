"""Minimal fixed-width table rendering for experiment outputs."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render rows as a fixed-width text table with a title line."""
    if not headers:
        raise ValueError("headers must be non-empty")
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
