"""Table I: physical performance metrics per APK lifecycle stage.

The paper simulates 500 High + 500 Low devices with 5 benchmarking phones
per grade and reports, for the first training round, per-stage average
power (mAh), duration (min) and communication volume (KB).  Here the same
task shape runs on the platform (time-mode computation — the measured
quantities are physical, not numeric) and the rows are reconstructed from
the sampled ADB metrics exactly as PhoneMgr uploads them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cluster import NodeSpec
from repro.core import PlatformConfig, SimDC
from repro.experiments.render import format_table
from repro.scheduler.task import GradeRequirement, TaskSpec
from repro.cluster.resources import ResourceBundle

#: Paper values for EXPERIMENTS.md comparison: (grade, stage) -> (mAh, min).
PAPER_TABLE1 = {
    ("High", 1): (0.24, 0.25), ("High", 2): (0.51, 0.25), ("High", 3): (0.18, 0.27),
    ("High", 4): (0.37, 0.25), ("High", 5): (0.44, 0.25),
    ("Low", 1): (1.71, 0.25), ("Low", 2): (1.80, 0.25), ("Low", 3): (0.66, 0.36),
    ("Low", 4): (1.65, 0.25), ("Low", 5): (1.82, 0.25),
}
PAPER_TRAINING_COMM_KB = 33.10


@dataclass
class StageMetricsResult:
    """Averaged Table-I rows: (grade, stage, label, mAh, min, KB)."""

    rows: list[tuple[str, int, str, float, float, float]] = field(default_factory=list)
    n_benchmark_per_grade: int = 0

    def row(self, grade: str, stage: int) -> tuple[str, int, str, float, float, float]:
        """Lookup one (grade, stage) row."""
        for entry in self.rows:
            if entry[0] == grade and entry[1] == stage:
                return entry
        raise KeyError(f"no row for {grade!r} stage {stage}")


def run_table1_stage_metrics(
    n_devices_per_grade: int = 100,
    n_benchmark_per_grade: int = 5,
    seed: int = 0,
    batch: bool = True,
) -> StageMetricsResult:
    """Run the Table-I task and average stage metrics across phones.

    ``n_devices_per_grade`` scales the surrounding computation (the paper
    uses 500); the benchmarking protocol itself is scale-independent.
    ``batch=False`` drives the legacy per-device phone tier — same rows,
    bit for bit (the phone-tier differential suite relies on this).
    """
    config = PlatformConfig(seed=seed, cluster_nodes=[NodeSpec(20, 30)] * 10, batch=batch)
    platform = SimDC(config)
    spec = TaskSpec(
        name="table1",
        grades=[
            GradeRequirement(
                grade="High",
                n_devices=n_devices_per_grade,
                n_benchmark=n_benchmark_per_grade,
                bundles=40,
                n_phones=8,
                device_bundle=ResourceBundle(cpus=4, memory_gb=12),
            ),
            GradeRequirement(
                grade="Low",
                n_devices=n_devices_per_grade,
                n_benchmark=n_benchmark_per_grade,
                bundles=60,
                n_phones=6,
                device_bundle=ResourceBundle(cpus=1, memory_gb=6),
            ),
        ],
        rounds=1,
        numeric=False,
        feature_dim=4096,  # -> ~33 KB model payload, Table I's comm volume
    )
    platform.submit(spec)
    platform.run_until_idle(max_time=1e8)
    result = platform.result(spec.task_id)

    # Average each stage over the grade's benchmarking phones.
    buckets: dict[tuple[str, int], list] = defaultdict(list)
    serial_grade = {p.serial: p.spec.grade for p in platform.phones}
    for record in result.benchmark_records:
        grade = serial_grade[record.serial]
        for summary in record.stage_summaries():
            buckets[(grade, summary.stage)].append(summary)
    rows = []
    for grade in ("High", "Low"):
        for stage in range(1, 6):
            summaries = buckets[(grade, stage)]
            rows.append(
                (
                    grade,
                    stage,
                    summaries[0].label,
                    sum(s.power_mah for s in summaries) / len(summaries),
                    sum(s.duration_min for s in summaries) / len(summaries),
                    sum(s.comm_kb for s in summaries) / len(summaries),
                )
            )
    return StageMetricsResult(rows=rows, n_benchmark_per_grade=n_benchmark_per_grade)


def format_table1(result: StageMetricsResult) -> str:
    """Render measured-vs-paper Table I."""
    rows = []
    for grade, stage, label, mah, minutes, kb in result.rows:
        paper_mah, paper_min = PAPER_TABLE1[(grade, stage)]
        rows.append(
            (
                grade, stage, label, round(mah, 3), paper_mah,
                round(minutes, 3), paper_min,
                round(kb, 2) if stage == 3 else "",
                PAPER_TRAINING_COMM_KB if stage == 3 else "",
            )
        )
    return format_table(
        "Table I: physical performance metrics during simulation",
        ["Grade", "Stage", "Label", "Power mAh", "paper", "Dur min", "paper", "Comm KB", "paper"],
        rows,
    )
