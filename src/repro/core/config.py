"""Platform configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.cloud.transport import ChannelModel
from repro.cluster.cost import LogicalCostModel
from repro.cluster.resources import NodeSpec, ResourceBundle
from repro.phones.cost import PhysicalCostModel
from repro.phones.specs import DEFAULT_LOCAL_FLEET, DEFAULT_MSP_FLEET, PhoneSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.tracing import Tracer


@dataclass
class PlatformConfig:
    """Everything needed to stand up a SimDC deployment.

    The defaults reproduce the paper's experimental environment (§VI-A2):
    a 200-core / 300-GB Ray-on-k8s cluster, 10 local phones (4 High +
    6 Low), 20 MSP phones (13 High + 7 Low), a 700-message/s DeviceFlow
    dispatcher, and 1-CPU/1-GB unit resource bundles.

    Attributes
    ----------
    seed:
        Master seed for every random stream in the run.
    cluster_nodes:
        Worker-node shapes of the logical tier.
    local_fleet / msp_fleet:
        Phone hardware of the physical tier.
    msp_availability / msp_control_latency:
        Remote-pool behaviour.
    deviceflow_capacity:
        Single-threaded dispatcher throughput (messages per second).
    unit_bundle:
        The indivisible logical allocation unit.
    logical_cost / physical_cost:
        Calibrated runtime constants (alpha / beta / lambda ...).
    poll_interval:
        Benchmarking-device sampling period.
    scheduling_interval:
        Task Manager background tick.
    batch:
        Drive both execution tiers through their wave-scheduled fast
        paths (default).  ``False`` restores the per-device generator
        processes — bit-identical simulated results, much slower.
    cloud_blocks:
        Ingest each batched plan's round into the cloud tier as one
        columnar block (``put_block`` / ``receive_block``) instead of a
        per-device put + message + fold.  ``None`` (default) follows
        ``batch``.  Flow tasks always stream per-device regardless;
        reports are byte-identical either way.
    """

    seed: int = 0
    cluster_nodes: Sequence[NodeSpec] = field(
        default_factory=lambda: [NodeSpec(cpus=20, memory_gb=30)] * 10
    )
    local_fleet: Sequence[PhoneSpec] = DEFAULT_LOCAL_FLEET
    msp_fleet: Sequence[PhoneSpec] = DEFAULT_MSP_FLEET
    msp_availability: float = 1.0
    msp_control_latency: float = 0.8
    deviceflow_capacity: float = 700.0
    unit_bundle: ResourceBundle = field(
        default_factory=lambda: ResourceBundle(cpus=1.0, memory_gb=1.0)
    )
    logical_cost: LogicalCostModel | None = None
    physical_cost: PhysicalCostModel | None = None
    poll_interval: float = 1.0
    scheduling_interval: float = 5.0
    batch: bool = True
    cloud_blocks: bool | None = None
    #: Optional device→cloud transport channel fronting every task's
    #: ingestion (loss, retries, duplication, outages).  ``None`` keeps
    #: the ideal lossless exactly-once uplink.
    channel: ChannelModel | None = None
    #: Optional :class:`~repro.observability.tracing.Tracer` capturing
    #: span records from every task, sink, channel, flow and phone tier.
    #: ``None`` (default) compiles every instrumentation point down to a
    #: skipped ``if`` — zero cost, byte-identical runs.
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if not self.cluster_nodes:
            raise ValueError("at least one cluster node is required")
        if self.deviceflow_capacity <= 0:
            raise ValueError("deviceflow_capacity must be positive")
        if self.poll_interval <= 0 or self.scheduling_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.logical_cost is None:
            self.logical_cost = LogicalCostModel()
        if self.physical_cost is None:
            self.physical_cost = PhysicalCostModel(
                msp_control_latency=self.msp_control_latency
            )
