"""The SimDC platform: one object wiring every substrate together.

Typical usage::

    from repro import SimDC, TaskSpec, GradeRequirement

    platform = SimDC()
    spec = TaskSpec(
        name="quickstart",
        grades=[GradeRequirement(grade="High", n_devices=20, bundles=40,
                                 n_phones=2, device_bundle=ResourceBundle(4, 12))],
        rounds=3,
    )
    platform.submit(spec)
    platform.run_until_idle()
    result = platform.result(spec.task_id)
"""

from __future__ import annotations

from typing import Any

from repro.cloud.database import MetricsDatabase
from repro.cloud.monitor import Monitor
from repro.cloud.storage import ObjectStorage
from repro.cluster.cluster import K8sCluster
from repro.cluster.cost import LogicalCostModel
from repro.core.config import PlatformConfig
from repro.data.avazu import FederatedDataset
from repro.deviceflow.controller import DeviceFlow
from repro.phones.adb import SimulatedAdb
from repro.phones.cost import PhysicalCostModel
from repro.phones.msp import MobileServicePlatform
from repro.phones.phone import VirtualPhone
from repro.scheduler.resource_manager import ResourceManager
from repro.scheduler.task import TaskSpec
from repro.scheduler.task_manager import TaskManager
from repro.scheduler.task_runner import TaskResult, TaskRunner
from repro.simkernel import RandomStreams, Simulator


class SimDC:
    """A fully wired SimDC deployment over the discrete-event kernel.

    Construction stands up the logical cluster, the local + MSP phone
    fleet behind a simulated ADB, shared storage, the metrics database,
    DeviceFlow, the resource manager and the task manager.  Tasks are
    submitted as :class:`~repro.scheduler.task.TaskSpec` objects and the
    whole deployment advances by running the simulator.
    """

    def __init__(self, config: PlatformConfig | None = None) -> None:
        self.config = config or PlatformConfig()
        self.sim = Simulator()
        self.streams = RandomStreams(self.config.seed)
        self.monitor = Monitor(self.sim)
        self.db = MetricsDatabase()
        self.storage = ObjectStorage()
        self.cluster = K8sCluster(self.config.cluster_nodes)
        self.adb = SimulatedAdb()
        self.phones: list[VirtualPhone] = []
        for index, spec in enumerate(self.config.local_fleet):
            phone = VirtualPhone(self.sim, f"local-{index:03d}", spec, streams=self.streams)
            self.adb.register(phone)
            self.phones.append(phone)
        self.msp = MobileServicePlatform(
            self.sim,
            self.adb,
            self.config.msp_fleet,
            streams=self.streams,
            control_latency=self.config.msp_control_latency,
            availability=self.config.msp_availability,
        )
        self.phones.extend(self.msp.provision())
        self.deviceflow = DeviceFlow(
            self.sim,
            streams=self.streams,
            capacity_per_second=self.config.deviceflow_capacity,
            tracer=self.config.tracer,
        )
        self.resource_manager = ResourceManager(
            self.cluster, self.phones, unit_bundle=self.config.unit_bundle
        )
        self._busy_registry: set[str] = set()
        self._runner_options: dict[str, dict[str, Any]] = {}
        self.task_manager = TaskManager(
            self.sim,
            self.resource_manager,
            runner_factory=self._make_runner,
            monitor=self.monitor,
            scheduling_interval=self.config.scheduling_interval,
        )

    # ------------------------------------------------------------------
    # task API
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: TaskSpec,
        fixed_allocation: dict[str, int] | None = None,
        dataset: FederatedDataset | None = None,
        at: float | None = None,
        logical_cost: LogicalCostModel | None = None,
        physical_cost: PhysicalCostModel | None = None,
        channel_scope: str = "",
    ) -> TaskSpec:
        """Queue a task; optional overrides for arrival, allocation and data.

        ``fixed_allocation`` maps grade name to the logical-tier device
        count, bypassing the optimizer (used by the Type 1-5 ratio
        studies); ``dataset`` supplies a pre-built federated dataset
        instead of the spec-derived synthetic one.  ``at`` defers the
        submission to an absolute simulated time (the scenario engine
        schedules whole task streams this way); ``logical_cost`` /
        ``physical_cost`` replace the platform-wide cost models for this
        task only (straggler injection slows a tenant down with scaled
        copies).  ``channel_scope`` is the tenant name the configured
        transport channel's per-tenant windows match against.
        """
        options: dict[str, Any] = {}
        if fixed_allocation is not None:
            options["fixed_allocation"] = dict(fixed_allocation)
        if dataset is not None:
            options["dataset"] = dataset
        if logical_cost is not None:
            options["logical_cost"] = logical_cost
        if physical_cost is not None:
            options["physical_cost"] = physical_cost
        if channel_scope:
            options["channel_scope"] = channel_scope
        self._runner_options[spec.task_id] = options
        if at is not None:
            return self.task_manager.submit_at(spec, at)
        return self.task_manager.submit(spec)

    def run(self, until: float | None = None, *, batch: bool = False) -> float:
        """Advance simulated time (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until, batch=batch)

    def run_until_idle(self, max_time: float | None = None, *, batch: bool = False) -> float:
        """Run until every submitted task reaches a terminal state.

        ``batch=True`` drives the kernel's same-timestamp batch loop (the
        scenario engine passes the platform's configured mode through);
        the default per-event loop is kept for drop-in compatibility.
        """
        return self.sim.run_until(
            lambda: self.task_manager.all_idle, max_time=max_time, batch=batch
        )

    def result(self, task_id: str) -> TaskResult:
        """Result of a completed task."""
        return self.task_manager.result_of(task_id)

    @property
    def results(self) -> dict[str, TaskResult]:
        """All finished task results keyed by task id."""
        return dict(self.task_manager.results)

    # ------------------------------------------------------------------
    # monitoring (the GUI's data source)
    # ------------------------------------------------------------------
    def status_report(self) -> str:
        """A human-readable snapshot of the whole deployment.

        The paper's users watch "various computational metrics, edge
        device performance, and updates to cloud services" via a GUI
        (§III-C); this is the equivalent text view.
        """
        snapshot = self.resource_manager.snapshot()
        lines = [
            f"simulated time: {self.sim.now:.1f}s",
            (
                f"cluster: {self.cluster.free_cpus:g}/{self.cluster.total_cpus:g} CPUs free, "
                f"{snapshot.free_bundles} unit bundles unfrozen"
            ),
            "phones free by grade: "
            + ", ".join(f"{g}={n}" for g, n in sorted(snapshot.free_phones.items())),
            (
                f"tasks: {len(self.task_manager.queue)} queued, "
                f"{self.task_manager.active_tasks} running, "
                f"{len(self.task_manager.results)} finished"
            ),
        ]
        for task_id, result in sorted(self.task_manager.results.items()):
            summary = f"  {task_id}: {result.state.value}, makespan {result.makespan:.0f}s"
            if result.rounds and result.rounds[-1].test_accuracy is not None:
                summary += f", final test acc {result.rounds[-1].test_accuracy:.4f}"
            lines.append(summary)
        counters = self.monitor.summary()
        if counters:
            lines.append(
                "events: " + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
            )
        return "\n".join(lines)

    def _make_runner(self, spec: TaskSpec) -> TaskRunner:
        options = self._runner_options.pop(spec.task_id, {})
        return TaskRunner(
            sim=self.sim,
            spec=spec,
            cluster=self.cluster,
            phones=self.phones,
            adb=self.adb,
            storage=self.storage,
            deviceflow=self.deviceflow,
            logical_cost=options.get("logical_cost") or self.config.logical_cost,
            physical_cost=options.get("physical_cost") or self.config.physical_cost,
            streams=self.streams,
            busy_registry=self._busy_registry,
            db=self.db,
            monitor=self.monitor,
            fixed_allocation=options.get("fixed_allocation"),
            dataset=options.get("dataset"),
            unit_bundle=self.config.unit_bundle,
            batch=self.config.batch,
            cloud_blocks=self.config.cloud_blocks,
            channel=self.config.channel,
            channel_scope=options.get("channel_scope", ""),
            tracer=self.config.tracer,
        )
