"""The SimDC platform facade — the library's primary public API."""

from repro.core.config import PlatformConfig
from repro.core.platform import SimDC

__all__ = ["PlatformConfig", "SimDC"]
