"""The greedy Task Scheduler (§III-B).

"Task Scheduler employs a greedy algorithm to schedule tasks from the
queue, taking into account the current states of the resource pool from
Resource Manager, demand resources, and the expected task benefits derived
from the scheduling priority.  It prioritizes tasks that meet resource
requirements while maximizing the anticipated benefits."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.queue import TaskQueue
from repro.scheduler.resource_manager import ResourceSnapshot
from repro.scheduler.task import TaskSpec


@dataclass
class SchedulingDecision:
    """Outcome of one scheduling pass."""

    scheduled: list[TaskSpec] = field(default_factory=list)
    skipped: list[TaskSpec] = field(default_factory=list)

    @property
    def total_benefit(self) -> int:
        """Sum of scheduled priorities (the greedy objective)."""
        return sum(task.priority for task in self.scheduled)


class GreedyTaskScheduler:
    """Priority-greedy selection of queue tasks that fit the pool.

    The queue is scanned in benefit order; each task that fits the
    *remaining* speculative capacity is selected and its demand committed
    against the working snapshot, so one pass can launch several tasks
    side by side when resources allow (the concurrency the hybrid
    platform is built for).
    """

    def plan(self, queue: TaskQueue, snapshot: ResourceSnapshot) -> SchedulingDecision:
        """Decide which queued tasks to launch right now.

        Does not mutate the queue or the real resource pool — the Task
        Manager removes scheduled tasks and freezes their grants after
        accepting the decision.
        """
        decision = SchedulingDecision()
        working = snapshot.copy()
        for spec in queue.snapshot():
            if working.fits(spec):
                working.commit(spec)
                decision.scheduled.append(spec)
            else:
                decision.skipped.append(spec)
        return decision
