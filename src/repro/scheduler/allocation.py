"""Hybrid allocation optimisation (§IV-B).

A task simulates ``c`` device grades with populations ``{N_i}``, of which
``{q_i}`` are benchmarking devices.  The logical tier offers ``f_i``
requested unit bundles per grade at ``k_i`` units per simulated device;
the physical tier offers ``m_i`` phones.  Splitting ``x_i`` devices to the
logical tier yields tier makespans

    T_l = max_i ceil(k_i x_i / f_i) * alpha_i
    T_p = max_i ceil((N_i - q_i - x_i) / m_i) * beta_i + lambda_i

and the task's duration is ``T = max(T_l, T_p)``; the optimiser minimises
``T`` subject to ``0 <= x_i <= N_i - q_i``, then — among optima —
maximises ``sum_i x_i`` (the paper's secondary objective of prioritising
logical resources).

One deliberate refinement over the paper's formulation: a grade whose
physical share is *zero* contributes no ``lambda_i`` term (no phones ever
start), where a literal reading of inequality (1) would force
``T >= lambda_i`` even for all-logical splits.

Three solvers are provided: an exact candidate-search (fast, the
default), a scipy MILP encoding (cross-checks the search and demonstrates
the paper's "integer linear programming" framing), and brute force (test
oracle for small instances).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product
from collections.abc import Sequence
from typing import Literal

import numpy as np


@dataclass(frozen=True)
class GradeAllocationParams:
    """Per-grade constants of the allocation problem.

    Attributes map one-to-one onto the paper's symbols:
    ``n_devices`` = N, ``n_benchmark`` = q, ``bundles`` = f,
    ``units_per_device`` = k, ``n_phones`` = m, ``alpha``/``beta``/
    ``lam`` the measured runtime constants.
    """

    grade: str
    n_devices: int
    bundles: int
    units_per_device: int
    n_phones: int
    alpha: float
    beta: float
    lam: float
    n_benchmark: int = 0

    def __post_init__(self) -> None:
        if self.n_devices < 0 or self.n_benchmark < 0:
            raise ValueError("device counts must be >= 0")
        if self.n_benchmark > self.n_devices:
            raise ValueError("n_benchmark cannot exceed n_devices")
        if self.bundles < 0 or self.n_phones < 0:
            raise ValueError("resource counts must be >= 0")
        if self.units_per_device <= 0:
            raise ValueError("units_per_device must be positive")
        if self.alpha <= 0 or self.beta <= 0 or self.lam < 0:
            raise ValueError("alpha/beta must be positive, lam >= 0")
        if self.computable == 0:
            return
        if self.bundles == 0 and self.n_phones == 0:
            raise ValueError(f"grade {self.grade!r} has devices but no resources")

    @property
    def computable(self) -> int:
        """Devices to split across tiers: ``N - q``."""
        return self.n_devices - self.n_benchmark

    @property
    def logical_slots(self) -> int:
        """Concurrent logical device slots: ``floor(f / k)``."""
        return self.bundles // self.units_per_device

    def logical_time(self, x: int) -> float:
        """``ceil(k x / f) * alpha`` — logical makespan for this grade.

        A grade whose bundle request cannot host even one device
        concurrently (``f < k``) has no usable logical tier at all: a
        device needs its ``k`` units simultaneously, so time-multiplexing
        cannot rescue an undersized request.
        """
        if x == 0:
            return 0.0
        if self.logical_slots == 0:
            return math.inf
        return math.ceil(self.units_per_device * x / self.bundles) * self.alpha

    def physical_time(self, n_physical: int) -> float:
        """``ceil(n/m) * beta + lambda``; zero when nothing runs on phones."""
        if n_physical == 0:
            return 0.0
        if self.n_phones == 0:
            return math.inf
        return math.ceil(n_physical / self.n_phones) * self.beta + self.lam


@dataclass
class AllocationProblem:
    """The full multi-grade allocation instance."""

    grades: list[GradeAllocationParams]

    def __post_init__(self) -> None:
        if not self.grades:
            raise ValueError("at least one grade is required")
        names = [g.grade for g in self.grades]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate grade names: {names}")


@dataclass(frozen=True)
class GradeAllocation:
    """The split chosen for one grade."""

    grade: str
    logical: int
    physical: int
    logical_time: float
    physical_time: float


@dataclass
class AllocationResult:
    """Optimal (or evaluated) allocation with its makespan breakdown."""

    total_time: float
    logical_time: float
    physical_time: float
    grades: list[GradeAllocation] = field(default_factory=list)
    solver: str = ""

    @property
    def x(self) -> dict[str, int]:
        """``grade -> logical device count``."""
        return {g.grade: g.logical for g in self.grades}

    @property
    def total_logical(self) -> int:
        """Devices placed on the logical tier."""
        return sum(g.logical for g in self.grades)


def evaluate_allocation(problem: AllocationProblem, x: Sequence[int]) -> AllocationResult:
    """Makespan of an explicit split ``x`` (one entry per grade)."""
    if len(x) != len(problem.grades):
        raise ValueError("x must have one entry per grade")
    grade_allocations = []
    logical_max = 0.0
    physical_max = 0.0
    for params, xi in zip(problem.grades, x):
        xi = int(xi)
        if not 0 <= xi <= params.computable:
            raise ValueError(
                f"x[{params.grade}]={xi} outside [0, {params.computable}]"
            )
        n_physical = params.computable - xi
        lt = params.logical_time(xi)
        pt = params.physical_time(n_physical)
        grade_allocations.append(
            GradeAllocation(params.grade, xi, n_physical, lt, pt)
        )
        logical_max = max(logical_max, lt)
        physical_max = max(physical_max, pt)
    return AllocationResult(
        total_time=max(logical_max, physical_max),
        logical_time=logical_max,
        physical_time=physical_max,
        grades=grade_allocations,
        solver="evaluate",
    )


# ----------------------------------------------------------------------
# exact candidate search (default solver)
# ----------------------------------------------------------------------
def _feasible_range(params: GradeAllocationParams, deadline: float) -> tuple[int, int] | None:
    """The interval of x values whose grade finishes within ``deadline``."""
    total = params.computable
    if total == 0:
        return (0, 0)
    # Upper bound from the logical tier.
    if params.logical_slots == 0:
        x_max = 0
    else:
        waves = math.floor(deadline / params.alpha + 1e-9)
        x_max = min(total, math.floor(waves * params.bundles / params.units_per_device + 1e-9))
    # Lower bound from the physical tier.
    if params.n_phones == 0 or deadline < params.lam + params.beta - 1e-9:
        x_min = total  # phones cannot finish anything in time
    else:
        waves = math.floor((deadline - params.lam) / params.beta + 1e-9)
        x_min = max(0, total - params.n_phones * waves)
    if x_min > x_max:
        return None
    return (x_min, x_max)


def _candidate_times(problem: AllocationProblem) -> list[float]:
    candidates = {0.0}
    for params in problem.grades:
        total = params.computable
        if total == 0:
            continue
        if params.logical_slots > 0:
            max_waves = math.ceil(params.units_per_device * total / params.bundles)
            candidates.update(w * params.alpha for w in range(1, max_waves + 1))
        if params.n_phones > 0:
            max_waves = math.ceil(total / params.n_phones)
            candidates.update(w * params.beta + params.lam for w in range(1, max_waves + 1))
    return sorted(candidates)


def solve_allocation(
    problem: AllocationProblem,
    prefer: Literal["logical", "physical"] = "logical",
) -> AllocationResult:
    """Exact min-makespan solver via binary search over candidate times.

    ``T*`` must coincide with some grade's tier completing an integral
    number of waves, so the candidate set ``{w*alpha_i} ∪ {w*beta_i +
    lambda_i}`` contains the optimum; feasibility at a deadline is an
    independent per-grade interval check.  Among optimal solutions,
    ``prefer="logical"`` maximises ``sum x_i`` (the paper's secondary
    objective) and ``prefer="physical"`` minimises it.
    """
    candidates = _candidate_times(problem)
    lo, hi = 0, len(candidates) - 1
    best: float | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        deadline = candidates[mid]
        if all(_feasible_range(g, deadline) is not None for g in problem.grades):
            best = deadline
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise RuntimeError("allocation infeasible: some grade has no viable split")
    x = []
    for params in problem.grades:
        interval = _feasible_range(params, best)
        assert interval is not None
        x_min, x_max = interval
        x.append(x_max if prefer == "logical" else x_min)
    result = evaluate_allocation(problem, x)
    result.solver = "search"
    return result


# ----------------------------------------------------------------------
# MILP encoding (scipy) — cross-check and the paper's framing
# ----------------------------------------------------------------------
def solve_allocation_milp(problem: AllocationProblem) -> AllocationResult:
    """Encode §IV-B's program for ``scipy.optimize.milp`` and solve it.

    Variables per grade: ``x_i`` (logical devices), ``u_i`` (logical
    waves, linearising the ceil), ``v_i`` (physical waves), ``z_i``
    (indicator that any device runs on phones, gating ``lambda_i``); plus
    the global continuous makespan ``T``.
    """
    from scipy.optimize import LinearConstraint, milp
    from scipy.optimize import Bounds

    grades = problem.grades
    c = len(grades)
    # Variable layout: [x_0..x_{c-1}, u_0.., v_0.., z_0.., T]
    n_vars = 4 * c + 1
    t_index = 4 * c

    constraints = []

    def row(**entries: float) -> np.ndarray:
        r = np.zeros(n_vars)
        for idx, value in entries.items():
            r[int(idx)] = value
        return r

    big_m = max((g.computable for g in grades), default=1) or 1
    for i, g in enumerate(grades):
        xi, ui, vi, zi = i, c + i, 2 * c + i, 3 * c + i
        # f_i u_i - k_i x_i >= 0  (u_i >= ceil(k_i x_i / f_i))
        if g.logical_slots > 0:
            constraints.append(
                LinearConstraint(row(**{str(ui): g.bundles, str(xi): -g.units_per_device}), 0, np.inf)
            )
        else:
            constraints.append(LinearConstraint(row(**{str(xi): 1.0}), 0, 0))
        # m_i v_i - (computable - x_i) >= 0
        if g.n_phones > 0:
            constraints.append(
                LinearConstraint(row(**{str(vi): g.n_phones, str(xi): 1.0}), g.computable, np.inf)
            )
        else:
            constraints.append(LinearConstraint(row(**{str(xi): 1.0}), g.computable, g.computable))
            constraints.append(LinearConstraint(row(**{str(vi): 1.0}), 0, 0))
        # computable - x_i <= M z_i  (z_i = 1 whenever phones are used),
        # written as x_i + M z_i >= computable.
        constraints.append(
            LinearConstraint(row(**{str(xi): 1.0, str(zi): big_m}), g.computable, np.inf)
        )
        # T - alpha_i u_i >= 0
        constraints.append(LinearConstraint(row(**{str(t_index): 1.0, str(ui): -g.alpha}), 0, np.inf))
        # T - beta_i v_i - lambda_i z_i >= 0
        constraints.append(
            LinearConstraint(
                row(**{str(t_index): 1.0, str(vi): -g.beta, str(zi): -g.lam}), 0, np.inf
            )
        )

    lower = np.zeros(n_vars)
    upper = np.full(n_vars, np.inf)
    for i, g in enumerate(grades):
        upper[i] = g.computable
        upper[3 * c + i] = 1.0
    bounds = Bounds(lower, upper)
    integrality = np.ones(n_vars)
    integrality[t_index] = 0.0

    # Phase 1: minimise T.
    objective = np.zeros(n_vars)
    objective[t_index] = 1.0
    solution = milp(c=objective, constraints=constraints, bounds=bounds, integrality=integrality)
    if not solution.success:
        raise RuntimeError(f"MILP phase 1 failed: {solution.message}")
    t_star = float(solution.x[t_index])

    # Phase 2: fix T <= T* (+eps), maximise sum x_i.
    constraints_phase2 = constraints + [
        LinearConstraint(row(**{str(t_index): 1.0}), 0, t_star + 1e-6)
    ]
    objective2 = np.zeros(n_vars)
    objective2[:c] = -1.0
    solution2 = milp(
        c=objective2, constraints=constraints_phase2, bounds=bounds, integrality=integrality
    )
    if not solution2.success:
        raise RuntimeError(f"MILP phase 2 failed: {solution2.message}")
    x = [int(round(solution2.x[i])) for i in range(c)]
    result = evaluate_allocation(problem, x)
    result.solver = "milp"
    return result


# ----------------------------------------------------------------------
# brute force (test oracle)
# ----------------------------------------------------------------------
def solve_allocation_brute(problem: AllocationProblem) -> AllocationResult:
    """Exhaustive search over every integral split (small instances only)."""
    space = 1
    for g in problem.grades:
        space *= g.computable + 1
    if space > 2_000_000:
        raise ValueError(f"brute-force space too large ({space} combinations)")
    best: AllocationResult | None = None
    for combo in product(*(range(g.computable + 1) for g in problem.grades)):
        candidate = evaluate_allocation(problem, combo)
        if (
            best is None
            or candidate.total_time < best.total_time - 1e-12
            or (
                abs(candidate.total_time - best.total_time) <= 1e-12
                and candidate.total_logical > best.total_logical
            )
        ):
            best = candidate
    assert best is not None
    best.solver = "brute"
    return best


# ----------------------------------------------------------------------
# fixed-ratio baselines (the paper's Type 1-5 comparisons)
# ----------------------------------------------------------------------
def fixed_ratio_allocation(
    problem: AllocationProblem, logical_fraction: float
) -> AllocationResult:
    """Split every grade at a fixed logical share (Fig. 6/7's Types 1-5).

    Type 1 = 100% logical, Type 2 = 75%, Type 3 = 50%, Type 4 = 25%,
    Type 5 = 0% (all physical).
    """
    if not 0.0 <= logical_fraction <= 1.0:
        raise ValueError("logical_fraction must be in [0, 1]")
    x = [int(round(logical_fraction * g.computable)) for g in problem.grades]
    result = evaluate_allocation(problem, x)
    result.solver = f"fixed({logical_fraction:.2f})"
    return result
