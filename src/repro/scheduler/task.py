"""Task design specifications (§III-A).

"In SimDC platform, a task serves as the core operational unit ... Each
task is assigned a unique identifier (task_id) ... Users can simulate
multiple devices with varying performance levels within a single task, all
of which must execute the same computational process (operator flow)
uniformly ... A task allows simulated devices to repetitively execute the
same operator flow multiple times ... Each task can also be configured
with a 'scheduling priority' parameter."
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceBundle
from repro.deviceflow.strategy import DispatchStrategy
from repro.ml.operators import OperatorFlow, standard_fl_flow

_task_counter = itertools.count()


class TaskState(enum.Enum):
    """Lifecycle of a submitted task."""

    PENDING = "PENDING"
    QUEUED = "QUEUED"
    SCHEDULED = "SCHEDULED"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"


@dataclass
class GradeRequirement:
    """One device grade's simulation demand within a task.

    Attributes
    ----------
    grade:
        Grade label; must have calibrated cost constants.
    n_devices:
        Total simulated devices of this grade (the paper's N_i).
    n_benchmark:
        Physical benchmarking devices reserved for measurement (q_i).
    bundles:
        Requested logical unit bundles (f_i).
    n_phones:
        Requested physical computing phones (m_i).
    device_bundle:
        Composite resource shape of one simulated device (determines k_i
        against the platform's unit bundle).
    """

    grade: str
    n_devices: int
    bundles: int = 0
    n_phones: int = 0
    n_benchmark: int = 0
    device_bundle: ResourceBundle = field(
        default_factory=lambda: ResourceBundle(cpus=1.0, memory_gb=1.0)
    )

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if self.n_benchmark < 0 or self.n_benchmark > self.n_devices:
            raise ValueError("n_benchmark must be within [0, n_devices]")
        if self.bundles < 0 or self.n_phones < 0:
            raise ValueError("resource requests must be >= 0")
        if self.n_devices - self.n_benchmark > 0 and self.bundles == 0 and self.n_phones == 0:
            raise ValueError(
                f"grade {self.grade!r} requests devices but no compute resources"
            )


@dataclass
class TaskSpec:
    """Everything needed to run one device-cloud collaboration task.

    Attributes
    ----------
    name:
        Human-readable task name (task_id is derived and unique).
    grades:
        Per-grade simulation demands.
    rounds:
        How many times each device repeats the operator flow.
    flow:
        The uniform operator flow (defaults to the standard FL round).
    priority:
        Scheduling priority; higher runs earlier when resources contend.
    deviceflow_strategy:
        Optional traffic-shaping strategy; ``None`` sends results straight
        to the cloud service.
    numeric:
        Whether flows execute real ML math (off for time-only sweeps).
    feature_dim:
        Model dimensionality for numeric tasks.
    dataset_seed:
        Seed for the task's synthetic federated dataset.
    records_per_device:
        Mean local shard size for generated data.
    skew:
        Optional label-skew config (see ``make_federated_ctr_data``).
    deadline_s:
        Optional per-round aggregation deadline (seconds from round
        start).  The round closes at the deadline with the partial fold
        over the updates that made it; late arrivals are dropped.
    """

    name: str
    grades: list[GradeRequirement]
    rounds: int = 1
    flow: OperatorFlow | None = None
    priority: int = 0
    deviceflow_strategy: DispatchStrategy | None = None
    numeric: bool = True
    feature_dim: int = 4096
    dataset_seed: int = 0
    records_per_device: int = 20
    skew: dict | None = None
    deadline_s: float | None = None
    task_id: str = field(default="", compare=False)
    state: TaskState = field(default=TaskState.PENDING, compare=False)

    def __post_init__(self) -> None:
        if not self.grades:
            raise ValueError("a task needs at least one grade requirement")
        names = [g.grade for g in self.grades]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate grades in task: {names}")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s!r}")
        if not self.task_id:
            self.task_id = f"task-{next(_task_counter):05d}"
        if self.flow is None:
            self.flow = standard_fl_flow()

    @property
    def total_devices(self) -> int:
        """All simulated devices across grades."""
        return sum(g.n_devices for g in self.grades)

    @property
    def total_bundles_requested(self) -> int:
        """Logical unit bundles the task wants frozen."""
        return sum(g.bundles for g in self.grades)

    def phones_requested(self) -> dict[str, int]:
        """Per-grade phone demand (computing + benchmarking)."""
        return {g.grade: g.n_phones + g.n_benchmark for g in self.grades}
