"""Task management: queueing, scheduling, resources, hybrid allocation.

§III-B's Task Manager: a task queue feeding a greedy Task Scheduler that
weighs resource availability against scheduling priority, a Task Runner
that splits each task's simulated devices across the hybrid tiers via the
§IV-B integer program, and a Resource Manager overseeing the "querying,
freezing, and releasing of heterogeneous resources".
"""

from repro.scheduler.allocation import (
    AllocationProblem,
    AllocationResult,
    GradeAllocation,
    GradeAllocationParams,
    evaluate_allocation,
    fixed_ratio_allocation,
    solve_allocation,
    solve_allocation_brute,
    solve_allocation_milp,
)
from repro.scheduler.queue import TaskQueue
from repro.scheduler.resource_manager import ResourceManager, ResourceSnapshot
from repro.scheduler.task import GradeRequirement, TaskSpec, TaskState
from repro.scheduler.task_manager import TaskManager
from repro.scheduler.task_scheduler import GreedyTaskScheduler, SchedulingDecision
from repro.scheduler.task_runner import TaskResult, TaskRunner

__all__ = [
    "AllocationProblem",
    "AllocationResult",
    "GradeAllocation",
    "GradeAllocationParams",
    "GradeRequirement",
    "GreedyTaskScheduler",
    "ResourceManager",
    "ResourceSnapshot",
    "SchedulingDecision",
    "TaskManager",
    "TaskQueue",
    "TaskResult",
    "TaskRunner",
    "TaskSpec",
    "TaskState",
    "evaluate_allocation",
    "fixed_ratio_allocation",
    "solve_allocation",
    "solve_allocation_brute",
    "solve_allocation_milp",
]
