"""The Resource Manager: freezing and releasing heterogeneous resources.

§III-B: "This module oversees the querying, freezing, and releasing of
heterogeneous resources, while also enabling dynamic scaling up or down.
Resource Manager continuously monitors physical resources in real-time and
synchronizes resource utilization information with the Task Manager."

Reservations are bookkeeping at the granularity the scheduler reasons in —
logical *unit bundles* and per-grade phone counts; physical placement
happens later inside the execution tiers against the same capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import K8sCluster
from repro.cluster.resources import NodeSpec, ResourceBundle
from repro.phones.phone import VirtualPhone
from repro.scheduler.task import TaskSpec


@dataclass
class ResourceSnapshot:
    """Free capacity at a point in time (what the scheduler sees)."""

    free_bundles: int
    free_phones: dict[str, int] = field(default_factory=dict)

    def copy(self) -> ResourceSnapshot:
        """An independent copy the scheduler can decrement speculatively."""
        return ResourceSnapshot(self.free_bundles, dict(self.free_phones))

    def fits(self, spec: TaskSpec) -> bool:
        """Whether this snapshot covers a task's full request."""
        if spec.total_bundles_requested > self.free_bundles:
            return False
        for grade, count in spec.phones_requested().items():
            if count > self.free_phones.get(grade, 0):
                return False
        return True

    def commit(self, spec: TaskSpec) -> None:
        """Subtract a task's request (after :meth:`fits`)."""
        self.free_bundles -= spec.total_bundles_requested
        for grade, count in spec.phones_requested().items():
            self.free_phones[grade] = self.free_phones.get(grade, 0) - count


@dataclass
class ResourceGrant:
    """A frozen reservation, held for a task's lifetime."""

    task_id: str
    bundles: int
    phones: dict[str, int]


class ResourceManager:
    """Tracks unit-bundle and phone capacity across concurrent tasks.

    Parameters
    ----------
    cluster:
        The logical tier's node pool.
    phones:
        The full physical fleet (local + MSP).
    unit_bundle:
        The indivisible logical allocation unit (paper example:
        1 CPU + 1 GB).
    """

    def __init__(
        self,
        cluster: K8sCluster,
        phones: list[VirtualPhone],
        unit_bundle: ResourceBundle | None = None,
    ) -> None:
        self.cluster = cluster
        self.phones = list(phones)
        self.unit_bundle = unit_bundle if unit_bundle is not None else ResourceBundle(cpus=1.0, memory_gb=1.0)
        self._frozen_bundles = 0
        self._frozen_phones: dict[str, int] = {}
        self._grants: dict[str, ResourceGrant] = {}

    # ------------------------------------------------------------------
    # capacity queries
    # ------------------------------------------------------------------
    def total_bundles(self) -> int:
        """Unit bundles the cluster can host in total.

        Per-node capacity is the binding minimum across resource
        dimensions (a 20-core/30-GB node hosts 20 one-CPU/one-GB units).
        """
        total = 0
        for node in self.cluster.nodes.values():
            per_dim = []
            if self.unit_bundle.cpus > 0:
                per_dim.append(node.spec.cpus / self.unit_bundle.cpus)
            if self.unit_bundle.memory_gb > 0:
                per_dim.append(node.spec.memory_gb / self.unit_bundle.memory_gb)
            if self.unit_bundle.gpus > 0:
                per_dim.append(node.spec.gpus / self.unit_bundle.gpus)
            total += int(min(per_dim))
        return total

    def phones_by_grade(self) -> dict[str, int]:
        """Total phone counts per grade."""
        counts: dict[str, int] = {}
        for phone in self.phones:
            counts[phone.spec.grade] = counts.get(phone.spec.grade, 0) + 1
        return counts

    def snapshot(self) -> ResourceSnapshot:
        """Current free capacity after existing freezes."""
        free_phones = self.phones_by_grade()
        for grade, frozen in self._frozen_phones.items():
            free_phones[grade] = free_phones.get(grade, 0) - frozen
        return ResourceSnapshot(
            free_bundles=self.total_bundles() - self._frozen_bundles,
            free_phones=free_phones,
        )

    # ------------------------------------------------------------------
    # freeze / release
    # ------------------------------------------------------------------
    def freeze(self, spec: TaskSpec) -> ResourceGrant:
        """Reserve a task's full request; raises if anything is short."""
        if spec.task_id in self._grants:
            raise RuntimeError(f"task {spec.task_id!r} already holds a grant")
        snapshot = self.snapshot()
        if not snapshot.fits(spec):
            raise RuntimeError(
                f"insufficient resources for task {spec.task_id!r}: "
                f"need {spec.total_bundles_requested} bundles "
                f"(free {snapshot.free_bundles}) and phones {spec.phones_requested()} "
                f"(free {snapshot.free_phones})"
            )
        grant = ResourceGrant(
            task_id=spec.task_id,
            bundles=spec.total_bundles_requested,
            phones=spec.phones_requested(),
        )
        self._frozen_bundles += grant.bundles
        for grade, count in grant.phones.items():
            self._frozen_phones[grade] = self._frozen_phones.get(grade, 0) + count
        self._grants[spec.task_id] = grant
        return grant

    def release(self, task_id: str) -> None:
        """Return a task's reservation to the pool."""
        grant = self._grants.pop(task_id, None)
        if grant is None:
            raise KeyError(f"task {task_id!r} holds no grant")
        self._frozen_bundles -= grant.bundles
        for grade, count in grant.phones.items():
            self._frozen_phones[grade] -= count

    # ------------------------------------------------------------------
    # dynamic scaling
    # ------------------------------------------------------------------
    def scale_up(self, spec: NodeSpec, count: int = 1) -> list[str]:
        """Add cluster nodes; returns their ids."""
        if count <= 0:
            raise ValueError("count must be positive")
        return [self.cluster.add_node(spec) for _ in range(count)]

    def scale_down(self, node_ids: list[str]) -> None:
        """Drain idle nodes as one transaction: all of them, or none.

        Every id is validated *before* anything is removed — unknown ids
        raise :class:`KeyError` and nodes still hosting allocations raise
        :class:`RuntimeError`, in both cases leaving the cluster exactly
        as it was.  (The old implementation removed nodes one-by-one and
        raised mid-loop on the first busy node, stranding the cluster
        partially drained.)  Duplicate ids in ``node_ids`` are drained
        once.
        """
        nodes = self.cluster.nodes
        unique_ids = list(dict.fromkeys(node_ids))
        missing = [nid for nid in unique_ids if nid not in nodes]
        if missing:
            raise KeyError(f"unknown nodes {missing!r}; nothing was removed")
        busy = [nid for nid in unique_ids if not nodes[nid].idle]
        if busy:
            raise RuntimeError(
                f"nodes {busy!r} still host allocations; nothing was removed"
            )
        for node_id in unique_ids:
            self.cluster.remove_node(node_id)

    def add_phones(self, phones: list[VirtualPhone]) -> None:
        """Grow the physical fleet (e.g. extra MSP provisioning)."""
        self.phones.extend(phones)

    def remove_phones(self, phones: list[VirtualPhone]) -> None:
        """Shrink the fleet (device churn / fault injection).

        Only capacity accounting changes; reservations already frozen
        against the removed phones stay valid until their tasks release
        them (free counts may go transiently negative, which simply
        blocks new freezes).
        """
        for phone in phones:
            self.phones.remove(phone)

    @property
    def active_grants(self) -> int:
        """How many tasks currently hold reservations."""
        return len(self._grants)
