"""The Task Manager: queue, scheduling loop, and task lifecycle.

§III-B: "A micro-service responsible for the maintenance of Task Queue,
task submission, and status monitoring.  Task Manager periodically selects
suitable submitted tasks from the Task Queue for scheduling."  The manager
also reacts immediately to submissions and completions, so idle resources
never wait for the periodic tick.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.cloud.monitor import Monitor
from repro.scheduler.queue import TaskQueue
from repro.scheduler.resource_manager import ResourceManager
from repro.scheduler.task import TaskSpec, TaskState
from repro.scheduler.task_runner import TaskResult, TaskRunner
from repro.scheduler.task_scheduler import GreedyTaskScheduler
from repro.simkernel import Simulator


class TaskManager:
    """Coordinates queueing, greedy scheduling and concurrent execution.

    Parameters
    ----------
    sim:
        Shared simulator.
    resource_manager:
        Capacity accounting for freeze/release.
    runner_factory:
        ``spec -> TaskRunner``; the platform supplies a closure wiring the
        shared substrates (the Task Runner "supports multi-threaded
        concurrent processing" — here, concurrent simulation processes).
    monitor:
        Optional event log.
    scheduling_interval:
        Period of the background scheduling tick (seconds, simulated).
    """

    def __init__(
        self,
        sim: Simulator,
        resource_manager: ResourceManager,
        runner_factory: Callable[[TaskSpec], TaskRunner],
        monitor: Monitor | None = None,
        scheduling_interval: float = 5.0,
    ) -> None:
        if scheduling_interval <= 0:
            raise ValueError("scheduling_interval must be positive")
        self.sim = sim
        self.resource_manager = resource_manager
        self.runner_factory = runner_factory
        self.monitor = monitor
        self.scheduling_interval = float(scheduling_interval)
        self.queue = TaskQueue()
        self.scheduler = GreedyTaskScheduler()
        self.results: dict[str, TaskResult] = {}
        self.running: dict[str, TaskRunner] = {}
        self._tick_scheduled = False
        self._deferred = 0

    # ------------------------------------------------------------------
    def submit(self, spec: TaskSpec) -> TaskSpec:
        """Queue a task and trigger an immediate scheduling pass."""
        self.queue.submit(spec)
        self._log("task_submitted", task_id=spec.task_id, priority=spec.priority)
        self._schedule_pass()
        self._arm_tick()
        return spec

    def submit_at(self, spec: TaskSpec, time: float) -> TaskSpec:
        """Schedule a future submission as a simulator event.

        The task enters the queue (and triggers a scheduling pass) when
        the clock reaches ``time``; until then it counts against
        :attr:`all_idle`, so ``run_until_idle`` drives a scenario through
        submissions that have not arrived yet.
        """
        if time < self.sim.now:
            raise ValueError(f"cannot submit in the past: {time!r} < now {self.sim.now!r}")
        self._deferred += 1
        self._log("task_deferred", task_id=spec.task_id, submit_at=time)
        self.sim.schedule_at(time, self._submit_deferred, spec)
        return spec

    def _submit_deferred(self, spec: TaskSpec) -> None:
        self._deferred -= 1
        self.submit(spec)

    @property
    def pending_submissions(self) -> int:
        """Deferred submissions whose arrival time has not been reached."""
        return self._deferred

    def notify_resources_changed(self) -> None:
        """External capacity change (scaling, churn): retry queued tasks."""
        self._schedule_pass()

    @property
    def active_tasks(self) -> int:
        """Tasks currently executing."""
        return len(self.running)

    @property
    def all_idle(self) -> bool:
        """True when nothing is queued, running, or awaiting arrival."""
        return not self.queue and not self.running and self._deferred == 0

    def result_of(self, task_id: str) -> TaskResult:
        """Result of a finished task."""
        if task_id not in self.results:
            raise KeyError(f"task {task_id!r} has not finished")
        return self.results[task_id]

    # ------------------------------------------------------------------
    def _schedule_pass(self) -> None:
        decision = self.scheduler.plan(self.queue, self.resource_manager.snapshot())
        for spec in decision.scheduled:
            self.queue.remove(spec.task_id)
            self.resource_manager.freeze(spec)
            spec.state = TaskState.SCHEDULED
            runner = self.runner_factory(spec)
            self.running[spec.task_id] = runner
            self._log("task_scheduled", task_id=spec.task_id)
            self.sim.process(self._supervise(spec, runner), name=f"supervise.{spec.task_id}")

    def _supervise(self, spec: TaskSpec, runner: TaskRunner) -> Generator:
        try:
            result = yield self.sim.process(runner.run(), name=f"run.{spec.task_id}")
        except Exception:
            result = runner.result  # populated by the runner's handler
        finally:
            self.resource_manager.release(spec.task_id)
            del self.running[spec.task_id]
        if result is not None:
            self.results[spec.task_id] = result
        # Freed resources may unblock queued work immediately.
        self._schedule_pass()

    def _arm_tick(self) -> None:
        if self._tick_scheduled:
            return
        self._tick_scheduled = True
        self.sim.process(self._tick_loop(), name="task-manager.tick")

    def _tick_loop(self) -> Generator:
        from repro.simkernel import Timeout

        # Only queued/running work needs the periodic pass; deferred
        # submissions re-arm the tick when they land, so an otherwise idle
        # platform does not spin through a long arrival gap.
        while self.queue or self.running:
            yield Timeout(self.scheduling_interval)
            if self.queue:
                self._schedule_pass()
        self._tick_scheduled = False

    def _log(self, kind: str, **fields) -> None:
        if self.monitor is not None:
            self.monitor.log(kind, **fields)
