"""The Task Queue: priority-ordered pending tasks."""

from __future__ import annotations

import itertools

from repro.scheduler.task import TaskSpec, TaskState


class TaskQueue:
    """Pending tasks ordered by priority (desc), then submission order.

    The Task Manager "periodically selects suitable submitted tasks from
    the Task Queue for scheduling" (§III-B); the queue itself only owns
    ordering and membership, leaving fit decisions to the scheduler.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[int, int, TaskSpec]] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def submit(self, spec: TaskSpec) -> TaskSpec:
        """Enqueue a task; marks it QUEUED."""
        if any(existing.task_id == spec.task_id for _, _, existing in self._entries):
            raise ValueError(f"task {spec.task_id!r} is already queued")
        spec.state = TaskState.QUEUED
        self._entries.append((spec.priority, next(self._sequence), spec))
        self._entries.sort(key=lambda e: (-e[0], e[1]))
        return spec

    def snapshot(self) -> list[TaskSpec]:
        """Queued tasks in scheduling order (highest priority first)."""
        return [spec for _, _, spec in self._entries]

    def remove(self, task_id: str) -> TaskSpec:
        """Take a task out of the queue (when scheduled or cancelled)."""
        for index, (_, _, spec) in enumerate(self._entries):
            if spec.task_id == task_id:
                del self._entries[index]
                return spec
        raise KeyError(f"task {task_id!r} is not queued")

    def peek(self) -> TaskSpec | None:
        """Highest-priority task without removing it."""
        return self._entries[0][2] if self._entries else None
