"""The Task Runner: end-to-end execution of one scheduled task.

§III-B: "Task Runner dynamically adjusts execution strategies for
scheduled tasks, ensuring that they are allocated to appropriate
heterogeneous resources based on the requested resource amounts and the
number of simulated devices."  Concretely, the runner

1. generates (or receives) the task's federated dataset,
2. solves the §IV-B hybrid allocation problem,
3. builds the logical-tier and physical-tier execution plans,
4. registers the task with DeviceFlow (when traffic shaping is on),
5. drives the configured number of rounds — tiers in parallel, results
   uploaded to storage, messages through DeviceFlow, aggregation on the
   cloud — and
6. tears everything down, returning a :class:`TaskResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.cloud.aggregation import AggregationRecord, AggregationService, AggregationTrigger
from repro.cloud.database import MetricsDatabase
from repro.cloud.monitor import Monitor
from repro.cloud.sink import CloudIngestSink
from repro.cloud.storage import ObjectStorage
from repro.cloud.transport import ChannelModel, TransportChannel, TransportCounters
from repro.cluster.actor import DeviceAssignment
from repro.cluster.cluster import K8sCluster
from repro.cluster.cost import LogicalCostModel
from repro.cluster.resources import ResourceBundle
from repro.cluster.runner import GradeExecutionPlan, LogicalSimulation
from repro.data.avazu import FederatedDataset, make_federated_ctr_data
from repro.deviceflow.controller import DeviceFlow
from repro.ml.backends import DEVICE_BACKEND, SERVER_BACKEND
from repro.ml.model import LogisticRegressionModel
from repro.phones.adb import SimulatedAdb
from repro.phones.cost import PhysicalCostModel
from repro.phones.phone import VirtualPhone
from repro.phones.phonemgr import PhoneAssignment, PhoneMgr
from repro.scheduler.allocation import (
    AllocationProblem,
    AllocationResult,
    GradeAllocationParams,
    solve_allocation,
)
from repro.scheduler.task import TaskSpec, TaskState
from repro.simkernel import AllOf, RandomStreams, Simulator, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.tracing import Tracer


@dataclass
class TaskResult:
    """Everything a finished task reports back."""

    task_id: str
    state: TaskState
    allocation: AllocationResult | None
    started_at: float
    finished_at: float
    rounds: list[AggregationRecord] = field(default_factory=list)
    flow_stats: object | None = None
    benchmark_records: list = field(default_factory=list)
    #: Transport totals (uploads/retries/duplicate_drops/late_drops/...)
    #: when a lossy channel or round deadline was armed, else ``None``.
    transport: dict | None = None
    error: str | None = None

    @property
    def makespan(self) -> float:
        """Simulated seconds from start to completion."""
        return self.finished_at - self.started_at


class TaskRunner:
    """Executes one task against the shared platform substrates.

    Parameters
    ----------
    sim / streams:
        Simulation plumbing.
    spec:
        The task to run.
    cluster / logical_cost:
        Logical tier.
    phones / adb / physical_cost / busy_registry:
        Physical tier (the busy registry is shared across runners).
    storage / db / monitor:
        Cloud substrates.
    deviceflow:
        Shared traffic controller (used when the spec carries a strategy).
    fixed_allocation:
        Optional explicit per-grade logical counts overriding the
        optimizer (the Type 1-5 experiments use this).
    batch:
        Drive both tiers through their wave-scheduled fast paths (the
        default).  ``False`` restores per-device generator processes and
        per-phone samplers — bit-identical simulations either way.
    cloud_blocks:
        Ingest batched plans' rounds into the cloud as columnar blocks
        (one ``put_block`` / ``receive_block`` per plan) instead of one
        storage put, message and fold per device.  Defaults to following
        ``batch``.  Tasks routed through DeviceFlow always stream
        per-device regardless — traffic shaping samples individual
        arrivals mid-round.  Reports and aggregation records are
        byte-identical either way (``tests/test_outcome_sink.py``).
    channel / channel_scope:
        Optional device→cloud :class:`~repro.cloud.transport.ChannelModel`
        fronting the ingestion sink, and the tenant scope its windows
        match against.  A channel with no applicable impairment is
        skipped entirely — lossless runs stay byte-identical to channel-
        free ones.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: TaskSpec,
        cluster: K8sCluster,
        phones: list[VirtualPhone],
        adb: SimulatedAdb,
        storage: ObjectStorage,
        deviceflow: DeviceFlow | None = None,
        logical_cost: LogicalCostModel | None = None,
        physical_cost: PhysicalCostModel | None = None,
        streams: RandomStreams | None = None,
        busy_registry: set | None = None,
        db: MetricsDatabase | None = None,
        monitor: Monitor | None = None,
        fixed_allocation: dict[str, int] | None = None,
        dataset: FederatedDataset | None = None,
        unit_bundle: ResourceBundle | None = None,
        batch: bool = True,
        cloud_blocks: bool | None = None,
        channel: ChannelModel | None = None,
        channel_scope: str = "",
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.cluster = cluster
        self.storage = storage
        self.deviceflow = deviceflow
        self.logical_cost = logical_cost or LogicalCostModel()
        self.physical_cost = physical_cost or PhysicalCostModel()
        self.streams = streams or RandomStreams(0)
        self.db = db
        self.monitor = monitor
        self.fixed_allocation = fixed_allocation
        self.unit_bundle = unit_bundle if unit_bundle is not None else ResourceBundle(cpus=1.0, memory_gb=1.0)
        self._provided_dataset = dataset
        self.cloud_blocks = batch if cloud_blocks is None else bool(cloud_blocks)
        self.channel = channel
        self.channel_scope = channel_scope
        self.tracer = tracer
        self._sink: CloudIngestSink | None = None
        self._channel: TransportChannel | None = None
        self._open_round: int | None = None
        self.logical = LogicalSimulation(sim, cluster, self.logical_cost, self.streams, batch=batch)
        self.phonemgr = PhoneMgr(
            sim,
            adb,
            phones,
            cost_model=self.physical_cost,
            streams=self.streams,
            busy_registry=busy_registry,
            on_sample=self._store_sample if db is not None else None,
            batch=batch,
            tracer=tracer,
        )
        self.service: AggregationService | None = None
        self.result: TaskResult | None = None

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """The task's top-level process; returns a :class:`TaskResult`."""
        spec = self.spec
        spec.state = TaskState.RUNNING
        started = self.sim.now
        self._log("task_started", task_id=spec.task_id)
        try:
            dataset = self._build_dataset()
            allocation = self._solve_allocation()
            logical_plans, phone_plans, grade_devices = self._build_plans(dataset, allocation)
            self.service = self._build_service(dataset, grade_devices)
            uses_flow = self.deviceflow is not None and spec.deviceflow_strategy is not None
            channel_active = self.channel is not None and self.channel.active_for(
                self.channel_scope
            )
            gated = channel_active or spec.deadline_s is not None
            # Flow tasks stream per-device (strategies sample individual
            # arrivals mid-round); direct tasks hand each batched plan's
            # round to the cloud as one columnar block.
            self._sink = CloudIngestSink(
                self.sim,
                spec.task_id,
                self.storage,
                self.service,
                deviceflow=self.deviceflow if uses_flow else None,
                prefer_blocks=self.cloud_blocks,
                dedup=channel_active,
                tracer=self.tracer,
                # With a channel fronting the sink, device completions
                # are recorded at the transport boundary instead.
                trace_devices=not channel_active,
            )
            if channel_active:
                self._channel = TransportChannel(
                    self.sim,
                    self.channel,
                    self._sink,
                    self.streams,
                    spec.task_id,
                    scope=self.channel_scope,
                    tracer=self.tracer,
                )
            if uses_flow:
                downstream = (
                    self._sink.flow_receive if gated else self.service.receive_message
                )
                self.deviceflow.register_task(
                    spec.task_id, spec.deviceflow_strategy, downstream
                )
                self._flow_registered = True
            prepares = []
            if logical_plans:
                prepares.append(
                    self.sim.process(
                        self.logical.prepare(logical_plans, task_id=spec.task_id)
                    )
                )
            if phone_plans:
                prepares.append(
                    self.sim.process(self.phonemgr.prepare(phone_plans, task_id=spec.task_id))
                )
            if prepares:
                yield AllOf(prepares)

            model_bytes = LogisticRegressionModel(spec.feature_dim).payload_size()
            for round_index in range(1, spec.rounds + 1):
                yield self.sim.process(
                    self._run_round(round_index, model_bytes, uses_flow),
                    name=f"{spec.task_id}.round{round_index}",
                )
            flow_stats = self.deviceflow.stats(spec.task_id) if uses_flow else None
            self._teardown(uses_flow)
            yield self.sim.process(self.phonemgr.teardown())
            spec.state = TaskState.COMPLETED
            self.result = TaskResult(
                task_id=spec.task_id,
                state=spec.state,
                allocation=allocation,
                started_at=started,
                finished_at=self.sim.now,
                rounds=list(self.service.history),
                flow_stats=flow_stats,
                benchmark_records=list(self.phonemgr.benchmark_records),
                transport=self._transport_summary() if gated else None,
            )
        except Exception as exc:
            spec.state = TaskState.FAILED
            self._emergency_cleanup()
            self.result = TaskResult(
                task_id=spec.task_id,
                state=spec.state,
                allocation=None,
                started_at=started,
                finished_at=self.sim.now,
                error=repr(exc),
            )
            self._log("task_failed", task_id=spec.task_id, error=repr(exc))
            raise
        self._log("task_completed", task_id=spec.task_id, makespan=self.result.makespan)
        return self.result

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_dataset(self) -> FederatedDataset | None:
        if not self.spec.numeric:
            return None
        if self._provided_dataset is not None:
            return self._provided_dataset
        return make_federated_ctr_data(
            n_devices=self.spec.total_devices,
            records_per_device=self.spec.records_per_device,
            feature_dim=self.spec.feature_dim,
            seed=self.spec.dataset_seed,
            skew=self.spec.skew,
        )

    def _solve_allocation(self) -> AllocationResult:
        params = []
        flow_work = self.spec.flow.total_work
        for grade in self.spec.grades:
            params.append(
                GradeAllocationParams(
                    grade=grade.grade,
                    n_devices=grade.n_devices,
                    n_benchmark=grade.n_benchmark,
                    bundles=grade.bundles,
                    units_per_device=grade.device_bundle.units_relative_to(self.unit_bundle),
                    n_phones=grade.n_phones,
                    alpha=self.logical_cost.device_round_duration(grade.grade, flow_work),
                    beta=self.physical_cost.training_duration(grade.grade, flow_work),
                    lam=self.physical_cost.startup_duration(grade.grade),
                )
            )
        problem = AllocationProblem(params)
        if self.fixed_allocation is not None:
            from repro.scheduler.allocation import evaluate_allocation

            x = [self.fixed_allocation[g.grade] for g in params]
            result = evaluate_allocation(problem, x)
            result.solver = "fixed"
            return result
        return solve_allocation(problem)

    def _build_plans(
        self, dataset: FederatedDataset | None, allocation: AllocationResult
    ) -> tuple[list[GradeExecutionPlan], list[PhoneAssignment], dict[str, list[str]]]:
        """Split each grade's device ids across tiers per the allocation."""
        available_ids = dataset.device_ids() if dataset is not None else None
        cursor = 0
        logical_plans: list[GradeExecutionPlan] = []
        phone_plans: list[PhoneAssignment] = []
        grade_devices: dict[str, list[str]] = {}

        def make_assignment(device_id: str, grade: str) -> DeviceAssignment:
            if dataset is not None:
                shard = dataset.shard(device_id)
                return DeviceAssignment(device_id, grade, shard.n_samples, dataset=shard)
            return DeviceAssignment(device_id, grade, self.spec.records_per_device)

        for grade_req, grade_alloc in zip(self.spec.grades, allocation.grades):
            if available_ids is not None:
                ids = available_ids[cursor : cursor + grade_req.n_devices]
                cursor += grade_req.n_devices
            else:
                ids = [
                    f"{self.spec.task_id}-{grade_req.grade}-{i:06d}"
                    for i in range(grade_req.n_devices)
                ]
            grade_devices[grade_req.grade] = list(ids)
            bench_ids = ids[: grade_req.n_benchmark]
            split_ids = ids[grade_req.n_benchmark :]
            logical_ids = split_ids[: grade_alloc.logical]
            physical_ids = split_ids[grade_alloc.logical :]

            if logical_ids:
                k = grade_req.device_bundle.units_relative_to(self.unit_bundle)
                n_actors = max(1, grade_req.bundles // k)
                logical_plans.append(
                    GradeExecutionPlan(
                        grade=grade_req.grade,
                        assignments=[make_assignment(d, grade_req.grade) for d in logical_ids],
                        n_actors=n_actors,
                        bundle=grade_req.device_bundle,
                        flow=self.spec.flow,
                        feature_dim=self.spec.feature_dim,
                        backend=SERVER_BACKEND,
                        numeric=self.spec.numeric,
                    )
                )
            if physical_ids or bench_ids:
                phone_plans.append(
                    PhoneAssignment(
                        grade=grade_req.grade,
                        assignments=[make_assignment(d, grade_req.grade) for d in physical_ids],
                        benchmarking=[make_assignment(d, grade_req.grade) for d in bench_ids],
                        n_phones=grade_req.n_phones if physical_ids else 0,
                        flow=self.spec.flow,
                        feature_dim=self.spec.feature_dim,
                        backend=DEVICE_BACKEND,
                        numeric=self.spec.numeric,
                    )
                )
        return logical_plans, phone_plans, grade_devices

    def _build_service(
        self, dataset: FederatedDataset | None, grade_devices: dict[str, list[str]]
    ) -> AggregationService:
        model = LogisticRegressionModel(self.spec.feature_dim) if self.spec.numeric else None
        test_set = dataset.test if dataset is not None else None
        return AggregationService(
            self.sim,
            self.storage,
            trigger=AggregationTrigger(),  # runner-driven round-end aggregation
            model=model,
            test_set=test_set,
            db=self.db,
            name=self.spec.task_id,
        )

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def _run_round(self, round_index: int, model_bytes: int, uses_flow: bool) -> Generator:
        spec = self.spec
        assert self.service is not None and self._sink is not None
        if self.tracer is not None:
            self.tracer.record_round_start(spec.task_id, round_index, self.sim.now)
        if uses_flow:
            self.deviceflow.round_started(spec.task_id, round_index)
        model = self.service.model
        weights, bias = (model.get_params() if model is not None else (None, 0.0))

        # Arm the round's transport gates.  The channel drops late
        # uploads at their computed arrival times for direct tasks; flow
        # tasks are gated at dispatcher delivery (the sink checks
        # ``sim.now``), and their shelves are force-drained at the
        # deadline so the round cannot hang on undispatched messages.
        round_deadline = (
            self.sim.now + spec.deadline_s if spec.deadline_s is not None else None
        )
        self._open_round = round_index
        if self._channel is not None:
            self._channel.begin_round(
                round_index, deadline=None if uses_flow else round_deadline
            )
        self._sink.begin_round(
            round_index,
            deadline=round_deadline if (uses_flow or self._channel is None) else None,
        )
        gate_before = (self._sink.delivered, self._sink.duplicate_drops, self._sink.late_drops)
        if uses_flow and round_deadline is not None:
            self.sim.schedule_at(round_deadline, self._close_flow_round, round_index)

        sink = self._channel if self._channel is not None else self._sink
        tier_processes = []
        if self.logical.plans:
            tier_processes.append(
                self.sim.process(
                    self.logical.run_round(round_index, weights, bias, model_bytes, sink)
                )
            )
        if self.phonemgr.plans:
            tier_processes.append(
                self.sim.process(
                    self.phonemgr.run_round(round_index, weights, bias, model_bytes, sink)
                )
            )
        if tier_processes:
            yield AllOf(tier_processes)
        counters: TransportCounters | None = None
        if self._channel is not None:
            counters = yield from self._channel.finish_round()
        if uses_flow:
            self.deviceflow.round_completed(spec.task_id, round_index)
            yield self.sim.process(self._await_deliveries(), name=f"{spec.task_id}.drain")
        if counters is not None:
            self._log(
                "transport_round",
                task_id=spec.task_id,
                round=round_index,
                uploads=counters.uploads,
                delivered=self._sink.delivered - gate_before[0],
                retries=counters.retries,
                duplicates=self._sink.duplicate_drops - gate_before[1],
                late=counters.late_drops + self._sink.late_drops - gate_before[2],
                abandoned=counters.abandoned,
                expected=spec.total_devices,
            )
        self._open_round = None
        if self.service.pending_updates > 0:
            record = self.service.aggregate_now()
            self._log(
                "round_aggregated",
                task_id=spec.task_id,
                round=round_index,
                n_updates=record.n_updates,
                n_devices=spec.total_devices,
                test_accuracy=record.test_accuracy,
            )
            if self.tracer is not None:
                self.tracer.record_fold(
                    spec.task_id,
                    round_index,
                    self.sim.now,
                    record.n_updates,
                    record.test_accuracy,
                )
        if self.tracer is not None:
            self.tracer.record_round_end(spec.task_id, round_index, self.sim.now)

    def _await_deliveries(self) -> Generator:
        """Block until DeviceFlow has delivered or dropped everything.

        ``received`` is frozen once the round's computation is done, so
        the drain condition is monotone and this loop terminates for any
        bounded strategy schedule.
        """
        assert self.deviceflow is not None
        while True:
            stats = self.deviceflow.stats(self.spec.task_id)
            if stats.shelved == 0 and stats.delivered + stats.dropped >= stats.received:
                return
            yield Timeout(1.0)

    def _close_flow_round(self, round_index: int) -> None:
        """Deadline closure for flow rounds: drop undispatched messages.

        Scheduled at the round's absolute deadline; a no-op when the
        round already finished (the guard also covers crashed tasks).
        Already-dispatched late messages are dropped by the sink's gate
        at delivery time.
        """
        if not getattr(self, "_flow_registered", False) or self._open_round != round_index:
            return
        dropped = self.deviceflow.discard_shelved(self.spec.task_id)
        if dropped > 0:
            self._log(
                "round_deadline_closed",
                task_id=self.spec.task_id,
                round=round_index,
                dropped=dropped,
            )

    def _transport_summary(self) -> dict:
        """Task-level transport totals (channel + ingestion gate)."""
        totals = self._channel.totals if self._channel is not None else TransportCounters()
        summary = totals.as_dict()
        summary["delivered"] = self._sink.delivered
        summary["duplicate_drops"] = self._sink.duplicate_drops
        summary["late_drops"] = totals.late_drops + self._sink.late_drops
        return summary

    def _teardown(self, uses_flow: bool) -> None:
        self.logical.teardown()
        if uses_flow:
            self.deviceflow.unregister_task(self.spec.task_id)
            self._flow_registered = False

    def _emergency_cleanup(self) -> None:
        """Best-effort release of every concrete resource after a crash.

        The Task Manager releases the bookkeeping grant; this method
        returns the *physical* allocations — cluster placement group,
        phone reservations, DeviceFlow registration — so sibling and
        queued tasks are unaffected.
        """
        self.logical.teardown()
        self.phonemgr.abort()
        if getattr(self, "_flow_registered", False) and self.deviceflow is not None:
            self.deviceflow.force_unregister(self.spec.task_id)
            self._flow_registered = False

    # ------------------------------------------------------------------
    def _store_sample(self, sample) -> None:
        assert self.db is not None
        self.db.insert(
            "device_samples",
            {
                "task_id": self.spec.task_id,
                "serial": sample.serial,
                "time": sample.timestamp,
                "current_ua": sample.current_ua,
                "voltage_mv": sample.voltage_mv,
                "cpu_percent": sample.cpu_percent,
                "memory_kb": sample.memory_kb,
                "rx_bytes": sample.rx_bytes,
                "tx_bytes": sample.tx_bytes,
            },
        )

    def _log(self, kind: str, **fields) -> None:
        if self.monitor is not None:
            self.monitor.log(kind, **fields)
