"""Ray-like job submission lifecycle."""

from __future__ import annotations

import enum
import itertools
from collections.abc import Callable, Generator
from typing import Any

from repro.simkernel import Process, Signal, Simulator

_job_counter = itertools.count()


class JobState(enum.Enum):
    """Lifecycle of a submitted job (mirrors Ray's job states)."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"


class RayJob:
    """A unit of work submitted to the cluster's job manager.

    The body is a process generator; the job tracks state transitions and
    exposes a completion :class:`Signal` so the Task Runner can await it.
    """

    def __init__(self, body: Callable[[], Generator], name: str = "") -> None:
        self.job_id = f"raysubmit_{next(_job_counter):06d}"
        self.name = name or self.job_id
        self.body = body
        self.state = JobState.PENDING
        self.submitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: Any = None
        self.error: BaseException | None = None
        self.completion = Signal(name=f"{self.job_id}.completion")
        self._process: Process | None = None

    def submit(self, sim: Simulator) -> RayJob:
        """Start the job body as a simulation process."""
        if self.submitted_at is not None:
            raise RuntimeError(f"job {self.job_id} was already submitted")
        self.submitted_at = sim.now
        self._process = sim.process(self._wrapper(sim), name=self.name)
        return self

    def _wrapper(self, sim: Simulator) -> Generator:
        self.state = JobState.RUNNING
        self.started_at = sim.now
        try:
            result = yield sim.process(self.body(), name=f"{self.name}.body")
        except BaseException as exc:  # noqa: BLE001 - job captures its body's failure
            self.state = JobState.FAILED
            self.error = exc
            self.finished_at = sim.now
            self.completion.fail(exc)
            return None
        self.state = JobState.SUCCEEDED
        self.result = result
        self.finished_at = sim.now
        self.completion.fire(result)
        return result

    @property
    def duration(self) -> float | None:
        """Wall (simulated) run time once finished."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return f"RayJob({self.job_id}, {self.state.value})"
