"""Sharded execution of the logical tier across worker processes.

The single-process :class:`~repro.cluster.runner.LogicalSimulation` fans a
round out over actors that all share one Python event loop; past ~10^5
devices the interpreter, not the model, bounds throughput.  DCSim and
HolDCSim both escape this by partitioning simulated entities across
workers, and the logical tier shards the same way: grade execution plans
are split round-robin into ``n_shards`` sub-plans, each shard runs its own
:class:`~repro.simkernel.Simulator` (with its own seeded
:class:`~repro.simkernel.RandomStreams`) inside a ``multiprocessing``
worker, and shard results are merged deterministically — sorted by
``(finished_at, device_id)``, so the merge is independent of worker
completion order.

With ``n_shards=1`` everything runs in-process through the exact same code
path as an unsharded :class:`LogicalSimulation`, producing bit-identical
output; that is the fallback (and the reference for regression tests).

Shards are independent for the duration of a call: rounds executed in one
``run_rounds`` call all use the global weights passed at call time.  Use
``n_shards=1`` when server-side aggregation must feed back between rounds.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Generator, Optional

import numpy as np

from repro.cluster.actor import DeviceRoundOutcome
from repro.cluster.cluster import K8sCluster
from repro.cluster.cost import LogicalCostModel
from repro.cluster.resources import NodeSpec
from repro.cluster.runner import GradeExecutionPlan, LogicalSimulation
from repro.simkernel import RandomStreams, Simulator

#: Module-level slot used to hand payloads to forked workers without
#: pickling them through the Pool pipe (the plans of a 100k-device sweep
#: are far bigger than the compact reports coming back).
_FORK_PAYLOADS: Optional[list["_ShardPayload"]] = None


@dataclass
class _ShardPayload:
    """Everything one worker needs to run its shard standalone."""

    shard_index: int
    n_shards: int
    shard_seed: int
    task_id: str
    node_specs: list[NodeSpec]
    cost_model: LogicalCostModel
    plans: list[GradeExecutionPlan]
    n_rounds: int
    model_bytes: int
    global_weights: Optional[np.ndarray]
    global_bias: float
    batch: bool
    collect_outcomes: bool


@dataclass
class _ShardRoundReport:
    """Compact, picklable summary of one round on one shard."""

    round_index: int
    started_at: float
    finished_at: float
    n_devices: int
    payload_bytes: int
    finished_times: np.ndarray
    outcomes: Optional[list[DeviceRoundOutcome]]


@dataclass
class MergedRound:
    """One logical round merged across every shard."""

    round_index: int
    started_at: float
    finished_at: float
    n_devices: int
    payload_bytes: int
    finished_times: np.ndarray  # sorted ascending
    outcomes: Optional[list[DeviceRoundOutcome]]  # sorted by (finished_at, device_id)

    @property
    def duration(self) -> float:
        """Simulated seconds from earliest shard start to last completion."""
        return self.finished_at - self.started_at


@dataclass
class ShardedRunResult:
    """Deterministically merged result of a sharded logical run."""

    n_shards: int
    rounds: list[MergedRound] = field(default_factory=list)

    @property
    def total_devices(self) -> int:
        return sum(r.n_devices for r in self.rounds)

    def metrics(self) -> dict:
        """Order-independent aggregate metrics for regression comparisons.

        Every value is computed from shard-order-independent state (sorted
        completion times), so seeded runs with ``n_shards`` in {1, 2, 4}
        over evenly divisible plans report identical dictionaries.
        """
        times = (
            np.concatenate([r.finished_times for r in self.rounds])
            if self.rounds
            else np.empty(0)
        )
        return {
            "rounds": len(self.rounds),
            "devices": self.total_devices,
            "duration_total": sum(r.duration for r in self.rounds),
            "payload_bytes": sum(r.payload_bytes for r in self.rounds),
            "last_finished_at": max((r.finished_at for r in self.rounds), default=0.0),
            "finished_checksum": float(np.sort(times).sum()),
        }


def partition_plans(plans: list[GradeExecutionPlan], n_shards: int) -> list[list[GradeExecutionPlan]]:
    """Split each plan's devices and actor slots evenly over shards.

    Shard ``s`` takes a *contiguous* block of ``len(assignments) //
    n_shards`` devices (remainders go to the lowest shard indices) and the
    matching share of actor slots (any shard holding devices keeps at least
    one slot).  Contiguous blocks — rather than a strided ``s::n_shards``
    split — matter under ``fork``: assignment objects are laid out in
    allocation order, so block partitioning keeps each worker's
    copy-on-write page faults to its own slice instead of touching every
    page of the full device list.  Plans left without devices on a shard
    are dropped from that shard.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    shards: list[list[GradeExecutionPlan]] = [[] for _ in range(n_shards)]
    for plan in plans:
        n_devices = len(plan.assignments)
        start = 0
        for s in range(n_shards):
            size = n_devices // n_shards + (1 if s < n_devices % n_shards else 0)
            assignments = plan.assignments[start : start + size]
            start += size
            if not assignments:
                continue
            n_actors = plan.n_actors // n_shards + (1 if s < plan.n_actors % n_shards else 0)
            shards[s].append(replace(plan, assignments=assignments, n_actors=max(1, n_actors)))
    return shards


def _drive_shard(payload: _ShardPayload) -> list[_ShardRoundReport]:
    """Run one shard's full prepare/rounds/teardown cycle to completion."""
    sim = Simulator()
    cluster = K8sCluster(payload.node_specs)
    logical = LogicalSimulation(
        sim,
        cluster,
        payload.cost_model,
        streams=RandomStreams(payload.shard_seed),
        batch=payload.batch,
    )

    def driver() -> Generator:
        yield sim.process(logical.prepare(payload.plans, task_id=payload.task_id))
        for round_index in range(1, payload.n_rounds + 1):
            yield sim.process(
                logical.run_round(
                    round_index,
                    payload.global_weights,
                    payload.global_bias,
                    payload.model_bytes,
                    None,
                )
            )

    sim.process(driver())
    sim.run(batch=payload.batch)
    reports = []
    for result in logical.rounds:
        outcomes = result.all_outcomes() if payload.collect_outcomes else None
        payload_bytes = result.payload_bytes_total()
        reports.append(
            _ShardRoundReport(
                round_index=result.round_index,
                started_at=result.started_at,
                finished_at=result.finished_at,
                n_devices=result.n_devices,
                payload_bytes=payload_bytes,
                finished_times=result.finished_times(),
                outcomes=outcomes,
            )
        )
    logical.teardown()
    return reports


def _drive_shard_at(index: int) -> list[_ShardRoundReport]:
    """Forked-worker entry point: read the payload from inherited memory."""
    assert _FORK_PAYLOADS is not None, "fork payload slot not populated"
    return _drive_shard(_FORK_PAYLOADS[index])


class ShardedLogicalSimulation:
    """Drives grade execution plans over ``n_shards`` independent workers.

    Parameters
    ----------
    node_specs:
        The whole cluster's nodes.  Capacity for the combined plans is
        validated globally up front; each shard then places its own
        sub-group against the shared (simulated) node list.
    cost_model:
        Shared simulated-time cost constants.
    n_shards:
        Worker count.  ``1`` (default) runs in-process with no
        multiprocessing involved — the bit-identical reference path.
    seed:
        Master seed.  Shard ``s`` derives ``seed`` (one shard) or
        ``seed * 1_000_003 + s`` (many shards) for its ``RandomStreams``.
    batch:
        Drain same-timestamp kernel events in batches inside each shard.
    """

    def __init__(
        self,
        node_specs: list[NodeSpec],
        cost_model: Optional[LogicalCostModel] = None,
        n_shards: int = 1,
        seed: int = 0,
        batch: bool = True,
        task_id: str = "task",
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.node_specs = list(node_specs)
        self.cost_model = cost_model or LogicalCostModel()
        self.n_shards = n_shards
        self.seed = int(seed)
        self.batch = batch
        self.task_id = task_id

    def _payloads(
        self,
        plans: list[GradeExecutionPlan],
        n_rounds: int,
        model_bytes: int,
        global_weights: Optional[np.ndarray],
        global_bias: float,
        collect_outcomes: bool,
    ) -> list[_ShardPayload]:
        shard_plans = partition_plans(plans, self.n_shards)
        payloads = []
        for s in range(self.n_shards):
            payloads.append(
                _ShardPayload(
                    shard_index=s,
                    n_shards=self.n_shards,
                    shard_seed=self.seed if self.n_shards == 1 else self.seed * 1_000_003 + s,
                    task_id=self.task_id if self.n_shards == 1 else f"{self.task_id}.shard{s}",
                    # Workers share the full (simulated) node list; capacity
                    # for the combined plans is validated globally before
                    # dispatch, and placement within a shard never affects
                    # simulated timing.
                    node_specs=self.node_specs,
                    cost_model=self.cost_model,
                    plans=shard_plans[s],
                    n_rounds=n_rounds,
                    model_bytes=model_bytes,
                    global_weights=global_weights,
                    global_bias=global_bias,
                    batch=self.batch,
                    collect_outcomes=collect_outcomes,
                )
            )
        return payloads

    def run_rounds(
        self,
        plans: list[GradeExecutionPlan],
        n_rounds: int = 1,
        model_bytes: int = 0,
        global_weights: Optional[np.ndarray] = None,
        global_bias: float = 0.0,
        collect_outcomes: bool = True,
    ) -> ShardedRunResult:
        """Execute ``n_rounds`` across all shards and merge the reports.

        ``collect_outcomes=False`` keeps the per-shard reports columnar
        (completion-time arrays plus counters) — the right mode for the
        scalability sweeps, where materializing and pickling 10^5 outcome
        objects would dominate the run.
        """
        if n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        self._check_capacity(plans)
        payloads = self._payloads(
            plans, n_rounds, model_bytes, global_weights, global_bias, collect_outcomes
        )
        if self.n_shards == 1:
            shard_reports = [_drive_shard(payloads[0])]
        else:
            shard_reports = self._run_workers(payloads)
        return self._merge(shard_reports)

    def _check_capacity(self, plans: list[GradeExecutionPlan]) -> None:
        """Validate the *combined* plans against the *whole* cluster.

        Shards allocate their placement groups independently, so the global
        gang-allocation check the unsharded path performs inside
        ``prepare`` has to happen here instead.
        """
        bundles = [plan.bundle for plan in plans for _ in range(plan.n_actors)]
        if bundles and not K8sCluster(self.node_specs).can_allocate(bundles):
            raise RuntimeError(
                f"cluster cannot host {len(bundles)} bundles for task {self.task_id!r}"
            )

    def _run_workers(self, payloads: list[_ShardPayload]) -> list[list[_ShardRoundReport]]:
        global _FORK_PAYLOADS
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            context = multiprocessing.get_context("fork")
            _FORK_PAYLOADS = payloads
            try:
                with context.Pool(processes=self.n_shards) as pool:
                    return pool.map(_drive_shard_at, range(len(payloads)))
            finally:
                _FORK_PAYLOADS = None
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=self.n_shards) as pool:
            return pool.map(_drive_shard, payloads)

    def _merge(self, shard_reports: list[list[_ShardRoundReport]]) -> ShardedRunResult:
        result = ShardedRunResult(n_shards=self.n_shards)
        n_rounds = max((len(reports) for reports in shard_reports), default=0)
        for round_pos in range(n_rounds):
            per_shard = [reports[round_pos] for reports in shard_reports if len(reports) > round_pos]
            times = np.sort(np.concatenate([r.finished_times for r in per_shard]))
            outcomes: Optional[list[DeviceRoundOutcome]] = None
            if all(r.outcomes is not None for r in per_shard):
                outcomes = sorted(
                    (o for r in per_shard for o in r.outcomes),
                    key=lambda o: (o.finished_at, o.device_id),
                )
            result.rounds.append(
                MergedRound(
                    round_index=per_shard[0].round_index,
                    started_at=min(r.started_at for r in per_shard),
                    finished_at=max(r.finished_at for r in per_shard),
                    n_devices=sum(r.n_devices for r in per_shard),
                    payload_bytes=sum(r.payload_bytes for r in per_shard),
                    finished_times=times,
                    outcomes=outcomes,
                )
            )
        return result
