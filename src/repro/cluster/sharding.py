"""Sharded execution of the logical tier across worker processes.

The single-process :class:`~repro.cluster.runner.LogicalSimulation` fans a
round out over actors that all share one Python event loop; past ~10^5
devices the interpreter, not the model, bounds throughput.  DCSim and
HolDCSim both escape this by partitioning simulated entities across
workers, and the logical tier shards the same way: grade execution plans
are split round-robin into ``n_shards`` sub-plans, each shard runs its own
:class:`~repro.simkernel.Simulator` inside a persistent ``multiprocessing``
worker, and shard results are merged deterministically — sorted by
``(finished_at, device_id)``, so the merge is independent of worker
completion order.

Rounds are globally barriered, exactly like the unsharded tier: after each
round the parent collects every shard's report, advances all shard clocks
to the latest completion time, and — for numeric plans — merges the
shards' FedAvg *partials* (:meth:`repro.ml.fedavg.FedAvgAggregator.merge`)
into the new global model, which it broadcasts with the next round
command.  Each worker folds its own devices' updates into a compact
``(weighted_sum, total_samples)`` partial, so *aggregation* never ships
per-device updates across a process boundary — with
``collect_outcomes=False`` (the scalability mode) nothing per-device
crosses at all, while ``collect_outcomes=True`` additionally pickles the
materialized outcomes (updates included) back for inspection.  Because
the partial fold is exact (see ``repro.ml.fedavg``), the merged weights
are bit-identical to the unsharded aggregation for any shard count.

With ``n_shards=1`` everything runs in-process through the exact same code
path as an unsharded :class:`LogicalSimulation`, producing bit-identical
output; that is the fallback (and the reference for regression tests).
Shard counts that divide the device and actor counts evenly are
bit-identical to each other as well — wave schedules, completion times and
global weights all match the generator path (enforced by
``tests/test_numeric_equivalence.py``).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import traceback
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.actor import DeviceRoundOutcome
from repro.cluster.cluster import K8sCluster
from repro.cluster.cost import LogicalCostModel
from repro.cluster.resources import NodeSpec
from repro.cluster.runner import GradeExecutionPlan, LogicalSimulation
from repro.ml.fedavg import FedAvgPartial
from repro.simkernel import RandomStreams, Simulator

#: Module-level slot used to hand payloads to forked workers without
#: pickling them through the pipe (the plans of a 100k-device sweep are far
#: bigger than the compact reports coming back).
_FORK_PAYLOADS: list["_ShardPayload"] | None = None

#: Seconds the parent waits for a worker to acknowledge ``stop``.
_SHUTDOWN_TIMEOUT_S = 10.0


@dataclass
class _ShardPayload:
    """Everything one worker needs to host its shard for a whole run."""

    shard_index: int
    n_shards: int
    shard_seed: int
    task_id: str
    node_specs: list[NodeSpec]
    cost_model: LogicalCostModel
    plans: list[GradeExecutionPlan]
    model_bytes: int
    batch: bool
    collect_outcomes: bool


@dataclass
class _ShardRoundReport:
    """Compact, picklable summary of one round on one shard."""

    round_index: int
    started_at: float
    finished_at: float
    n_devices: int
    payload_bytes: int
    finished_times: np.ndarray
    outcomes: list[DeviceRoundOutcome] | None


@dataclass
class MergedRound:
    """One logical round merged across every shard."""

    round_index: int
    started_at: float
    finished_at: float
    n_devices: int
    payload_bytes: int
    finished_times: np.ndarray  # sorted ascending
    outcomes: list[DeviceRoundOutcome] | None  # sorted by (finished_at, device_id)

    @property
    def duration(self) -> float:
        """Simulated seconds from earliest shard start to last completion."""
        return self.finished_at - self.started_at


@dataclass
class ShardedRunResult:
    """Deterministically merged result of a sharded logical run.

    For runs with numeric plans, :attr:`weights_history` records the
    merged global model after each round that produced updates, and
    :attr:`global_weights` / :attr:`global_bias` hold the final model.
    """

    n_shards: int
    rounds: list[MergedRound] = field(default_factory=list)
    weights_history: list[tuple[np.ndarray, float]] = field(default_factory=list)
    global_weights: np.ndarray | None = None
    global_bias: float = 0.0

    @property
    def total_devices(self) -> int:
        return sum(r.n_devices for r in self.rounds)

    def metrics(self) -> dict:
        """Order-independent aggregate metrics for regression comparisons.

        Every value is computed from shard-order-independent state (sorted
        completion times), so seeded runs with ``n_shards`` in {1, 2, 4}
        over evenly divisible plans report identical dictionaries.
        """
        times = (
            np.concatenate([r.finished_times for r in self.rounds])
            if self.rounds
            else np.empty(0)
        )
        return {
            "rounds": len(self.rounds),
            "devices": self.total_devices,
            "duration_total": sum(r.duration for r in self.rounds),
            "payload_bytes": sum(r.payload_bytes for r in self.rounds),
            "last_finished_at": max((r.finished_at for r in self.rounds), default=0.0),
            "finished_checksum": float(np.sort(times).sum()),
        }


def partition_plans(plans: list[GradeExecutionPlan], n_shards: int) -> list[list[GradeExecutionPlan]]:
    """Split each plan's actor slots (and their devices) over shards.

    The split is *wave-aligned*: shard ``s`` owns a contiguous range of
    actor slots (``n_actors // n_shards`` each, remainders to the lowest
    shard indices) and takes, from every wave of the round-robin layout,
    exactly the devices those slots would simulate — device at position
    ``p`` runs on actor ``p % n_actors`` in wave ``p // n_actors``, on
    whichever shard owns that actor slot.  A shard's local wave ``w`` is
    therefore the global wave ``w``, which keeps every device's completion
    time bit-identical to the unsharded schedule; a contiguous device
    split would instead compress each shard's devices into earlier waves
    and reshuffle who finishes when.  Plans left without actor slots (or
    devices) on a shard are dropped from that shard.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    shards: list[list[GradeExecutionPlan]] = [[] for _ in range(n_shards)]
    for plan in plans:
        n_devices = len(plan.assignments)
        n_actors = plan.n_actors
        slot_lo = 0
        for s in range(n_shards):
            slots = n_actors // n_shards + (1 if s < n_actors % n_shards else 0)
            slot_hi = slot_lo + slots
            if slots == 0:
                continue
            assignments = [
                assignment
                for wave_start in range(slot_lo, n_devices, n_actors)
                for assignment in plan.assignments[wave_start : wave_start - slot_lo + slot_hi]
            ]
            slot_lo = slot_hi
            if not assignments:
                continue
            shards[s].append(replace(plan, assignments=assignments, n_actors=slots))
    return shards


class _ShardSession:
    """One shard's simulator, driven round-by-round under parent barriers."""

    def __init__(self, payload: _ShardPayload) -> None:
        self.payload = payload
        self.sim = Simulator()
        self.logical = LogicalSimulation(
            self.sim,
            K8sCluster(payload.node_specs),
            payload.cost_model,
            # The master seed is shared by every shard: all device-level
            # streams are name-keyed, so identical seeds are what keeps a
            # device's randomness independent of the shard hosting it.
            streams=RandomStreams(payload.shard_seed),
            batch=payload.batch,
        )
        self.sim.process(
            self.logical.prepare(payload.plans, task_id=payload.task_id),
            name=f"{payload.task_id}.prepare",
        )
        self.sim.run(batch=payload.batch)
        self.ready_at = self.sim.now

    def run_round(
        self,
        round_index: int,
        barrier: float,
        global_weights: np.ndarray | None,
        global_bias: float,
    ) -> tuple[_ShardRoundReport, FedAvgPartial]:
        """Advance the shard clock to ``barrier``, then run one round.

        ``run(until=barrier)`` assigns the clock exactly (no float
        accumulation), so wave schedules start from the same timestamp the
        unsharded tier would use and completion times stay bit-identical.
        """
        if barrier > self.sim.now:
            self.sim.run(until=barrier, batch=self.payload.batch)
        self.sim.process(
            self.logical.run_round(
                round_index, global_weights, global_bias, self.payload.model_bytes, None
            ),
            name=f"{self.payload.task_id}.round{round_index}",
        )
        self.sim.run(batch=self.payload.batch)
        result = self.logical.rounds[-1]
        weights, biases, n_samples = result.fedavg_inputs()
        partial = FedAvgPartial.from_arrays(weights, biases, n_samples)
        outcomes = result.all_outcomes() if self.payload.collect_outcomes else None
        report = _ShardRoundReport(
            round_index=result.round_index,
            started_at=result.started_at,
            finished_at=result.finished_at,
            n_devices=result.n_devices,
            payload_bytes=result.payload_bytes_total(),
            finished_times=result.finished_times(),
            outcomes=outcomes,
        )
        return report, partial

    def close(self) -> None:
        self.logical.teardown()


def _shard_worker_main(conn, payload_index: int, payload: _ShardPayload | None) -> None:
    """Worker entry point: serve rounds over the pipe until ``stop``.

    ``payload`` is None under ``fork`` (read from inherited memory via
    ``_FORK_PAYLOADS``) and pickled through the process arguments under
    ``spawn``.
    """
    try:
        if payload is None:
            assert _FORK_PAYLOADS is not None, "fork payload slot not populated"
            payload = _FORK_PAYLOADS[payload_index]
        session = _ShardSession(payload)
        conn.send(("ready", session.ready_at))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, round_index, barrier, global_weights, global_bias = message
            conn.send(("round", *session.run_round(round_index, barrier, global_weights, global_bias)))
        session.close()
        conn.send(("stopped",))
    except Exception:  # pragma: no cover - exercised only on worker crashes
        with contextlib.suppress(BrokenPipeError, OSError):
            conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class _InProcessShards:
    """The ``n_shards=1`` backend: one session, no processes, no pickling."""

    def __init__(self, payloads: list[_ShardPayload]) -> None:
        self.sessions = [_ShardSession(payload) for payload in payloads]

    def ready_times(self) -> list[float]:
        return [session.ready_at for session in self.sessions]

    def run_round(
        self,
        round_index: int,
        barrier: float,
        global_weights: np.ndarray | None,
        global_bias: float,
    ) -> list[tuple[_ShardRoundReport, FedAvgPartial]]:
        return [
            session.run_round(round_index, barrier, global_weights, global_bias)
            for session in self.sessions
        ]

    def close(self) -> None:
        for session in self.sessions:
            session.close()


class _WorkerShards:
    """Persistent worker processes, one per shard, spoken to over pipes."""

    def __init__(self, payloads: list[_ShardPayload]) -> None:
        global _FORK_PAYLOADS
        methods = multiprocessing.get_all_start_methods()
        fork = "fork" in methods
        context = multiprocessing.get_context("fork" if fork else "spawn")
        self.connections = []
        self.processes = []
        if fork:
            _FORK_PAYLOADS = payloads
        try:
            for index, payload in enumerate(payloads):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_conn, index, None if fork else payload),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.connections.append(parent_conn)
                self.processes.append(process)
        finally:
            if fork:
                _FORK_PAYLOADS = None
        self._ready = [self._receive(conn) for conn in self.connections]

    @staticmethod
    def _receive(conn):
        try:
            message = conn.recv()
        except EOFError as exc:
            raise RuntimeError(
                "shard worker exited without reporting (killed or crashed hard)"
            ) from exc
        if message[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{message[1]}")
        return message[1:]

    def ready_times(self) -> list[float]:
        return [ready[0] for ready in self._ready]

    def run_round(
        self,
        round_index: int,
        barrier: float,
        global_weights: np.ndarray | None,
        global_bias: float,
    ) -> list[tuple[_ShardRoundReport, FedAvgPartial]]:
        for conn in self.connections:
            conn.send(("round", round_index, barrier, global_weights, global_bias))
        return [tuple(self._receive(conn)) for conn in self.connections]

    def close(self) -> None:
        for conn in self.connections:
            with contextlib.suppress(BrokenPipeError, OSError):
                conn.send(("stop",))
        for process, conn in zip(self.processes, self.connections):
            with contextlib.suppress(EOFError, OSError):
                if conn.poll(_SHUTDOWN_TIMEOUT_S):
                    conn.recv()  # "stopped" acknowledgement
            conn.close()
            process.join(timeout=_SHUTDOWN_TIMEOUT_S)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=_SHUTDOWN_TIMEOUT_S)


class ShardedLogicalSimulation:
    """Drives grade execution plans over ``n_shards`` independent workers.

    Parameters
    ----------
    node_specs:
        The whole cluster's nodes.  Capacity for the combined plans is
        validated globally up front; each shard then places its own
        sub-group against the shared (simulated) node list.
    cost_model:
        Shared simulated-time cost constants.
    n_shards:
        Worker count.  ``1`` (default) runs in-process with no
        multiprocessing involved — the bit-identical reference path.
    seed:
        Master seed, shared by every shard (device-level random streams
        are name-keyed, so sharing the seed is what makes results
        independent of the shard layout).
    batch:
        Drain same-timestamp kernel events in batches inside each shard.
    """

    def __init__(
        self,
        node_specs: list[NodeSpec],
        cost_model: LogicalCostModel | None = None,
        n_shards: int = 1,
        seed: int = 0,
        batch: bool = True,
        task_id: str = "task",
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.node_specs = list(node_specs)
        self.cost_model = cost_model or LogicalCostModel()
        self.n_shards = n_shards
        self.seed = int(seed)
        self.batch = batch
        self.task_id = task_id

    def _payloads(
        self,
        plans: list[GradeExecutionPlan],
        model_bytes: int,
        collect_outcomes: bool,
    ) -> list[_ShardPayload]:
        shard_plans = partition_plans(plans, self.n_shards)
        payloads = []
        for s in range(self.n_shards):
            payloads.append(
                _ShardPayload(
                    shard_index=s,
                    n_shards=self.n_shards,
                    shard_seed=self.seed,
                    task_id=self.task_id if self.n_shards == 1 else f"{self.task_id}.shard{s}",
                    # Workers share the full (simulated) node list; capacity
                    # for the combined plans is validated globally before
                    # dispatch, and placement within a shard never affects
                    # simulated timing.
                    node_specs=self.node_specs,
                    cost_model=self.cost_model,
                    plans=shard_plans[s],
                    model_bytes=model_bytes,
                    batch=self.batch,
                    collect_outcomes=collect_outcomes,
                )
            )
        return payloads

    def run_rounds(
        self,
        plans: list[GradeExecutionPlan],
        n_rounds: int = 1,
        model_bytes: int = 0,
        global_weights: np.ndarray | None = None,
        global_bias: float = 0.0,
        collect_outcomes: bool = True,
    ) -> ShardedRunResult:
        """Execute ``n_rounds`` across all shards and merge the reports.

        Rounds are globally barriered: every shard starts round ``r + 1``
        at the latest round-``r`` completion time across the whole run,
        exactly like the unsharded tier's end-of-round ``AllOf``.  When the
        plans include numeric (ML-executing) ones, the parent merges each
        round's per-shard FedAvg partials and broadcasts the new global
        weights with the next round — sharded multi-round runs therefore
        train, not just replay, and the resulting models are bit-identical
        to the unsharded path.

        ``collect_outcomes=False`` keeps the per-shard reports columnar
        (completion-time arrays plus counters) — the right mode for the
        scalability sweeps, where materializing and pickling 10^5 outcome
        objects would dominate the run.
        """
        if n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        self._check_capacity(plans)
        payloads = self._payloads(plans, model_bytes, collect_outcomes)
        backend_cls = _InProcessShards if self.n_shards == 1 else _WorkerShards
        shards = backend_cls(payloads)
        result = ShardedRunResult(n_shards=self.n_shards)
        weights = None if global_weights is None else np.asarray(global_weights, dtype=np.float64)
        bias = float(global_bias)
        shard_reports: list[list[_ShardRoundReport]] = [[] for _ in payloads]
        try:
            barrier = max(shards.ready_times())
            for round_index in range(1, n_rounds + 1):
                round_outputs = shards.run_round(round_index, barrier, weights, bias)
                partials = []
                for shard, (report, partial) in enumerate(round_outputs):
                    shard_reports[shard].append(report)
                    partials.append(partial)
                barrier = max(report.finished_at for report, _ in round_outputs)
                merged_partial = FedAvgPartial.merge(partials)
                if merged_partial.n_updates:
                    weights, bias = merged_partial.finalize()
                    result.weights_history.append((weights, bias))
                    result.global_weights = weights
                    result.global_bias = bias
        finally:
            shards.close()
        self._merge_into(result, shard_reports)
        return result

    def _check_capacity(self, plans: list[GradeExecutionPlan]) -> None:
        """Validate the *combined* plans against the *whole* cluster.

        Shards allocate their placement groups independently, so the global
        gang-allocation check the unsharded path performs inside
        ``prepare`` has to happen here instead.
        """
        bundles = [plan.bundle for plan in plans for _ in range(plan.n_actors)]
        if bundles and not K8sCluster(self.node_specs).can_allocate(bundles):
            raise RuntimeError(
                f"cluster cannot host {len(bundles)} bundles for task {self.task_id!r}"
            )

    @staticmethod
    def _merge_into(
        result: ShardedRunResult, shard_reports: list[list[_ShardRoundReport]]
    ) -> None:
        n_rounds = max((len(reports) for reports in shard_reports), default=0)
        for round_pos in range(n_rounds):
            per_shard = [reports[round_pos] for reports in shard_reports if len(reports) > round_pos]
            times = np.sort(np.concatenate([r.finished_times for r in per_shard]))
            outcomes: list[DeviceRoundOutcome] | None = None
            if all(r.outcomes is not None for r in per_shard):
                outcomes = sorted(
                    (o for r in per_shard for o in r.outcomes),
                    key=lambda o: (o.finished_at, o.device_id),
                )
            result.rounds.append(
                MergedRound(
                    round_index=per_shard[0].round_index,
                    started_at=min(r.started_at for r in per_shard),
                    finished_at=max(r.finished_at for r in per_shard),
                    n_devices=sum(r.n_devices for r in per_shard),
                    payload_bytes=sum(r.payload_bytes for r in per_shard),
                    finished_times=times,
                    outcomes=outcomes,
                )
            )
