"""The Ray Runner: master-node orchestration of the logical tier.

"The master node (Ray Runner) is responsible for data downloading,
distribution, and the configuration of runtime parameters for the simulated
devices" (§IV-A).  :class:`LogicalSimulation` wraps the whole tier: it
reserves a placement group on the cluster, starts actors, stages data, and
fans rounds out across the actors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

import numpy as np

from repro.cluster.actor import DeviceAssignment, DeviceRoundOutcome, SimActor
from repro.cluster.cluster import K8sCluster
from repro.cluster.cost import LogicalCostModel
from repro.cluster.placement import PlacementGroup, PlacementStrategy
from repro.cluster.resources import ResourceBundle
from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.operators import OperatorFlow
from repro.simkernel import AllOf, RandomStreams, Signal, Simulator, Timeout, TimeoutPool


@dataclass
class GradeExecutionPlan:
    """Everything the logical tier needs to simulate one device grade.

    Attributes
    ----------
    grade:
        Grade label ("High"/"Low" in the paper's experiments).
    assignments:
        The devices of this grade allocated to the logical tier.
    n_actors:
        Concurrent device slots, i.e. requested unit bundles over units
        per device (``f_i / k_i``).
    bundle:
        Composite resource bundle backing each actor.
    flow:
        The task's operator flow.
    feature_dim:
        Model dimensionality for numeric runs.
    backend:
        Numeric backend of this tier (server-side by default).
    numeric:
        When false, flows advance simulated time but skip the ML math —
        used for the 100k-device scalability sweeps.
    """

    grade: str
    assignments: list[DeviceAssignment]
    n_actors: int
    bundle: ResourceBundle
    flow: OperatorFlow
    feature_dim: int = 4096
    backend: NumericBackend = SERVER_BACKEND
    numeric: bool = True

    def __post_init__(self) -> None:
        if self.n_actors <= 0:
            raise ValueError("n_actors must be positive")
        # One construction-time pass: validate grade homogeneity (the
        # tentpole batched path relies on it to broadcast durations without
        # touching assignment objects) and pre-sum staged bytes so sharded
        # workers never iterate the device list either.
        total_bytes = 0
        for assignment in self.assignments:
            if assignment.grade != self.grade:
                raise ValueError(
                    f"assignment {assignment.device_id!r} has grade "
                    f"{assignment.grade!r} but the plan is for grade {self.grade!r}"
                )
            total_bytes += (
                assignment.dataset.nbytes()
                if assignment.dataset is not None
                else 64 * assignment.n_samples
            )
        self._dataset_bytes = total_bytes

    def dataset_bytes(self) -> int:
        """Total bytes of local data staged for this grade (precomputed)."""
        return self._dataset_bytes


@dataclass
class ColumnarOutcomes:
    """Outcomes of one time-only plan stored as arrays, not objects.

    The batched fast path records a whole plan's round as one block:
    ``finished_at[pos]`` is the upload-completion time of the device
    ``plan.assignments[pos]`` (emission position equals assignment index
    under the wave-major round-robin layout).  Blocks materialize to
    :class:`DeviceRoundOutcome` objects lazily — the 100k scalability
    sweeps never pay for 100k dataclass constructions.
    """

    plan: "GradeExecutionPlan"
    round_index: int
    payload_bytes: int
    finished_at: np.ndarray

    def __len__(self) -> int:
        return len(self.finished_at)

    def materialize(self) -> list[DeviceRoundOutcome]:
        """Build the outcome objects in emission (chronological) order."""
        return [
            DeviceRoundOutcome(
                device_id=assignment.device_id,
                grade=assignment.grade,
                round_index=self.round_index,
                n_samples=assignment.n_samples,
                payload_bytes=self.payload_bytes,
                update=None,
                finished_at=float(time),
            )
            for assignment, time in zip(self.plan.assignments, self.finished_at)
        ]


@dataclass
class RoundResult:
    """Summary of one logical-tier round.

    Outcomes live either in :attr:`outcomes` (eagerly built objects — the
    generator path, or the batched path when a per-device callback was
    requested) or in :attr:`columnar` blocks (the batched path without a
    callback).  :meth:`all_outcomes` unifies the two.
    """

    round_index: int
    outcomes: list[DeviceRoundOutcome] = field(default_factory=list)
    columnar: list[ColumnarOutcomes] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated seconds from round start to last device completion."""
        return self.finished_at - self.started_at

    @property
    def n_devices(self) -> int:
        """Devices that completed the round."""
        return len(self.outcomes) + sum(len(block) for block in self.columnar)

    def all_outcomes(self) -> list[DeviceRoundOutcome]:
        """Eager outcomes followed by materialized columnar blocks.

        Within one source (and always for single-plan rounds) the order is
        chronological; across mixed eager/columnar plans the groups are
        concatenated rather than merged.
        """
        result = list(self.outcomes)
        for block in self.columnar:
            result.extend(block.materialize())
        return result

    def finished_times(self) -> np.ndarray:
        """All completion times, unsorted, without materializing objects."""
        parts = [np.array([o.finished_at for o in self.outcomes], dtype=np.float64)]
        parts.extend(block.finished_at for block in self.columnar)
        return np.concatenate(parts)

    def payload_bytes_total(self) -> int:
        """Bytes uploaded this round, without materializing columnar blocks.

        Eager outcomes carry their true per-device payload (numeric runs
        report the model update's size); columnar blocks are time-only, so
        every device uploaded the block's fixed payload.
        """
        total = sum(o.payload_bytes for o in self.outcomes)
        total += sum(len(block) * block.payload_bytes for block in self.columnar)
        return total


class LogicalSimulation:
    """Facade over cluster + actors for one task's logical tier.

    Usage: ``prepare`` (allocates resources, starts actors, stages data)
    then ``run_round`` once per collaboration round, then ``teardown``.
    All three return process generators to be driven by the simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: K8sCluster,
        cost_model: Optional[LogicalCostModel] = None,
        streams: Optional[RandomStreams] = None,
        batch: bool = True,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.cost_model = cost_model or LogicalCostModel()
        self.streams = streams or RandomStreams(0)
        self.batch = batch
        self.plans: list[GradeExecutionPlan] = []
        self.actors: dict[str, list[SimActor]] = {}
        self.placement_group: Optional[PlacementGroup] = None
        self.rounds: list[RoundResult] = []
        self._pool = TimeoutPool(sim, name="logical-tier")

    def prepare(self, plans: list[GradeExecutionPlan], task_id: str = "task") -> Generator:
        """Allocate the placement group, start actors, stage datasets.

        Raises ``RuntimeError`` if the cluster cannot host the requested
        bundles — the Task Scheduler should have checked capacity first.
        """
        if self.placement_group is not None:
            raise RuntimeError("LogicalSimulation is already prepared")
        self.plans = list(plans)
        bundles: list[ResourceBundle] = []
        for plan in self.plans:
            bundles.extend([plan.bundle] * plan.n_actors)
        if not bundles:
            return
        group = self.cluster.allocate(bundles, PlacementStrategy.PACK)
        if group is None:
            raise RuntimeError(
                f"cluster cannot host {len(bundles)} bundles for task {task_id!r}"
            )
        self.placement_group = group

        yield Timeout(self.cost_model.runner_setup)

        startups = []
        for plan in self.plans:
            actors = [
                SimActor(
                    self.sim,
                    actor_id=f"{task_id}.{plan.grade}.{i}",
                    grade=plan.grade,
                    cost_model=self.cost_model,
                    backend=plan.backend,
                    streams=self.streams,
                )
                for i in range(plan.n_actors)
            ]
            self.actors[plan.grade] = actors
            shard_bytes = self.cost_model.waves(len(plan.assignments), plan.n_actors)
            per_actor_bytes = plan.dataset_bytes() // max(1, plan.n_actors)
            for actor in actors:
                startups.append(
                    self.sim.process(
                        self._start_actor(actor, per_actor_bytes),
                        name=f"{actor.actor_id}.startup",
                    )
                )
            del shard_bytes  # staging cost is uniform per actor
        yield AllOf(startups)

    def _start_actor(self, actor: SimActor, data_bytes: int) -> Generator:
        yield self.sim.process(actor.startup(), name=f"{actor.actor_id}.boot")
        yield self.sim.process(actor.download(data_bytes), name=f"{actor.actor_id}.data-dl")

    def run_round(
        self,
        round_index: int,
        global_weights: Optional[np.ndarray],
        global_bias: float,
        model_bytes: int,
        on_outcome: Optional[Callable[[DeviceRoundOutcome], None]] = None,
    ) -> Generator:
        """Execute one round across every grade's actors; barrier at end.

        ``on_outcome`` fires per device *as results complete*, which is
        what feeds DeviceFlow mid-round; the returned process resolves with
        a :class:`RoundResult` once every device has finished.  Pass
        ``on_outcome=None`` when nothing consumes per-device results
        mid-round: time-only plans then record one columnar block per plan
        instead of constructing per-device outcome objects, which is what
        makes the 100k-device sweeps cheap.
        """
        if self.placement_group is None and self.plans:
            raise RuntimeError("call prepare() before run_round()")
        result = RoundResult(round_index=round_index, started_at=self.sim.now)

        def collect(outcome: DeviceRoundOutcome) -> None:
            result.outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)

        actor_processes = []
        batched_plans: list[GradeExecutionPlan] = []
        for plan in self.plans:
            if self.batch and not plan.numeric:
                batched_plans.append(plan)
                continue
            queues = self._partition(plan.assignments, plan.n_actors)
            for actor, queue in zip(self.actors[plan.grade], queues):
                actor_processes.append(
                    self.sim.process(
                        actor.run_round(
                            queue,
                            round_index,
                            plan.flow,
                            global_weights,
                            global_bias,
                            plan.feature_dim,
                            model_bytes,
                            plan.numeric,
                            collect,
                        ),
                        name=f"{actor.actor_id}.round{round_index}",
                    )
                )
        barriers: list = list(actor_processes)
        if batched_plans:
            remaining = len(batched_plans)
            batched_done = Signal(name=f"round{round_index}.batched-done")

            def plan_done() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    batched_done.fire()

            for plan in batched_plans:
                self._register_batched_plan(
                    plan, round_index, model_bytes, result, collect if on_outcome is not None else None, plan_done
                )
            barriers.append(batched_done)
        if barriers:
            yield AllOf(barriers)
        result.finished_at = self.sim.now
        self.rounds.append(result)
        return result

    def _register_batched_plan(
        self,
        plan: GradeExecutionPlan,
        round_index: int,
        model_bytes: int,
        result: RoundResult,
        collect: Optional[Callable[[DeviceRoundOutcome], None]],
        plan_done: Callable[[], None],
    ) -> None:
        """Register one time-only plan's whole round in the timeout pool.

        Plans are grade-homogeneous (enforced at construction), so every
        actor advances through identical waves: the whole round reduces to
        ONE per-wave completion-time vector (the interleaved cumsum
        ``((now + model_dl) + duration) + transfer`` chain, bit-identical
        to the generator path) broadcast over the actors active in each
        wave.  Emission position maps to assignment index by identity —
        wave ``w``, actor ``a`` holds ``assignments[w * n_actors + a]``
        under the round-robin partition.

        With a ``collect`` callback the sequence drains wave by wave,
        emitting outcomes in the generator path's order; without one the
        entire plan becomes a single pooled deadline at its last completion
        time plus a columnar block — no per-device objects, no per-device
        events, and (in sharded workers) no touching of the assignment
        list's elements at all.
        """
        total = len(plan.assignments)
        if total == 0:
            plan_done()
            return
        actors = self.actors[plan.grade]
        n_actors = len(actors)
        cost = self.cost_model
        duration = cost.device_round_duration(plan.grade, plan.flow.total_work)
        waves = -(-total // n_actors)
        steps = np.empty(2 * waves + 2, dtype=np.float64)
        steps[0] = self.sim.now
        steps[1] = cost.transfer_duration(model_bytes)  # per-round model download
        steps[2::2] = duration
        steps[3::2] = cost.transfer_duration(model_bytes)  # per-device result upload
        wave_times = np.cumsum(steps)[3::2]
        full_waves, remainder = divmod(total, n_actors)
        counts = np.full(waves, n_actors, dtype=np.int64)
        if remainder:
            counts[-1] = remainder
        merged = np.repeat(wave_times, counts)

        def count_completions() -> None:
            for a, actor in enumerate(actors):
                actor.devices_completed += full_waves + (1 if a < remainder else 0)

        if collect is None:
            def fire_all() -> None:
                result.columnar.append(
                    ColumnarOutcomes(
                        plan=plan,
                        round_index=round_index,
                        payload_bytes=model_bytes,
                        finished_at=merged,
                    )
                )
                count_completions()
                plan_done()

            self._pool.add_at(float(merged[-1]), fire_all)
            return

        assignments = plan.assignments

        def fire(lo: int, hi: int, _t: float) -> None:
            for pos in range(lo, hi):
                assignment = assignments[pos]
                actors[pos % n_actors].devices_completed += 1
                collect(
                    DeviceRoundOutcome(
                        device_id=assignment.device_id,
                        grade=assignment.grade,
                        round_index=round_index,
                        n_samples=assignment.n_samples,
                        payload_bytes=model_bytes,
                        update=None,
                        finished_at=float(merged[pos]),
                    )
                )
            if hi == total:
                plan_done()

        self._pool.add_sequence(merged, fire)

    def teardown(self) -> None:
        """Release the placement group back to the cluster."""
        if self.placement_group is not None:
            self.cluster.release(self.placement_group)
            self.placement_group = None
        self.actors.clear()

    @staticmethod
    def _partition(assignments: list[DeviceAssignment], n_actors: int) -> list[list[DeviceAssignment]]:
        """Deterministic round-robin split of devices across actors."""
        queues: list[list[DeviceAssignment]] = [[] for _ in range(n_actors)]
        for index, assignment in enumerate(assignments):
            queues[index % n_actors].append(assignment)
        return queues

    @property
    def total_devices_completed(self) -> int:
        """Devices completed across all rounds so far."""
        return sum(r.n_devices for r in self.rounds)
