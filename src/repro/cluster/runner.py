"""The Ray Runner: master-node orchestration of the logical tier.

"The master node (Ray Runner) is responsible for data downloading,
distribution, and the configuration of runtime parameters for the simulated
devices" (§IV-A).  :class:`LogicalSimulation` wraps the whole tier: it
reserves a placement group on the cluster, starts actors, stages data, and
fans rounds out across the actors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

import numpy as np

from repro.cluster.actor import DeviceAssignment, DeviceRoundOutcome, SimActor
from repro.cluster.cluster import K8sCluster
from repro.cluster.cost import LogicalCostModel
from repro.cluster.placement import PlacementGroup, PlacementStrategy
from repro.cluster.resources import ResourceBundle
from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.operators import OperatorFlow
from repro.simkernel import AllOf, RandomStreams, Simulator, Timeout


@dataclass
class GradeExecutionPlan:
    """Everything the logical tier needs to simulate one device grade.

    Attributes
    ----------
    grade:
        Grade label ("High"/"Low" in the paper's experiments).
    assignments:
        The devices of this grade allocated to the logical tier.
    n_actors:
        Concurrent device slots, i.e. requested unit bundles over units
        per device (``f_i / k_i``).
    bundle:
        Composite resource bundle backing each actor.
    flow:
        The task's operator flow.
    feature_dim:
        Model dimensionality for numeric runs.
    backend:
        Numeric backend of this tier (server-side by default).
    numeric:
        When false, flows advance simulated time but skip the ML math —
        used for the 100k-device scalability sweeps.
    """

    grade: str
    assignments: list[DeviceAssignment]
    n_actors: int
    bundle: ResourceBundle
    flow: OperatorFlow
    feature_dim: int = 4096
    backend: NumericBackend = SERVER_BACKEND
    numeric: bool = True

    def __post_init__(self) -> None:
        if self.n_actors <= 0:
            raise ValueError("n_actors must be positive")

    def dataset_bytes(self) -> int:
        """Total bytes of local data staged for this grade."""
        return sum(
            a.dataset.nbytes() if a.dataset is not None else 64 * a.n_samples
            for a in self.assignments
        )


@dataclass
class RoundResult:
    """Summary of one logical-tier round."""

    round_index: int
    outcomes: list[DeviceRoundOutcome] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated seconds from round start to last device completion."""
        return self.finished_at - self.started_at

    @property
    def n_devices(self) -> int:
        """Devices that completed the round."""
        return len(self.outcomes)


class LogicalSimulation:
    """Facade over cluster + actors for one task's logical tier.

    Usage: ``prepare`` (allocates resources, starts actors, stages data)
    then ``run_round`` once per collaboration round, then ``teardown``.
    All three return process generators to be driven by the simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: K8sCluster,
        cost_model: Optional[LogicalCostModel] = None,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.cost_model = cost_model or LogicalCostModel()
        self.streams = streams or RandomStreams(0)
        self.plans: list[GradeExecutionPlan] = []
        self.actors: dict[str, list[SimActor]] = {}
        self.placement_group: Optional[PlacementGroup] = None
        self.rounds: list[RoundResult] = []

    def prepare(self, plans: list[GradeExecutionPlan], task_id: str = "task") -> Generator:
        """Allocate the placement group, start actors, stage datasets.

        Raises ``RuntimeError`` if the cluster cannot host the requested
        bundles — the Task Scheduler should have checked capacity first.
        """
        if self.placement_group is not None:
            raise RuntimeError("LogicalSimulation is already prepared")
        self.plans = list(plans)
        bundles: list[ResourceBundle] = []
        for plan in self.plans:
            bundles.extend([plan.bundle] * plan.n_actors)
        if not bundles:
            return
        group = self.cluster.allocate(bundles, PlacementStrategy.PACK)
        if group is None:
            raise RuntimeError(
                f"cluster cannot host {len(bundles)} bundles for task {task_id!r}"
            )
        self.placement_group = group

        yield Timeout(self.cost_model.runner_setup)

        startups = []
        for plan in self.plans:
            actors = [
                SimActor(
                    self.sim,
                    actor_id=f"{task_id}.{plan.grade}.{i}",
                    grade=plan.grade,
                    cost_model=self.cost_model,
                    backend=plan.backend,
                    streams=self.streams,
                )
                for i in range(plan.n_actors)
            ]
            self.actors[plan.grade] = actors
            shard_bytes = self.cost_model.waves(len(plan.assignments), plan.n_actors)
            per_actor_bytes = plan.dataset_bytes() // max(1, plan.n_actors)
            for actor in actors:
                startups.append(
                    self.sim.process(
                        self._start_actor(actor, per_actor_bytes),
                        name=f"{actor.actor_id}.startup",
                    )
                )
            del shard_bytes  # staging cost is uniform per actor
        yield AllOf(startups)

    def _start_actor(self, actor: SimActor, data_bytes: int) -> Generator:
        yield self.sim.process(actor.startup(), name=f"{actor.actor_id}.boot")
        yield self.sim.process(actor.download(data_bytes), name=f"{actor.actor_id}.data-dl")

    def run_round(
        self,
        round_index: int,
        global_weights: Optional[np.ndarray],
        global_bias: float,
        model_bytes: int,
        on_outcome: Callable[[DeviceRoundOutcome], None],
    ) -> Generator:
        """Execute one round across every grade's actors; barrier at end.

        ``on_outcome`` fires per device *as results complete*, which is
        what feeds DeviceFlow mid-round; the returned process resolves with
        a :class:`RoundResult` once every device has finished.
        """
        if self.placement_group is None and self.plans:
            raise RuntimeError("call prepare() before run_round()")
        result = RoundResult(round_index=round_index, started_at=self.sim.now)

        def collect(outcome: DeviceRoundOutcome) -> None:
            result.outcomes.append(outcome)
            on_outcome(outcome)

        actor_processes = []
        for plan in self.plans:
            queues = self._partition(plan.assignments, plan.n_actors)
            for actor, queue in zip(self.actors[plan.grade], queues):
                actor_processes.append(
                    self.sim.process(
                        actor.run_round(
                            queue,
                            round_index,
                            plan.flow,
                            global_weights,
                            global_bias,
                            plan.feature_dim,
                            model_bytes,
                            plan.numeric,
                            collect,
                        ),
                        name=f"{actor.actor_id}.round{round_index}",
                    )
                )
        if actor_processes:
            yield AllOf(actor_processes)
        result.finished_at = self.sim.now
        self.rounds.append(result)
        return result

    def teardown(self) -> None:
        """Release the placement group back to the cluster."""
        if self.placement_group is not None:
            self.cluster.release(self.placement_group)
            self.placement_group = None
        self.actors.clear()

    @staticmethod
    def _partition(assignments: list[DeviceAssignment], n_actors: int) -> list[list[DeviceAssignment]]:
        """Deterministic round-robin split of devices across actors."""
        queues: list[list[DeviceAssignment]] = [[] for _ in range(n_actors)]
        for index, assignment in enumerate(assignments):
            queues[index % n_actors].append(assignment)
        return queues

    @property
    def total_devices_completed(self) -> int:
        """Devices completed across all rounds so far."""
        return sum(len(r.outcomes) for r in self.rounds)
