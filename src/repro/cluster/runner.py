"""The Ray Runner: master-node orchestration of the logical tier.

"The master node (Ray Runner) is responsible for data downloading,
distribution, and the configuration of runtime parameters for the simulated
devices" (§IV-A).  :class:`LogicalSimulation` wraps the whole tier: it
reserves a placement group on the cluster, starts actors, stages data, and
fans rounds out across the actors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Generator

import numpy as np

from repro.cloud.sink import OutcomeSink, coerce_sink
from repro.cluster.actor import DeviceAssignment, DeviceRoundOutcome, SimActor
from repro.cluster.cluster import K8sCluster
from repro.cluster.cost import LogicalCostModel
from repro.cluster.placement import PlacementGroup, PlacementStrategy
from repro.cluster.resources import ResourceBundle
from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.fedavg import ModelUpdate
from repro.ml.operators import BlockOperatorContext, OperatorFlow
from repro.simkernel import AllOf, RandomStreams, Signal, Simulator, Timeout, TimeoutPool


@dataclass
class GradeExecutionPlan:
    """Everything the logical tier needs to simulate one device grade.

    Attributes
    ----------
    grade:
        Grade label ("High"/"Low" in the paper's experiments).
    assignments:
        The devices of this grade allocated to the logical tier.
    n_actors:
        Concurrent device slots, i.e. requested unit bundles over units
        per device (``f_i / k_i``).
    bundle:
        Composite resource bundle backing each actor.
    flow:
        The task's operator flow.
    feature_dim:
        Model dimensionality for numeric runs.
    backend:
        Numeric backend of this tier (server-side by default).
    numeric:
        When false, flows advance simulated time but skip the ML math —
        used for the 100k-device scalability sweeps.
    """

    grade: str
    assignments: list[DeviceAssignment]
    n_actors: int
    bundle: ResourceBundle
    flow: OperatorFlow
    feature_dim: int = 4096
    backend: NumericBackend = SERVER_BACKEND
    numeric: bool = True

    def __post_init__(self) -> None:
        if self.n_actors <= 0:
            raise ValueError("n_actors must be positive")
        # One construction-time pass: validate grade homogeneity (the
        # tentpole batched path relies on it to broadcast durations without
        # touching assignment objects) and pre-sum staged bytes so sharded
        # workers never iterate the device list either.
        total_bytes = 0
        for assignment in self.assignments:
            if assignment.grade != self.grade:
                raise ValueError(
                    f"assignment {assignment.device_id!r} has grade "
                    f"{assignment.grade!r} but the plan is for grade {self.grade!r}"
                )
            total_bytes += (
                assignment.dataset.nbytes()
                if assignment.dataset is not None
                else 64 * assignment.n_samples
            )
        self._dataset_bytes = total_bytes

    def dataset_bytes(self) -> int:
        """Total bytes of local data staged for this grade (precomputed)."""
        return self._dataset_bytes


def package_update(
    plan: GradeExecutionPlan,
    round_index: int,
    assignment: DeviceAssignment,
    weights_row: np.ndarray,
    bias: float,
) -> ModelUpdate:
    """Package one device's trained row exactly as the generator path does."""
    return ModelUpdate(
        device_id=assignment.device_id,
        round_index=round_index,
        weights=weights_row.copy(),
        bias=float(bias),
        n_samples=assignment.n_samples,
        metadata={"grade": plan.grade, "backend": plan.backend.name},
    )


@dataclass
class ColumnarOutcomes:
    """Outcomes of one batched plan stored as arrays, not objects.

    The batched fast path records a whole plan's round as one block:
    ``finished_at[pos]`` is the upload-completion time of the device
    ``plan.assignments[pos]`` (emission position equals assignment index
    under the wave-major round-robin layout).  Numeric plans additionally
    carry the stacked model updates (``update_weights[pos]`` /
    ``update_biases[pos]``), which is what per-shard FedAvg partials fold
    without ever constructing :class:`~repro.ml.fedavg.ModelUpdate`
    objects.  Blocks materialize to :class:`DeviceRoundOutcome` objects
    lazily — the 100k scalability sweeps never pay for 100k dataclass
    constructions.
    """

    plan: GradeExecutionPlan
    round_index: int
    payload_bytes: int
    finished_at: np.ndarray
    update_weights: np.ndarray | None = None  # (n_devices, feature_dim)
    update_biases: np.ndarray | None = None  # (n_devices,)

    def __len__(self) -> int:
        return len(self.finished_at)

    def n_samples_array(self) -> np.ndarray:
        """Per-device FedAvg sample counts, in block (assignment) order."""
        return np.array([a.n_samples for a in self.plan.assignments], dtype=np.int64)

    def update_at(self, position: int) -> ModelUpdate | None:
        """Materialize one device's :class:`ModelUpdate` (``None`` if time-only).

        This is what lazy block-storage views call when a single stored
        payload is actually read — the block path never builds the other
        ``n - 1`` objects.
        """
        if self.update_weights is None or self.update_biases is None:
            return None
        return package_update(
            self.plan,
            self.round_index,
            self.plan.assignments[position],
            self.update_weights[position],
            self.update_biases[position],
        )

    def materialize(self) -> list[DeviceRoundOutcome]:
        """Build the outcome objects in block (assignment) order.

        For logical-tier plans this is also chronological (one shared wave
        clock); phone-tier plans stage per-device push bytes, so completion
        times across phones need not be sorted — sort on ``finished_at`` if
        chronology matters.
        """
        return [
            DeviceRoundOutcome(
                device_id=assignment.device_id,
                grade=assignment.grade,
                round_index=self.round_index,
                n_samples=assignment.n_samples,
                payload_bytes=self.payload_bytes,
                update=self.update_at(position),
                finished_at=float(time),
            )
            for position, (assignment, time) in enumerate(
                zip(self.plan.assignments, self.finished_at)
            )
        ]


@dataclass
class RoundResult:
    """Summary of one logical-tier round.

    Outcomes live either in :attr:`outcomes` (eagerly built objects — the
    generator path, or the batched path when a per-device callback was
    requested) or in :attr:`columnar` blocks (the batched path without a
    callback).  :meth:`all_outcomes` unifies the two.
    """

    round_index: int
    outcomes: list[DeviceRoundOutcome] = field(default_factory=list)
    columnar: list[ColumnarOutcomes] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    #: True when the owning tier was aborted mid-round: the recorded
    #: outcomes are the partial prefix collected before the abort.
    aborted: bool = False

    @property
    def duration(self) -> float:
        """Simulated seconds from round start to last device completion."""
        return self.finished_at - self.started_at

    @property
    def n_devices(self) -> int:
        """Devices that completed the round."""
        return len(self.outcomes) + sum(len(block) for block in self.columnar)

    def all_outcomes(self) -> list[DeviceRoundOutcome]:
        """Eager outcomes followed by materialized columnar blocks.

        Eager outcomes are in emission (chronological) order; columnar
        blocks are in assignment order, which is chronological for
        logical-tier plans but not necessarily for phone-tier plans
        (per-device push bytes de-sync the phones).  Across mixed
        eager/columnar plans the groups are concatenated rather than
        merged — sort on ``finished_at`` when chronology matters.
        """
        result = list(self.outcomes)
        for block in self.columnar:
            result.extend(block.materialize())
        return result

    def finished_times(self) -> np.ndarray:
        """All completion times, unsorted, without materializing objects."""
        parts = [np.array([o.finished_at for o in self.outcomes], dtype=np.float64)]
        parts.extend(block.finished_at for block in self.columnar)
        return np.concatenate(parts)

    def payload_bytes_total(self) -> int:
        """Bytes uploaded this round, without materializing columnar blocks.

        Eager outcomes carry their true per-device payload (numeric runs
        report the model update's size); columnar blocks are
        grade-homogeneous, so every device uploaded the block's fixed
        payload (the model-update size for numeric plans).
        """
        total = sum(o.payload_bytes for o in self.outcomes)
        total += sum(len(block) * block.payload_bytes for block in self.columnar)
        return total

    def fedavg_inputs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar ``(weights, biases, n_samples)`` of every numeric update.

        Concatenates eager outcomes' updates with numeric columnar blocks'
        stacked arrays — the input
        :meth:`repro.ml.fedavg.FedAvgPartial.from_arrays` folds without
        materializing update objects.  Returns empty arrays when the round
        produced no updates.
        """
        weight_parts: list[np.ndarray] = []
        bias_parts: list[np.ndarray] = []
        sample_parts: list[np.ndarray] = []
        eager = [o.update for o in self.outcomes if o.update is not None]
        if eager:
            weight_parts.append(np.stack([u.weights for u in eager]))
            bias_parts.append(np.array([u.bias for u in eager], dtype=np.float64))
            sample_parts.append(np.array([u.n_samples for u in eager], dtype=np.int64))
        for block in self.columnar:
            if block.update_weights is not None and block.update_biases is not None:
                weight_parts.append(block.update_weights)
                bias_parts.append(block.update_biases)
                sample_parts.append(block.n_samples_array())
        if not weight_parts:
            empty = np.empty(0, dtype=np.float64)
            return np.empty((0, 0), dtype=np.float64), empty, np.empty(0, dtype=np.int64)
        return (
            np.concatenate(weight_parts),
            np.concatenate(bias_parts),
            np.concatenate(sample_parts),
        )


class LogicalSimulation:
    """Facade over cluster + actors for one task's logical tier.

    Usage: ``prepare`` (allocates resources, starts actors, stages data)
    then ``run_round`` once per collaboration round, then ``teardown``.
    All three return process generators to be driven by the simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: K8sCluster,
        cost_model: LogicalCostModel | None = None,
        streams: RandomStreams | None = None,
        batch: bool = True,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.cost_model = cost_model or LogicalCostModel()
        self.streams = streams or RandomStreams(0)
        self.batch = batch
        self.plans: list[GradeExecutionPlan] = []
        self.actors: dict[str, list[SimActor]] = {}
        self.placement_group: PlacementGroup | None = None
        self.rounds: list[RoundResult] = []
        self._pool = TimeoutPool(sim, name="logical-tier")

    def prepare(self, plans: list[GradeExecutionPlan], task_id: str = "task") -> Generator:
        """Allocate the placement group, start actors, stage datasets.

        Raises ``RuntimeError`` if the cluster cannot host the requested
        bundles — the Task Scheduler should have checked capacity first.
        """
        if self.placement_group is not None:
            raise RuntimeError("LogicalSimulation is already prepared")
        self.plans = list(plans)
        bundles: list[ResourceBundle] = []
        for plan in self.plans:
            bundles.extend([plan.bundle] * plan.n_actors)
        if not bundles:
            return
        group = self.cluster.allocate(bundles, PlacementStrategy.PACK)
        if group is None:
            raise RuntimeError(
                f"cluster cannot host {len(bundles)} bundles for task {task_id!r}"
            )
        self.placement_group = group

        yield Timeout(self.cost_model.runner_setup)

        startups = []
        for plan in self.plans:
            actors = [
                SimActor(
                    self.sim,
                    actor_id=f"{task_id}.{plan.grade}.{i}",
                    grade=plan.grade,
                    cost_model=self.cost_model,
                    backend=plan.backend,
                    streams=self.streams,
                )
                for i in range(plan.n_actors)
            ]
            self.actors[plan.grade] = actors
            per_actor_bytes = plan.dataset_bytes() // max(1, plan.n_actors)
            for actor in actors:
                startups.append(
                    self.sim.process(
                        self._start_actor(actor, per_actor_bytes),
                        name=f"{actor.actor_id}.startup",
                    )
                )
        yield AllOf(startups)

    def _start_actor(self, actor: SimActor, data_bytes: int) -> Generator:
        yield self.sim.process(actor.startup(), name=f"{actor.actor_id}.boot")
        yield self.sim.process(actor.download(data_bytes), name=f"{actor.actor_id}.data-dl")

    def run_round(
        self,
        round_index: int,
        global_weights: np.ndarray | None,
        global_bias: float,
        model_bytes: int,
        sink: OutcomeSink | Callable[[DeviceRoundOutcome], None] | None = None,
    ) -> Generator:
        """Execute one round across every grade's actors; barrier at end.

        ``sink`` receives results through the
        :class:`~repro.cloud.sink.OutcomeSink` protocol.  Delivery
        granularity follows the sink's ``prefers_blocks`` attribute:

        * block-preferring sinks (the default, e.g.
          :class:`~repro.cloud.sink.CloudIngestSink` without DeviceFlow)
          get one ``accept_block`` per batched plan at its last
          completion time; generator-path plans still stream ``accept``
          per device.
        * streaming sinks (``prefers_blocks = False``, e.g.
          :class:`~repro.cloud.sink.CallbackSink`) get ``accept`` per
          device *as results complete* — what feeds DeviceFlow mid-round.
        * ``sink=None`` records columnar blocks with no delivery at all
          (the 100k-device sweeps: no per-device objects or events).

        The returned process resolves with a :class:`RoundResult` once
        every device has finished.  Passing a bare callable is deprecated
        (it is wrapped in a streaming :class:`CallbackSink` with a
        ``DeprecationWarning``).
        """
        if self.placement_group is None and self.plans:
            raise RuntimeError("call prepare() before run_round()")
        sink = coerce_sink(sink)
        stream = sink is not None and not getattr(sink, "prefers_blocks", True)
        result = RoundResult(round_index=round_index, started_at=self.sim.now)

        def collect(outcome: DeviceRoundOutcome) -> None:
            result.outcomes.append(outcome)
            if sink is not None:
                sink.accept(outcome)

        actor_processes = []
        batched_plans: list[GradeExecutionPlan] = []
        for plan in self.plans:
            # Per-plan choice: time-only plans always qualify for the
            # batched wave schedule; numeric plans qualify when every
            # operator in their flow has a vectorized block implementation
            # (custom operators without one fall back to the generator
            # path, so mixed rounds batch exactly the plans they can).
            if self.batch and (not plan.numeric or plan.flow.supports_block):
                batched_plans.append(plan)
                continue
            queues = self._partition(plan.assignments, plan.n_actors)
            for actor, queue in zip(self.actors[plan.grade], queues):
                actor_processes.append(
                    self.sim.process(
                        actor.run_round(
                            queue,
                            round_index,
                            plan.flow,
                            global_weights,
                            global_bias,
                            plan.feature_dim,
                            model_bytes,
                            plan.numeric,
                            collect,
                        ),
                        name=f"{actor.actor_id}.round{round_index}",
                    )
                )
        barriers: list = list(actor_processes)
        if batched_plans:
            remaining = len(batched_plans)
            batched_done = Signal(name=f"round{round_index}.batched-done")

            def plan_done() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    batched_done.fire()

            for plan in batched_plans:
                self._register_batched_plan(
                    plan,
                    round_index,
                    global_weights,
                    global_bias,
                    model_bytes,
                    result,
                    collect if stream else None,
                    None if stream else sink,
                    plan_done,
                )
            barriers.append(batched_done)
        if barriers:
            yield AllOf(barriers)
        result.finished_at = self.sim.now
        self.rounds.append(result)
        return result

    def _execute_numeric_waves(
        self,
        plan: GradeExecutionPlan,
        round_index: int,
        global_weights: np.ndarray | None,
        global_bias: float,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Run a numeric plan's flow as stacked per-wave blocks.

        Wave ``w`` executes devices ``assignments[w * n_actors : (w + 1) *
        n_actors]`` as one :class:`BlockOperatorContext` — a stacked
        ``(wave_size, feature_dim)`` weight matrix refined by the flow's
        vectorized operators.  Flow execution consumes no simulated time
        (exactly like the generator path, where the math runs eagerly
        between two timeouts), and each device draws from its own named
        random stream, so wave grouping cannot perturb results.

        Returns ``(update_weights, update_biases, payload_bytes)`` stacked
        over the whole plan in assignment order; the weight array is empty
        when the flow produces no uploads, and ``payload_bytes`` is then
        the broadcast model size.
        """
        if global_weights is None:
            raise RuntimeError(
                f"device {plan.assignments[0].device_id}: global model was not "
                "staged before the flow ran"
            )
        for assignment in plan.assignments:
            if assignment.dataset is None:
                raise RuntimeError(
                    f"device {assignment.device_id} has no dataset but the run is numeric"
                )
        total = len(plan.assignments)
        n_actors = len(self.actors[plan.grade])
        update_weights = np.empty((total, plan.feature_dim), dtype=np.float64)
        update_biases = np.empty(total, dtype=np.float64)
        has_updates = True
        payload = 0
        for start in range(0, total, n_actors):
            wave = plan.assignments[start : start + n_actors]
            block = BlockOperatorContext(
                device_ids=[a.device_id for a in wave],
                grade=plan.grade,
                datasets=[a.dataset for a in wave],
                feature_dim=plan.feature_dim,
                backend=plan.backend,
                global_weights=global_weights,
                global_bias=global_bias,
                round_index=round_index,
                rngs=[self.streams.get(f"device.{a.device_id}.sgd") for a in wave],
            )
            plan.flow.execute_block(block)
            wave_weights = block.outputs.get("update_weights")
            if wave_weights is None:
                has_updates = False
                continue
            update_weights[start : start + len(wave)] = wave_weights
            update_biases[start : start + len(wave)] = block.outputs["update_biases"]
            if payload == 0:
                payload = ModelUpdate.wire_size(plan.feature_dim)
        if not has_updates:
            return np.empty((0, plan.feature_dim)), np.empty(0), 0
        return update_weights, update_biases, payload

    def _register_batched_plan(
        self,
        plan: GradeExecutionPlan,
        round_index: int,
        global_weights: np.ndarray | None,
        global_bias: float,
        model_bytes: int,
        result: RoundResult,
        collect: Callable[[DeviceRoundOutcome], None] | None,
        block_sink: OutcomeSink | None,
        plan_done: Callable[[], None],
    ) -> None:
        """Register one batched plan's whole round in the timeout pool.

        Plans are grade-homogeneous (enforced at construction), so every
        actor advances through identical waves: the whole round reduces to
        ONE per-wave completion-time vector (the interleaved cumsum
        ``((now + model_dl) + duration) + transfer`` chain, bit-identical
        to the generator path) broadcast over the actors active in each
        wave.  Emission position maps to assignment index by identity —
        wave ``w``, actor ``a`` holds ``assignments[w * n_actors + a]``
        under the round-robin partition.

        Numeric plans run their ML round here as well: client updates are
        evaluated in stacked per-wave blocks
        (:meth:`_execute_numeric_waves`) and the result-upload leg of the
        cumsum uses the model-update payload, exactly as the generator
        path pays ``transfer_duration(update.payload_bytes())`` per device.

        With a ``collect`` callback the sequence drains wave by wave,
        emitting outcomes in the generator path's order; without one the
        entire plan becomes a single pooled deadline at its last completion
        time plus a columnar block — no per-device objects, no per-device
        events, and (in sharded workers) no per-device Python at all beyond
        the vectorized wave math.  A ``block_sink`` receives that block via
        ``accept_block`` the moment it is recorded (the cloud ingests the
        whole round in one fold).
        """
        total = len(plan.assignments)
        if total == 0:
            plan_done()
            return
        actors = self.actors[plan.grade]
        n_actors = len(actors)
        cost = self.cost_model
        duration = cost.device_round_duration(plan.grade, plan.flow.total_work)
        update_weights: np.ndarray | None = None
        update_biases: np.ndarray | None = None
        upload_bytes = model_bytes
        if plan.numeric:
            update_weights, update_biases, payload = self._execute_numeric_waves(
                plan, round_index, global_weights, global_bias
            )
            if len(update_weights):
                upload_bytes = payload
            else:
                update_weights = update_biases = None
        waves = -(-total // n_actors)
        steps = np.empty(2 * waves + 2, dtype=np.float64)
        steps[0] = self.sim.now
        steps[1] = cost.transfer_duration(model_bytes)  # per-round model download
        steps[2::2] = duration
        steps[3::2] = cost.transfer_duration(upload_bytes)  # per-device result upload
        wave_times = np.cumsum(steps)[3::2]
        full_waves, remainder = divmod(total, n_actors)
        counts = np.full(waves, n_actors, dtype=np.int64)
        if remainder:
            counts[-1] = remainder
        merged = np.repeat(wave_times, counts)

        def count_completions() -> None:
            for a, actor in enumerate(actors):
                actor.devices_completed += full_waves + (1 if a < remainder else 0)

        if collect is None:
            def fire_all() -> None:
                block = ColumnarOutcomes(
                    plan=plan,
                    round_index=round_index,
                    payload_bytes=upload_bytes,
                    finished_at=merged,
                    update_weights=update_weights,
                    update_biases=update_biases,
                )
                result.columnar.append(block)
                count_completions()
                if block_sink is not None:
                    block_sink.accept_block(block)
                plan_done()

            self._pool.add_at(float(merged[-1]), fire_all)
            return

        assignments = plan.assignments

        def fire(lo: int, hi: int, _t: float) -> None:
            for pos in range(lo, hi):
                assignment = assignments[pos]
                actors[pos % n_actors].devices_completed += 1
                update = None
                if update_weights is not None and update_biases is not None:
                    update = package_update(
                        plan, round_index, assignment, update_weights[pos], update_biases[pos]
                    )
                collect(
                    DeviceRoundOutcome(
                        device_id=assignment.device_id,
                        grade=assignment.grade,
                        round_index=round_index,
                        n_samples=assignment.n_samples,
                        payload_bytes=upload_bytes,
                        update=update,
                        finished_at=float(merged[pos]),
                    )
                )
            if hi == total:
                plan_done()

        self._pool.add_sequence(merged, fire)

    def teardown(self) -> None:
        """Release the placement group back to the cluster."""
        if self.placement_group is not None:
            self.cluster.release(self.placement_group)
            self.placement_group = None
        self.actors.clear()

    @staticmethod
    def _partition(assignments: list[DeviceAssignment], n_actors: int) -> list[list[DeviceAssignment]]:
        """Deterministic round-robin split of devices across actors."""
        queues: list[list[DeviceAssignment]] = [[] for _ in range(n_actors)]
        for index, assignment in enumerate(assignments):
            queues[index % n_actors].append(assignment)
        return queues

    @property
    def total_devices_completed(self) -> int:
        """Devices completed across all rounds so far."""
        return sum(r.n_devices for r in self.rounds)
