"""Cost model of the logical simulation tier.

The hybrid allocation optimisation (§IV-B) is parameterised by empirically
measured runtime constants: "the average duration for the completion of the
scheduled task in Logical Simulation with c grades of devices, denoted as
{alpha_1..alpha_c}".  This module owns those constants plus the secondary
overheads (actor startup, per-actor data/model downloads) that explain why
SimDC is slower than in-memory simulators below ~1000 devices (Fig. 8).

Durations are seconds of *simulated* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Defaults calibrated against the paper's figures: logical per-device
#: round durations (alpha) sit above the physical tier's in-round training
#: cost (beta) because server-side PyMNN operators are slower than the
#: compiled MNN kernels in business SDKs (§VI-B3), while physical devices
#: pay a large one-off APK/framework startup (lambda).
DEFAULT_ALPHA = {"High": 12.0, "Low": 20.0}


@dataclass
class LogicalCostModel:
    """Simulated-time costs of the logical tier.

    Attributes
    ----------
    alpha:
        Per-grade average duration (seconds) of one device's operator-flow
        execution on an actor.
    actor_startup:
        Actor creation + runtime-parameter configuration time.
    runner_setup:
        One-off master (Ray Runner) job setup time.
    download_bandwidth_bps:
        Shared-storage download bandwidth seen by each actor.
    download_latency:
        Per-transfer latency floor.
    flow_reference_work:
        Operator-flow work units that ``alpha`` was calibrated against;
        flows with more/less declared work scale proportionally.
    """

    alpha: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_ALPHA))
    actor_startup: float = 1.5
    runner_setup: float = 8.0
    download_bandwidth_bps: float = 200e6 / 8  # 200 Mbit/s shared storage link
    download_latency: float = 0.05
    flow_reference_work: float = 10.4  # standard_fl_flow().total_work

    def __post_init__(self) -> None:
        if not self.alpha:
            raise ValueError("alpha must define at least one grade")
        for grade, value in self.alpha.items():
            if value <= 0:
                raise ValueError(f"alpha[{grade!r}] must be positive")
        if self.download_bandwidth_bps <= 0:
            raise ValueError("download_bandwidth_bps must be positive")

    def device_round_duration(self, grade: str, flow_work: float | None = None) -> float:
        """Seconds one actor spends simulating one device's round."""
        if grade not in self.alpha:
            raise KeyError(f"no alpha calibrated for grade {grade!r}; known: {sorted(self.alpha)}")
        base = self.alpha[grade]
        if flow_work is None:
            return base
        if flow_work <= 0:
            raise ValueError("flow_work must be positive")
        return base * (flow_work / self.flow_reference_work)

    def transfer_duration(self, n_bytes: int) -> float:
        """Storage transfer time for a payload of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        return self.download_latency + n_bytes / self.download_bandwidth_bps

    def waves(self, n_devices: int, n_actors: int) -> int:
        """Sequential waves needed: ``ceil(n_devices / n_actors)``.

        This is the ``ceil(k_i x_i / f_i)`` term of the allocation model —
        with ``n_actors = f_i / k_i`` concurrent device slots.
        """
        if n_actors <= 0:
            raise ValueError("n_actors must be positive")
        if n_devices < 0:
            raise ValueError("n_devices must be >= 0")
        return -(-n_devices // n_actors)

    def tier_duration(self, grade: str, n_devices: int, n_actors: int) -> float:
        """Closed-form tier makespan: ``waves * alpha`` (no overheads).

        The allocation optimizer uses this closed form; the event-driven
        execution adds startup and transfer overheads on top, which the
        optimizer's lambda/startup terms absorb for the physical tier and
        which stay second-order for the logical tier.
        """
        return self.waves(n_devices, n_actors) * self.device_round_duration(grade)
