"""Logical Simulation substrate: a Ray-on-Kubernetes-like cluster model.

The paper's logical tier deploys Ray clusters on elastic Kubernetes nodes;
a master "Ray Runner" downloads data, configures runtime parameters, and
launches placement groups of actors on worker nodes, "with each actor
sequentially simulating multiple devices" (§IV-A).

This package rebuilds that substrate over the discrete-event kernel: nodes
with CPU/memory/GPU capacity, placement groups packed or spread across
nodes, actors that execute operator flows for a queue of simulated devices
while advancing simulated time according to a calibrated cost model, and a
job-submission lifecycle.
"""

from repro.cluster.actor import DeviceAssignment, DeviceRoundOutcome, SimActor
from repro.cluster.cluster import K8sCluster
from repro.cluster.cost import LogicalCostModel
from repro.cluster.job import JobState, RayJob
from repro.cluster.placement import PlacementGroup, PlacementStrategy
from repro.cluster.resources import NodeSpec, ResourceBundle
from repro.cluster.runner import (
    ColumnarOutcomes,
    GradeExecutionPlan,
    LogicalSimulation,
    RoundResult,
)
from repro.cluster.sharding import (
    MergedRound,
    ShardedLogicalSimulation,
    ShardedRunResult,
    partition_plans,
)

__all__ = [
    "ColumnarOutcomes",
    "DeviceAssignment",
    "DeviceRoundOutcome",
    "GradeExecutionPlan",
    "JobState",
    "K8sCluster",
    "LogicalCostModel",
    "LogicalSimulation",
    "MergedRound",
    "NodeSpec",
    "PlacementGroup",
    "PlacementStrategy",
    "RayJob",
    "ResourceBundle",
    "RoundResult",
    "ShardedLogicalSimulation",
    "ShardedRunResult",
    "SimActor",
    "partition_plans",
]
