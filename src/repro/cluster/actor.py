"""Actors: the concurrent device slots of the logical simulation.

"This master node utilizes Ray's distributed computing framework to
directly launch placement groups of actors on worker nodes, with each actor
sequentially simulating multiple devices" (§IV-A).  An actor therefore owns
one composite resource bundle and works through its queue of simulated
devices one at a time; a grade with ``f`` requested unit bundles and ``k``
units per device runs ``f/k`` actors concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Generator
from typing import Any

import numpy as np

from repro.cluster.cost import LogicalCostModel
from repro.data.avazu import DeviceDataset
from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.operators import OperatorContext, OperatorFlow
from repro.simkernel import RandomStreams, Simulator, Timeout


@dataclass
class DeviceAssignment:
    """One simulated device queued on an actor.

    ``dataset`` may be ``None`` for *time-only* runs (the large-scale
    scalability experiments), in which case ``n_samples`` still feeds the
    dummy update so aggregation triggers behave realistically.
    """

    device_id: str
    grade: str
    n_samples: int
    dataset: DeviceDataset | None = None

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError("n_samples must be positive")


@dataclass
class DeviceRoundOutcome:
    """What one device produced in one round."""

    device_id: str
    grade: str
    round_index: int
    n_samples: int
    payload_bytes: int
    update: Any | None  # ModelUpdate when the run is numeric
    finished_at: float


class SimActor:
    """A sequential device-execution slot on the logical tier.

    Parameters
    ----------
    sim:
        Shared simulator.
    actor_id:
        Unique id (also names the actor's random stream).
    grade:
        Device grade this actor simulates.
    cost_model:
        Simulated-time cost constants.
    backend:
        Numeric backend used when flows execute numerically.
    streams:
        Deterministic random streams (for local-SGD shuffling).
    """

    def __init__(
        self,
        sim: Simulator,
        actor_id: str,
        grade: str,
        cost_model: LogicalCostModel,
        backend: NumericBackend = SERVER_BACKEND,
        streams: RandomStreams | None = None,
    ) -> None:
        self.sim = sim
        self.actor_id = actor_id
        self.grade = grade
        self.cost_model = cost_model
        self.backend = backend
        self.streams = streams or RandomStreams(0)
        self.devices_completed = 0

    def startup(self) -> Generator:
        """Actor creation + runtime parameter configuration."""
        yield Timeout(self.cost_model.actor_startup)

    def download(self, n_bytes: int) -> Generator:
        """Pull data or model bytes from shared storage."""
        yield Timeout(self.cost_model.transfer_duration(n_bytes))

    def run_round(
        self,
        assignments: list[DeviceAssignment],
        round_index: int,
        flow: OperatorFlow,
        global_weights: np.ndarray | None,
        global_bias: float,
        feature_dim: int,
        model_bytes: int,
        numeric: bool,
        on_outcome: Callable[[DeviceRoundOutcome], None],
    ) -> Generator:
        """Process this actor's device queue for one round.

        Per §VI-B4, "each actor in the logical simulation must download the
        corresponding data and model for its simulated devices" — the model
        download is paid once per actor per round here, then each queued
        device advances the clock by its grade's alpha and uploads its
        result.
        """
        if assignments:
            yield self.sim.process(self.download(model_bytes), name=f"{self.actor_id}.model-dl")
        for assignment in assignments:
            duration = self.cost_model.device_round_duration(assignment.grade, flow.total_work)
            yield Timeout(duration)
            update = None
            payload = model_bytes
            if numeric:
                update = self._execute_flow(
                    assignment, round_index, flow, global_weights, global_bias, feature_dim
                )
                if update is not None:
                    payload = update.payload_bytes()
            # Upload the result to shared storage before messaging the cloud.
            yield Timeout(self.cost_model.transfer_duration(payload))
            self.devices_completed += 1
            on_outcome(
                DeviceRoundOutcome(
                    device_id=assignment.device_id,
                    grade=assignment.grade,
                    round_index=round_index,
                    n_samples=assignment.n_samples,
                    payload_bytes=payload,
                    update=update,
                    finished_at=self.sim.now,
                )
            )

    def _execute_flow(
        self,
        assignment: DeviceAssignment,
        round_index: int,
        flow: OperatorFlow,
        global_weights: np.ndarray | None,
        global_bias: float,
        feature_dim: int,
    ):
        if assignment.dataset is None:
            raise RuntimeError(
                f"device {assignment.device_id} has no dataset but the run is numeric"
            )
        # The shuffling stream is keyed by *device*, never by actor or
        # shard: which actor slot (or worker process) happens to simulate a
        # device is an execution detail, and seeded results must not change
        # when the batched or sharded fast paths re-partition the plan.
        context = OperatorContext(
            device_id=assignment.device_id,
            grade=assignment.grade,
            dataset=assignment.dataset,
            feature_dim=feature_dim,
            backend=self.backend,
            global_weights=global_weights,
            global_bias=global_bias,
            round_index=round_index,
            rng=self.streams.get(f"device.{assignment.device_id}.sgd"),
        )
        flow.execute(context)
        return context.outputs.get("update")

    def __repr__(self) -> str:
        return f"SimActor({self.actor_id!r}, grade={self.grade!r})"
