"""The elastic Kubernetes-like cluster hosting the logical simulation."""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.cluster.placement import BundlePlacement, PlacementGroup, PlacementStrategy
from repro.cluster.resources import NodeSpec, ResourceBundle, WorkerNode


class K8sCluster:
    """A pool of worker nodes with elastic scaling and gang allocation.

    The paper "employs Kubernetes (k8s) nodes for elastic scaling to
    accommodate simulation demands of varying scales" (§IV-A).  The default
    experimental configuration is 200 CPU cores and 300 GB of memory.

    Parameters
    ----------
    nodes:
        Initial node specs.  :meth:`default_experiment_cluster` builds the
        paper's 200-core/300-GB configuration.
    """

    def __init__(self, nodes: Sequence[NodeSpec] = ()) -> None:
        self._node_counter = itertools.count()
        self.nodes: dict[str, WorkerNode] = {}
        self._group_nodes: dict[str, list[tuple[WorkerNode, ResourceBundle]]] = {}
        for spec in nodes:
            self.add_node(spec)

    @classmethod
    def default_experiment_cluster(cls) -> K8sCluster:
        """The paper's Ray cluster: 200 CPU cores, 300 GB memory.

        Modelled as 10 nodes of 20 cores / 30 GB each, a typical k8s
        worker shape.
        """
        return cls([NodeSpec(cpus=20, memory_gb=30)] * 10)

    # ------------------------------------------------------------------
    # elastic scaling
    # ------------------------------------------------------------------
    def add_node(self, spec: NodeSpec) -> str:
        """Scale up by one node; returns its id."""
        node_id = f"node-{next(self._node_counter):04d}"
        self.nodes[node_id] = WorkerNode(node_id, spec)
        return node_id

    def remove_node(self, node_id: str) -> None:
        """Scale down; only idle nodes can be drained."""
        node = self.nodes.get(node_id)
        if node is None:
            raise KeyError(f"unknown node {node_id!r}")
        if not node.idle:
            raise RuntimeError(f"node {node_id} still hosts allocations")
        del self.nodes[node_id]

    # ------------------------------------------------------------------
    # capacity queries
    # ------------------------------------------------------------------
    @property
    def total_cpus(self) -> float:
        """Provisioned CPU cores across all nodes."""
        return sum(node.spec.cpus for node in self.nodes.values())

    @property
    def free_cpus(self) -> float:
        """Currently unallocated CPU cores."""
        return sum(node.free_cpus for node in self.nodes.values())

    @property
    def total_memory_gb(self) -> float:
        """Provisioned memory across all nodes."""
        return sum(node.spec.memory_gb for node in self.nodes.values())

    @property
    def free_memory_gb(self) -> float:
        """Currently unallocated memory."""
        return sum(node.free_memory_gb for node in self.nodes.values())

    def can_allocate(self, bundles: Sequence[ResourceBundle]) -> bool:
        """Feasibility check without committing (uses a trial placement)."""
        trial = self._place(bundles, PlacementStrategy.PACK, commit=False)
        return trial is not None

    # ------------------------------------------------------------------
    # gang allocation
    # ------------------------------------------------------------------
    def allocate(
        self,
        bundles: Sequence[ResourceBundle],
        strategy: PlacementStrategy = PlacementStrategy.PACK,
    ) -> PlacementGroup | None:
        """Atomically place every bundle, or place nothing and return None."""
        placements = self._place(bundles, strategy, commit=True)
        if placements is None:
            return None
        group = PlacementGroup(
            [BundlePlacement(node.node_id, bundle) for node, bundle in placements], strategy
        )
        self._group_nodes[group.group_id] = placements
        return group

    def release(self, group: PlacementGroup) -> None:
        """Free every bundle of a previously allocated group."""
        if group.released:
            raise RuntimeError(f"{group} was already released")
        placements = self._group_nodes.pop(group.group_id, None)
        if placements is None:
            raise KeyError(f"{group} is not allocated on this cluster")
        for node, bundle in placements:
            node.release(bundle)
        group.released = True

    # ------------------------------------------------------------------
    def _place(
        self,
        bundles: Sequence[ResourceBundle],
        strategy: PlacementStrategy,
        commit: bool,
    ) -> list[tuple[WorkerNode, ResourceBundle]] | None:
        """Find (and optionally commit) a node for every bundle.

        Placement works against shadow free-capacity counters so a failed
        gang attempt leaves the cluster untouched.
        """
        if not bundles:
            raise ValueError("cannot allocate an empty bundle list")
        shadow = {
            node_id: [node.free_cpus, node.free_memory_gb, node.free_gpus]
            for node_id, node in self.nodes.items()
        }

        def shadow_fits(node_id: str, bundle: ResourceBundle) -> bool:
            free = shadow[node_id]
            return (
                bundle.cpus <= free[0] + 1e-9
                and bundle.memory_gb <= free[1] + 1e-9
                and bundle.gpus <= free[2] + 1e-9
            )

        def shadow_take(node_id: str, bundle: ResourceBundle) -> None:
            free = shadow[node_id]
            free[0] -= bundle.cpus
            free[1] -= bundle.memory_gb
            free[2] -= bundle.gpus

        chosen: list[tuple[WorkerNode, ResourceBundle]] = []
        node_ids = sorted(self.nodes)
        for bundle in bundles:
            # SPREAD: most free CPUs first (stable by id for determinism).
            candidates = (
                sorted(node_ids, key=lambda n: (-shadow[n][0], n))
                if strategy is PlacementStrategy.SPREAD
                else node_ids
            )
            target = next((n for n in candidates if shadow_fits(n, bundle)), None)
            if target is None:
                return None
            shadow_take(target, bundle)
            chosen.append((self.nodes[target], bundle))

        if commit:
            for node, bundle in chosen:
                node.allocate(bundle)
        return chosen
