"""Placement groups — gang allocation of bundles across nodes."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.cluster.resources import ResourceBundle

_group_counter = itertools.count()


class PlacementStrategy(enum.Enum):
    """How a group's bundles are spread over nodes.

    ``PACK`` fills nodes in order, minimising fragmentation (Ray's default
    for data-local actors); ``SPREAD`` round-robins across the nodes with
    the most free CPU to maximise failure isolation.
    """

    PACK = "pack"
    SPREAD = "spread"


@dataclass(frozen=True)
class BundlePlacement:
    """One bundle pinned to one node."""

    node_id: str
    bundle: ResourceBundle


class PlacementGroup:
    """An atomically-allocated set of bundles (all-or-nothing).

    Mirrors Ray placement groups: a task that needs N actor slots reserves
    them together so partially-scheduled tasks never deadlock the pool.
    """

    def __init__(self, placements: list[BundlePlacement], strategy: PlacementStrategy) -> None:
        if not placements:
            raise ValueError("a placement group needs at least one bundle")
        self.group_id = f"pg-{next(_group_counter):05d}"
        self.placements = list(placements)
        self.strategy = strategy
        self.released = False

    def __len__(self) -> int:
        return len(self.placements)

    @property
    def node_ids(self) -> list[str]:
        """Node of each bundle, aligned with :attr:`placements`."""
        return [placement.node_id for placement in self.placements]

    @property
    def total_cpus(self) -> float:
        """Sum of CPUs across all bundles."""
        return sum(p.bundle.cpus for p in self.placements)

    @property
    def total_memory_gb(self) -> float:
        """Sum of memory across all bundles."""
        return sum(p.bundle.memory_gb for p in self.placements)

    def __repr__(self) -> str:
        return (
            f"PlacementGroup({self.group_id}, {len(self.placements)} bundles, "
            f"{self.strategy.value})"
        )
