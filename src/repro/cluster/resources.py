"""Resource bundles and node specifications for the logical cluster."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceBundle:
    """An indivisible resource grant, the paper's "unit resource bundle".

    §IV-B's example unit is ``{CPU: 1 core, memory: 1 GB}``; grades are
    simulated by composite bundles (e.g. the experiments give High devices
    4 CPUs + 12 GB and Low devices 1 CPU + 6 GB).
    """

    cpus: float = 1.0
    memory_gb: float = 1.0
    gpus: float = 0.0

    def __post_init__(self) -> None:
        if self.cpus < 0 or self.memory_gb < 0 or self.gpus < 0:
            raise ValueError(f"bundle dimensions must be >= 0: {self}")
        if self.cpus == 0 and self.memory_gb == 0 and self.gpus == 0:
            raise ValueError("bundle must request at least one resource")

    def units_relative_to(self, unit: ResourceBundle) -> int:
        """How many ``unit`` bundles this bundle consumes (the paper's k).

        The count is the max over resource dimensions, rounded up: a
        4-CPU/12-GB grade against a 1-CPU/1-GB unit costs 12 units.
        """
        ratios = []
        for mine, theirs in (
            (self.cpus, unit.cpus),
            (self.memory_gb, unit.memory_gb),
            (self.gpus, unit.gpus),
        ):
            if mine > 0:
                if theirs <= 0:
                    raise ValueError(f"unit bundle lacks a dimension required by {self}")
                ratios.append(mine / theirs)
        import math

        return max(1, math.ceil(max(ratios)))

    def scaled(self, factor: float) -> ResourceBundle:
        """A bundle ``factor`` times this one's size."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ResourceBundle(self.cpus * factor, self.memory_gb * factor, self.gpus * factor)


@dataclass(frozen=True)
class NodeSpec:
    """Capacity of one Kubernetes worker node."""

    cpus: float
    memory_gb: float
    gpus: float = 0.0

    def __post_init__(self) -> None:
        if self.cpus <= 0 or self.memory_gb <= 0 or self.gpus < 0:
            raise ValueError(f"invalid node spec: {self}")

    def fits(self, bundle: ResourceBundle) -> bool:
        """Whether an empty node of this spec could host ``bundle``."""
        return (
            bundle.cpus <= self.cpus
            and bundle.memory_gb <= self.memory_gb
            and bundle.gpus <= self.gpus
        )


class WorkerNode:
    """A node with mutable free capacity.

    Allocation is first-fit at the granularity of whole bundles; the
    cluster owns placement policy, the node only tracks accounting.
    """

    def __init__(self, node_id: str, spec: NodeSpec) -> None:
        self.node_id = node_id
        self.spec = spec
        self.free_cpus = spec.cpus
        self.free_memory_gb = spec.memory_gb
        self.free_gpus = spec.gpus

    def can_fit(self, bundle: ResourceBundle) -> bool:
        """Whether current free capacity covers ``bundle``."""
        return (
            bundle.cpus <= self.free_cpus + 1e-9
            and bundle.memory_gb <= self.free_memory_gb + 1e-9
            and bundle.gpus <= self.free_gpus + 1e-9
        )

    def allocate(self, bundle: ResourceBundle) -> None:
        """Reserve ``bundle``; raises if it does not fit."""
        if not self.can_fit(bundle):
            raise RuntimeError(f"node {self.node_id} cannot fit {bundle}")
        self.free_cpus -= bundle.cpus
        self.free_memory_gb -= bundle.memory_gb
        self.free_gpus -= bundle.gpus

    def release(self, bundle: ResourceBundle) -> None:
        """Return a previously allocated bundle."""
        self.free_cpus += bundle.cpus
        self.free_memory_gb += bundle.memory_gb
        self.free_gpus += bundle.gpus
        if (
            self.free_cpus > self.spec.cpus + 1e-6
            or self.free_memory_gb > self.spec.memory_gb + 1e-6
            or self.free_gpus > self.spec.gpus + 1e-6
        ):
            raise RuntimeError(f"node {self.node_id} released more than allocated")

    @property
    def idle(self) -> bool:
        """True when nothing is allocated on the node."""
        return (
            abs(self.free_cpus - self.spec.cpus) < 1e-9
            and abs(self.free_memory_gb - self.spec.memory_gb) < 1e-9
            and abs(self.free_gpus - self.spec.gpus) < 1e-9
        )

    def __repr__(self) -> str:
        return (
            f"WorkerNode({self.node_id!r}, free={self.free_cpus:g}c/"
            f"{self.free_memory_gb:g}GB/{self.free_gpus:g}g)"
        )
