"""Scenario CLI: ``python -m repro.scenarios {list,show,run}``.

``show`` and ``run`` accept either a library scenario name or a path to
a YAML/JSON scenario file (anything ``ScenarioSpec.from_dict`` round-
trips — ``show <name> > spec.json`` writes a valid starting point).

Examples::

    python -m repro.scenarios list
    python -m repro.scenarios show flash_crowd --scale 500
    python -m repro.scenarios run diurnal_multitenant --scale 2000
    python -m repro.scenarios run flaky_fleet --seed 3 --report-json report.json
    python -m repro.scenarios run autoscale_flash_crowd --sla
    python -m repro.scenarios run lossy_uplink --trace-out trace.json --profile
    python -m repro.scenarios run path/to/spec.yaml --sla

With ``--sla`` the exit code becomes part of the contract: 0 when every
service-level objective in the scenario holds against the final report,
2 when any is violated (CI gates on it).  ``--trace-out`` writes a
Chrome/Perfetto-loadable span timeline of the run (``--trace-jsonl`` the
archival one-span-per-line dump), and ``--profile`` prints a ranked
wall-clock hotspot table over the simulator's subsystems.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.scenarios.engine import ScenarioRunner
from repro.scenarios.library import SCENARIOS, build_scenario
from repro.scenarios.spec import ScenarioSpec

_FILE_SUFFIXES = (".json", ".yaml", ".yml")


def _load_spec_file(path: Path) -> ScenarioSpec:
    """Parse a YAML/JSON scenario file through ``ScenarioSpec.from_dict``."""
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise SystemExit(
                f"cannot read {path}: PyYAML is not installed "
                f"(use a .json spec instead)"
            ) from exc
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, dict):
        raise SystemExit(f"{path} must contain one scenario mapping, got {type(data).__name__}")
    return ScenarioSpec.from_dict(data)


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Resolve the ``name`` argument: scenario file or library entry.

    File specs carry their own scale (``--scale`` is rejected) and seed
    (``--seed`` overrides it when given).
    """
    name = args.name
    path = Path(name)
    if name.lower().endswith(_FILE_SUFFIXES) or path.exists():
        if not path.exists():
            raise SystemExit(f"scenario file not found: {path}")
        if args.scale is not None:
            raise SystemExit(
                "--scale applies to library scenarios only; edit the file's "
                "tenant device counts instead"
            )
        spec = _load_spec_file(path)
        if args.seed is not None:
            spec.seed = args.seed
        return spec
    if name not in SCENARIOS:
        raise SystemExit(
            f"unknown scenario {name!r} (and no such file); "
            f"known: {', '.join(sorted(SCENARIOS))}"
        )
    return build_scenario(name, scale=args.scale, seed=args.seed or 0)


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'name':<22} {'tenants':>7} {'devices':>8}  description")
    for name in sorted(SCENARIOS):
        spec = build_scenario(name)
        print(
            f"{name:<22} {len(spec.tenants):>7} {spec.total_devices:>8}  {spec.description}"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.observability.tracing import Tracer

    spec = _load_spec(args)
    if args.legacy:
        spec.batch = False
    tracing = args.trace_out is not None or args.trace_jsonl is not None
    tracer = Tracer() if tracing else None
    runner = ScenarioRunner(spec, tracer=tracer)
    profiler = None
    if args.profile:
        from repro.observability.profiler import RunProfiler

        profiler = RunProfiler().attach()
    wall_start = time.perf_counter()
    try:
        report = runner.run()
    finally:
        wall = time.perf_counter() - wall_start
        if profiler is not None:
            profiler.detach()
    for line in report.summary_lines():
        print(line)
    print(f"  wall time: {wall:.2f}s")
    if args.report_json is not None:
        args.report_json.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"  report written to {args.report_json}")
    if tracing:
        from repro.observability.export import write_chrome_trace, write_spans_jsonl

        trace = runner.trace()
        print(f"  trace: {len(trace)} spans")
        if args.trace_out is not None:
            write_chrome_trace(trace, args.trace_out)
            print(f"  Perfetto trace written to {args.trace_out}")
        if args.trace_jsonl is not None:
            write_spans_jsonl(trace, args.trace_jsonl)
            print(f"  span dump written to {args.trace_jsonl}")
    if profiler is not None:
        print("profiler hotspots (wall-clock, self time ranked):")
        print(profiler.table(wall_s=wall))
    if args.sla and not report.sla_ok:
        violated = report.sla_violations()
        print(
            f"SLA check failed: {len(violated)} objective(s) violated", file=sys.stderr
        )
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in scenario library").set_defaults(
        fn=_cmd_list
    )

    name_help = "library scenario name, or path to a YAML/JSON scenario file"
    show = sub.add_parser("show", help="print a scenario spec as JSON")
    show.add_argument("name", help=name_help)
    show.add_argument("--scale", type=int, default=None, help="approximate total devices")
    show.add_argument("--seed", type=int, default=None)
    show.set_defaults(fn=_cmd_show)

    run = sub.add_parser("run", help="replay a scenario and print its report")
    run.add_argument("name", help=name_help)
    run.add_argument("--scale", type=int, default=None, help="approximate total devices")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--legacy", action="store_true", help="per-device generator path (slow, bit-identical)"
    )
    run.add_argument(
        "--report-json",
        "--json",  # legacy alias
        dest="report_json",
        type=Path,
        default=None,
        help="also write the full ScenarioReport as JSON",
    )
    run.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write a Chrome/Perfetto trace-event JSON of the run",
    )
    run.add_argument(
        "--trace-jsonl",
        type=Path,
        default=None,
        help="write the span tree as JSONL (one span per line)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print a ranked wall-clock hotspot table per simulator subsystem",
    )
    run.add_argument(
        "--sla",
        action="store_true",
        help="exit with code 2 when any scenario SLA is violated",
    )
    run.set_defaults(fn=_cmd_run)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
