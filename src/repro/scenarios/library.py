"""Built-in scenario library.

Six named scenarios covering the workload shapes the paper motivates:
a timezone-mixed production day (`diurnal_multitenant`), a sudden burst
against a steady background (`flash_crowd`), an unreliable fleet with
churn and bad networks (`flaky_fleet`), a long repetitive cadence
with a straggler window (`steady_state_soak`), the burst replayed on
an undersized cluster with live alarms driving the autoscaler
(`autoscale_flash_crowd`), and a lossy device→cloud uplink with
retry/backoff, duplication, an outage window, and deadline-closed
rounds (`lossy_uplink`).

Every builder takes ``scale`` — the approximate total number of simulated
devices summed over every task submission — and a master ``seed``; device
counts and resource requests derive proportionally, so the same scenario
runs as a smoke test at ``scale=200`` and as a stress run at
``scale=20000``.  ``python -m repro.scenarios run <name> --scale N``
invokes these through :data:`SCENARIOS`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.observability import AlarmRule, AutoscaleSpec, SLASpec
from repro.scenarios.spec import (
    ArrivalSpec,
    DispatchSpec,
    FaultSpec,
    GradeSpec,
    PopulationSpec,
    ScenarioSpec,
    TenantSpec,
    TransportSpec,
)


def _unit(scale: int, reference: int) -> int:
    """Scale factor: devices-per-unit against the builder's reference sum."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return max(1, round(scale / reference))


def diurnal_multitenant(scale: int = 2000, seed: int = 0) -> ScenarioSpec:
    """A production day: four tenants across timezones share the platform.

    The Fig. 3 picture as a workload: a large Asia-evening retraining
    tenant spreading uploads over the population's diurnal curve, a
    European experimentation stream with Poisson arrivals, a two-shot
    Americas nightly job, and a small benchmarking tenant keeping physical
    phones measured throughout.
    """
    u = _unit(scale, 100)
    return ScenarioSpec(
        name="diurnal_multitenant",
        description="timezone-mixed production day: 4 tenants, diurnal uploads, contention",
        seed=seed,
        horizon_s=3600.0,
        population=PopulationSpec(),  # the paper's Asia-heavy default mix
        tenants=[
            TenantSpec(
                name="asia-prod",
                priority=8,
                rounds=2,
                grades=[
                    GradeSpec(grade="High", n_devices=8 * u, bundles=min(60, max(8, 2 * u))),
                    GradeSpec(
                        grade="Low", n_devices=4 * u, bundles=min(40, max(6, u)), n_phones=1
                    ),
                ],
                arrival=ArrivalSpec(kind="periodic", count=3, period_s=900.0, offset_s=60.0),
                dispatch=DispatchSpec(kind="interval", interval_s=300.0),
            ),
            TenantSpec(
                name="eu-experiment",
                priority=3,
                rounds=2,
                numeric=True,
                feature_dim=64,
                records_per_device=8,
                grades=[GradeSpec(grade="High", n_devices=6 * u, bundles=min(48, max(6, 2 * u)))],
                arrival=ArrivalSpec(kind="poisson", count=4, rate_per_hour=8.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[20, 50]),
            ),
            TenantSpec(
                name="amer-nightly",
                priority=5,
                grades=[
                    GradeSpec(grade="Low", n_devices=10 * u, bundles=min(50, max(8, 2 * u))),
                    GradeSpec(grade="High", n_devices=4 * u, bundles=min(20, max(4, u))),
                ],
                arrival=ArrivalSpec(kind="trace", times=[120.0, 1800.0]),
                dispatch=DispatchSpec(kind="realtime", thresholds=[50]),
            ),
            TenantSpec(
                name="mobile-bench",
                priority=1,
                grades=[
                    GradeSpec(grade="High", n_devices=4 * u, bundles=min(20, max(4, u)), n_phones=1, n_benchmark=1)
                ],
                arrival=ArrivalSpec(kind="periodic", count=3, period_s=1100.0, offset_s=300.0),
            ),
        ],
    )


def flash_crowd(scale: int = 2000, seed: int = 0) -> ScenarioSpec:
    """A burst of small tasks slams a steadily loaded platform.

    Ten experiment tasks arrive within twenty seconds while a periodic
    production tenant holds its cadence, and the burst coincides with a
    network-tier degradation window (capacity down to 20%) — the
    fluctuating-access-load failure mode §I warns about.
    """
    u = _unit(scale, 88)
    return ScenarioSpec(
        name="flash_crowd",
        description="10-task burst + capacity degradation over a steady background",
        seed=seed,
        horizon_s=1800.0,
        population=PopulationSpec(),
        tenants=[
            TenantSpec(
                name="steady",
                priority=6,
                rounds=2,
                grades=[GradeSpec(grade="Low", n_devices=8 * u, bundles=min(40, max(8, 2 * u)))],
                arrival=ArrivalSpec(kind="periodic", count=6, period_s=240.0, offset_s=30.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[25]),
            ),
            TenantSpec(
                name="crowd",
                priority=2,
                grades=[GradeSpec(grade="High", n_devices=4 * u, bundles=min(16, max(4, u)))],
                arrival=ArrivalSpec(
                    kind="trace", times=[300.0 + 2.0 * i for i in range(10)]
                ),
                dispatch=DispatchSpec(kind="realtime", thresholds=[1]),
            ),
        ],
        faults=[
            FaultSpec(kind="network_degradation", at=300.0, until=900.0, factor=0.2),
        ],
    )


def flaky_fleet(scale: int = 1000, seed: int = 0) -> ScenarioSpec:
    """An unreliable deployment: churn, bad networks, sticky dropout.

    The population skews toward cellular links with a flight-mode sliver,
    phones crash and recover in two waves, and mid-run the network tier
    halves its capacity — the scenario every robustness claim should be
    tested against.
    """
    u = _unit(scale, 54)
    return ScenarioSpec(
        name="flaky_fleet",
        description="phone churn + degraded cellular networks + sticky dropout",
        seed=seed,
        horizon_s=2400.0,
        population=PopulationSpec(
            network_mix=[["wifi", 0.35], ["lte", 0.30], ["gprs", 0.25], ["flight-mode", 0.10]],
            dropout_prob=0.10,
            dropout_stickiness=0.30,
        ),
        tenants=[
            TenantSpec(
                name="train",
                priority=7,
                rounds=2,
                numeric=True,
                feature_dim=64,
                records_per_device=8,
                grades=[
                    GradeSpec(
                        grade="High",
                        n_devices=6 * u,
                        bundles=min(48, max(6, 2 * u)),
                        n_phones=2,
                        n_benchmark=1,
                    )
                ],
                arrival=ArrivalSpec(kind="poisson", count=5, rate_per_hour=10.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[1]),
            ),
            TenantSpec(
                name="telemetry",
                priority=2,
                grades=[GradeSpec(grade="Low", n_devices=4 * u, bundles=min(20, max(4, u)), n_phones=1)],
                arrival=ArrivalSpec(kind="periodic", count=6, period_s=360.0, offset_s=45.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[10]),
            ),
        ],
        faults=[
            FaultSpec(kind="phone_crash", at=120.0, until=1500.0, grade="High", count=3),
            FaultSpec(kind="phone_crash", at=400.0, until=2000.0, grade="Low", count=2),
            FaultSpec(kind="network_degradation", at=600.0, until=1200.0, factor=0.5),
        ],
    )


def steady_state_soak(scale: int = 2000, seed: int = 0) -> ScenarioSpec:
    """A long repetitive cadence with a straggler window in the middle.

    One tenant retrains on a fixed period for the whole horizon while a
    low-priority probe stream samples queueing behaviour; a mid-run
    straggler window slows every device of the soak tenant 2.5x, so the
    report shows the cadence absorbing (or not absorbing) the slowdown.
    """
    u = _unit(scale, 96)
    return ScenarioSpec(
        name="steady_state_soak",
        description="fixed retraining cadence + probe stream + straggler window",
        seed=seed,
        horizon_s=4200.0,
        population=PopulationSpec(),
        tenants=[
            TenantSpec(
                name="soak",
                priority=5,
                rounds=2,
                grades=[
                    GradeSpec(grade="High", n_devices=5 * u, bundles=min(50, max(5, 2 * u))),
                    GradeSpec(grade="Low", n_devices=3 * u, bundles=min(30, max(4, u))),
                ],
                arrival=ArrivalSpec(kind="periodic", count=10, period_s=420.0, offset_s=0.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[40]),
            ),
            TenantSpec(
                name="probe",
                priority=1,
                numeric=True,
                feature_dim=32,
                records_per_device=6,
                grades=[GradeSpec(grade="High", n_devices=2 * u, bundles=min(12, max(2, u)))],
                arrival=ArrivalSpec(kind="poisson", count=4, rate_per_hour=6.0),
            ),
        ],
        faults=[
            FaultSpec(kind="straggler", at=1260.0, until=2520.0, factor=2.5, tenant="soak"),
        ],
    )


def autoscale_flash_crowd(scale: int = 1000, seed: int = 0) -> ScenarioSpec:
    """The flash crowd replayed on an undersized cluster with remediation.

    A single logical node hosts a steady background when ten burst tasks
    land inside twenty seconds.  A ``queue_depth`` alarm (warn at 3
    queued tasks, critical at 6, hysteresis clear at 1, 10 s hold) raises
    as the burst queues; the autoscaler answers each raise with two extra
    nodes (up to six, 60 s cooldown) and drains them once the alarm
    clears.  The SLAs assert the remediation worked: every task completes
    and queue waits stay bounded.
    """
    u = _unit(scale, 48)
    return ScenarioSpec(
        name="autoscale_flash_crowd",
        description="task burst on an undersized cluster; queue alarm drives the autoscaler",
        seed=seed,
        horizon_s=1800.0,
        cluster_nodes=1,
        population=PopulationSpec(),
        tenants=[
            TenantSpec(
                name="steady",
                priority=6,
                grades=[GradeSpec(grade="Low", n_devices=4 * u, bundles=min(20, max(6, u)))],
                arrival=ArrivalSpec(kind="periodic", count=4, period_s=300.0, offset_s=30.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[20]),
            ),
            TenantSpec(
                name="crowd",
                priority=2,
                grades=[GradeSpec(grade="High", n_devices=4 * u, bundles=min(16, max(8, 2 * u)))],
                arrival=ArrivalSpec(kind="trace", times=[240.0 + 2.0 * i for i in range(10)]),
                dispatch=DispatchSpec(kind="realtime", thresholds=[1]),
                slas=[SLASpec(metric="completion_rate", limit=0.99, direction="min")],
            ),
        ],
        alarms=[
            AlarmRule(
                name="queue-pressure",
                signal="queue_depth",
                warn=3.0,
                critical=6.0,
                clear=1.0,
                min_hold_s=10.0,
            ),
        ],
        autoscale=AutoscaleSpec(
            alarm="queue-pressure", step=2, max_extra_nodes=6, cooldown_s=60.0
        ),
        slas=[
            SLASpec(metric="queue_wait_p95", limit=1500.0),
            SLASpec(metric="failed_tasks", limit=0.0),
        ],
    )


def lossy_uplink(scale: int = 1000, seed: int = 0) -> ScenarioSpec:
    """A fault-tolerant uplink run: loss, duplication, and an outage.

    One numeric federated tenant uploads through a lossy channel (2 s
    latency, capped-exponential retry, per-round 900 s deadline) while a
    background telemetry stream shares the platform.  Mid-run faults
    raise the loss rate to 15%, inject 5% duplicates, and black out the
    ingestion service for a minute.  A ``retry_rate_mean`` alarm watches
    the retry storm live, and the SLAs assert the transport degraded
    gracefully: ≥85% of expected updates still fold into each round and
    the per-update retry cost stays bounded.
    """
    u = _unit(scale, 60)
    return ScenarioSpec(
        name="lossy_uplink",
        description="lossy uplink with retries, duplication, outage, deadline-closed rounds",
        seed=seed,
        horizon_s=3600.0,
        population=PopulationSpec(),
        transport=TransportSpec(
            latency_s=2.0,
            jitter_s=1.0,
            retry_base_s=4.0,
            retry_cap_s=60.0,
            max_attempts=5,
            deadline_s=900.0,
        ),
        tenants=[
            TenantSpec(
                name="uplink",
                priority=6,
                rounds=2,
                numeric=True,
                feature_dim=32,
                records_per_device=6,
                grades=[
                    GradeSpec(grade="High", n_devices=6 * u, bundles=min(48, max(6, 2 * u))),
                    GradeSpec(grade="Low", n_devices=3 * u, bundles=min(24, max(4, u))),
                ],
                arrival=ArrivalSpec(kind="periodic", count=3, period_s=1000.0, offset_s=60.0),
                dispatch=DispatchSpec(kind="interval", interval_s=300.0),
                slas=[
                    SLASpec(metric="round_completeness", limit=0.85, direction="min"),
                    SLASpec(metric="retry_rate", limit=1.0),
                ],
            ),
            TenantSpec(
                name="telemetry",
                priority=2,
                grades=[GradeSpec(grade="Low", n_devices=3 * u, bundles=min(16, max(4, u)))],
                arrival=ArrivalSpec(kind="periodic", count=4, period_s=800.0, offset_s=200.0),
                dispatch=DispatchSpec(kind="realtime", thresholds=[10]),
            ),
        ],
        faults=[
            FaultSpec(kind="message_loss", at=400.0, until=2600.0, factor=0.15),
            FaultSpec(kind="message_duplication", at=600.0, until=2200.0, factor=0.05),
            FaultSpec(kind="service_outage", at=1200.0, until=1260.0),
        ],
        alarms=[
            AlarmRule(
                name="retry-burst",
                signal="retry_rate_mean",
                warn=0.05,
                clear=0.02,
                window_s=600.0,
            ),
        ],
    )


#: The named library the CLI and benchmarks draw from.
SCENARIOS: dict[str, Callable[..., ScenarioSpec]] = {
    "diurnal_multitenant": diurnal_multitenant,
    "flash_crowd": flash_crowd,
    "flaky_fleet": flaky_fleet,
    "steady_state_soak": steady_state_soak,
    "autoscale_flash_crowd": autoscale_flash_crowd,
    "lossy_uplink": lossy_uplink,
}


def build_scenario(name: str, scale: int | None = None, seed: int = 0) -> ScenarioSpec:
    """Instantiate a library scenario by name."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}")
    builder = SCENARIOS[name]
    if scale is None:
        return builder(seed=seed)
    return builder(scale=scale, seed=seed)
