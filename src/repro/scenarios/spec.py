"""Scenario specifications: plain-data descriptions of platform workloads.

Every spec class here is a dataclass of JSON-friendly fields with a
``to_dict`` / ``from_dict`` pair, so scenarios round-trip through plain
dicts (and therefore YAML/JSON files) without any custom serializer.  The
specs are *descriptions*; the live objects (behaviour models, dispatch
strategies, :class:`~repro.scheduler.task.TaskSpec` instances) are built
on demand by the factory methods so that every task gets fresh, unshared
strategy state and deterministic seeds.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any

import numpy as np

from repro.behavior import (
    FLIGHT_MODE,
    GPRS,
    LTE,
    WIFI,
    DiurnalAvailability,
    DropoutModel,
    NetworkMixture,
    TimezoneMixture,
    population_traffic_curve,
)
from repro.behavior.timezone import DEFAULT_OFFSET_WEIGHTS
from repro.cluster.resources import ResourceBundle
from repro.deviceflow.curves import TrafficCurve
from repro.deviceflow.strategy import (
    DispatchStrategy,
    RealTimeAccumulatedStrategy,
    TimeIntervalStrategy,
)
from repro.ml.operators import standard_fl_flow
from repro.observability import AlarmRule, AutoscaleSpec, SLASpec
from repro.scheduler.task import GradeRequirement, TaskSpec
from repro.simkernel.random import stable_hash

#: Named network profiles a :class:`PopulationSpec` can mix.
NETWORK_PROFILES = {p.name: p for p in (WIFI, LTE, GPRS, FLIGHT_MODE)}


# ----------------------------------------------------------------------
# population recipe
# ----------------------------------------------------------------------
@dataclass
class PopulationSpec:
    """Device-population recipe: who the simulated users are.

    Composes the :mod:`repro.behavior` models: a timezone mixture, a
    diurnal availability curve (in local time), a network-condition
    mixture, and a per-round dropout model.  The aggregate upload-rate
    curve of the population doubles as the rate curve for interval-based
    DeviceFlow dispatch (:meth:`traffic_curve`).
    """

    timezone_offsets: list[list[float]] = field(
        default_factory=lambda: [[o, w] for o, w in DEFAULT_OFFSET_WEIGHTS]
    )
    night_peak: float = 2.0
    evening_peak: float = 21.0
    base_level: float = 0.05
    network_mix: list[list[Any]] = field(
        default_factory=lambda: [["wifi", 0.62], ["lte", 0.28], ["gprs", 0.07], ["flight-mode", 0.03]]
    )
    dropout_prob: float = 0.0
    dropout_stickiness: float = 0.0

    def __post_init__(self) -> None:
        for name, _weight in self.network_mix:
            if name not in NETWORK_PROFILES:
                raise ValueError(
                    f"unknown network profile {name!r}; known: {sorted(NETWORK_PROFILES)}"
                )
        if not 0.0 <= self.dropout_prob <= 1.0:
            raise ValueError("dropout_prob must be in [0, 1]")

    # live-object factories -------------------------------------------
    def timezones(self, seed: int = 0) -> TimezoneMixture:
        """The population's timezone mixture."""
        return TimezoneMixture([(int(o), float(w)) for o, w in self.timezone_offsets], seed=seed)

    def availability(self) -> DiurnalAvailability:
        """Per-device diurnal availability in local time."""
        return DiurnalAvailability(self.night_peak, self.evening_peak, self.base_level)

    def networks(self, seed: int = 0) -> NetworkMixture:
        """Network-profile assignment for the population."""
        mix = [(NETWORK_PROFILES[name], float(w)) for name, w in self.network_mix]
        return NetworkMixture(mix, seed=seed)

    def dropout(self, seed: int = 0) -> DropoutModel | None:
        """Per-round dropout model, or ``None`` when dropout is off."""
        if self.dropout_prob <= 0.0:
            return None
        return DropoutModel(self.dropout_prob, self.dropout_stickiness, seed=seed)

    def upload_failure_prob(self) -> float:
        """Population-average transmission-failure probability.

        Derived from the network mixture — the physically-grounded default
        for DeviceFlow dropout, combined with the explicit
        :attr:`dropout_prob` as independent loss sources.
        """
        network = self.networks().expected_failure_prob()
        return 1.0 - (1.0 - network) * (1.0 - self.dropout_prob)

    def traffic_curve(self, name: str = "population-diurnal") -> TrafficCurve:
        """Aggregate upload-rate curve over UTC (feeds interval dispatch)."""
        return population_traffic_curve(self.timezones(), self.availability(), name=name)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> PopulationSpec:
        return cls(**data)


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
@dataclass
class ArrivalSpec:
    """When a tenant's task instances are submitted.

    ``kind`` selects the process:

    * ``"trace"`` — submit at the explicit ``times`` (seconds from
      scenario start), trace-driven replay of a recorded workload;
    * ``"periodic"`` — ``count`` submissions at ``offset_s + k*period_s``
      (a retraining cadence);
    * ``"poisson"`` — ``count`` submissions with i.i.d. exponential
      inter-arrival gaps at ``rate_per_hour`` (an open-loop user stream).
    """

    kind: str = "trace"
    times: list[float] = field(default_factory=list)
    count: int = 1
    period_s: float = 600.0
    offset_s: float = 0.0
    rate_per_hour: float = 6.0

    def __post_init__(self) -> None:
        if self.kind not in ("trace", "periodic", "poisson"):
            raise ValueError(f"unknown arrival kind {self.kind!r}")
        if self.kind == "trace":
            if not self.times:
                raise ValueError("trace arrivals need at least one timestamp")
            if any(t < 0 for t in self.times):
                raise ValueError("trace timestamps must be >= 0")
        else:
            if self.count < 1:
                raise ValueError("count must be >= 1")
        if self.kind == "periodic" and self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.kind == "poisson" and self.rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be positive")

    def submission_times(self, rng: np.random.Generator) -> list[float]:
        """The sorted submission instants (seconds from scenario start).

        ``rng`` is consumed only by the Poisson process; deterministic
        kinds ignore it, so trace/periodic tenants never perturb the
        random-stream alignment of stochastic ones.
        """
        if self.kind == "trace":
            return sorted(float(t) for t in self.times)
        if self.kind == "periodic":
            return [self.offset_s + k * self.period_s for k in range(self.count)]
        gaps = rng.exponential(3600.0 / self.rate_per_hour, size=self.count)
        return (self.offset_s + np.cumsum(gaps)).tolist()

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> ArrivalSpec:
        return cls(**data)


# ----------------------------------------------------------------------
# deviceflow dispatch recipe
# ----------------------------------------------------------------------
@dataclass
class DispatchSpec:
    """Declarative DeviceFlow strategy for one tenant.

    * ``"direct"`` — bypass DeviceFlow (results go straight to the cloud
      service);
    * ``"realtime"`` — threshold-sequence real-time accumulated dispatch;
    * ``"interval"`` — spread each round's uploads over the population's
      diurnal traffic curve across ``interval_s`` seconds.

    ``failure_prob`` < 0 (the default) means "derive from the population"
    via :meth:`PopulationSpec.upload_failure_prob`.
    """

    kind: str = "direct"
    thresholds: list[int] = field(default_factory=lambda: [1])
    interval_s: float = 600.0
    failure_prob: float = -1.0

    def __post_init__(self) -> None:
        if self.kind not in ("direct", "realtime", "interval"):
            raise ValueError(f"unknown dispatch kind {self.kind!r}")
        if self.kind == "interval" and self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.failure_prob > 1.0:
            raise ValueError("failure_prob must be <= 1")

    def resolved_failure_prob(self, population: PopulationSpec) -> float:
        """The dropout probability this tenant's messages experience."""
        if self.failure_prob >= 0.0:
            return float(self.failure_prob)
        return population.upload_failure_prob()

    def build(self, population: PopulationSpec) -> DispatchStrategy | None:
        """A fresh strategy instance (strategies hold per-task state)."""
        if self.kind == "direct":
            return None
        p = self.resolved_failure_prob(population)
        if self.kind == "realtime":
            return RealTimeAccumulatedStrategy([int(t) for t in self.thresholds], failure_prob=p)
        return TimeIntervalStrategy(
            population.traffic_curve(), interval_seconds=float(self.interval_s), failure_prob=p
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> DispatchSpec:
        return cls(**data)


# ----------------------------------------------------------------------
# tenants
# ----------------------------------------------------------------------
@dataclass
class GradeSpec:
    """One device grade's demand inside a tenant's task template."""

    grade: str = "High"
    n_devices: int = 10
    bundles: int = 10
    n_phones: int = 0
    n_benchmark: int = 0
    device_cpus: float = 1.0
    device_memory_gb: float = 1.0

    def build(self) -> GradeRequirement:
        return GradeRequirement(
            grade=self.grade,
            n_devices=self.n_devices,
            bundles=self.bundles,
            n_phones=self.n_phones,
            n_benchmark=self.n_benchmark,
            device_bundle=ResourceBundle(cpus=self.device_cpus, memory_gb=self.device_memory_gb),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> GradeSpec:
        return cls(**data)


@dataclass
class TenantSpec:
    """One tenant: a task template plus its arrival process.

    Each submission instantiates a fresh :class:`TaskSpec` from the
    template with a deterministic ``task_id`` and ``dataset_seed``, so a
    scenario is reproducible regardless of how many other TaskSpecs the
    process created before (the global task counter is bypassed).
    """

    name: str
    grades: list[GradeSpec] = field(default_factory=lambda: [GradeSpec()])
    arrival: ArrivalSpec = field(default_factory=lambda: ArrivalSpec(times=[0.0]))
    dispatch: DispatchSpec = field(default_factory=DispatchSpec)
    priority: int = 0
    rounds: int = 1
    numeric: bool = False
    feature_dim: int = 64
    records_per_device: int = 8
    flow_epochs: int = 1
    flow_learning_rate: float = 0.05
    #: Per-round aggregation deadline (seconds from round start); late
    #: uploads are dropped and the round closes on the partial fold.
    #: ``None`` inherits the scenario transport's default deadline.
    deadline_s: float | None = None
    #: Tenant-scoped SLAs (their ``tenant`` field is pinned to this
    #: tenant's name regardless of what the spec says).
    slas: list[SLASpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.grades:
            raise ValueError(f"tenant {self.name!r} needs at least one grade")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"tenant {self.name!r} deadline_s must be > 0, got {self.deadline_s!r}"
            )

    @property
    def devices_per_task(self) -> int:
        return sum(g.n_devices for g in self.grades)

    def build_task(
        self, scenario: str, index: int, seed: int, population: PopulationSpec
    ) -> TaskSpec:
        """Instantiate submission ``index`` of this tenant's stream."""
        return TaskSpec(
            name=f"{self.name}-{index:03d}",
            task_id=f"{scenario}.{self.name}.{index:04d}",
            grades=[g.build() for g in self.grades],
            rounds=self.rounds,
            flow=standard_fl_flow(epochs=self.flow_epochs, learning_rate=self.flow_learning_rate),
            priority=self.priority,
            deviceflow_strategy=self.dispatch.build(population),
            numeric=self.numeric,
            feature_dim=self.feature_dim,
            deadline_s=self.deadline_s,
            dataset_seed=(seed * 1_000_003 + index * 9_176 + stable_hash(self.name)[0])
            % (2**31),
            records_per_device=self.records_per_device,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> TenantSpec:
        data = dict(data)
        if "grades" in data:
            data["grades"] = [GradeSpec.from_dict(g) for g in data["grades"]]
        if "arrival" in data:
            data["arrival"] = ArrivalSpec.from_dict(data["arrival"])
        if "dispatch" in data:
            data["dispatch"] = DispatchSpec.from_dict(data["dispatch"])
        if "slas" in data:
            data["slas"] = [SLASpec.from_dict(s) for s in data["slas"]]
        return cls(**data)


# ----------------------------------------------------------------------
# fault plan
# ----------------------------------------------------------------------
@dataclass
class FaultSpec:
    """One timed fault (and its optional recovery) in a scenario.

    ``kind`` selects the failure mode:

    * ``"phone_crash"`` — at ``at``, up to ``count`` *idle* phones of
      ``grade`` drop out of the fleet (they stop being reservable and the
      scheduler sees reduced capacity); at ``until`` they recover.
      Phones mid-task are not yanked — device churn takes idle handsets,
      matching the "participate only while idle" eligibility model.
    * ``"network_degradation"`` — between ``at`` and ``until``,
      DeviceFlow transmission capacity is scaled by ``factor`` (< 1).
    * ``"straggler"`` — tenants matching ``tenant`` (or all tenants when
      empty) whose tasks are *submitted* inside ``[at, until)`` run with
      per-device durations scaled by ``factor`` (> 1): slow devices, both
      tiers.
    * ``"message_loss"`` / ``"message_duplication"`` — between ``at`` and
      ``until``, device→cloud uploads are lost / duplicated with
      probability ``factor`` (in (0, 1]); lost uploads trigger the
      channel's retry policy.  ``tenant`` scopes the window (empty =
      every tenant).
    * ``"service_outage"`` — between ``at`` and ``until`` the cloud
      ingestion service rejects every upload; devices back off and retry
      past the window (or abandon after max attempts).
    """

    #: Fault kinds routed to the transport channel as impairment windows.
    TRANSPORT_KINDS = ("message_loss", "message_duplication", "service_outage")
    KINDS = ("phone_crash", "network_degradation", "straggler") + TRANSPORT_KINDS

    kind: str
    at: float = 0.0
    until: float | None = None
    grade: str = "High"
    count: int = 1
    factor: float = 1.0
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at!r}")
        if self.until is not None and self.until <= self.at:
            raise ValueError(
                f"fault recovery must come after the fault: "
                f"until={self.until!r} <= at={self.at!r}"
            )
        if self.kind == "phone_crash" and self.count < 1:
            raise ValueError(f"phone_crash needs count >= 1, got {self.count!r}")
        if self.kind == "network_degradation":
            if self.until is None:
                raise ValueError(
                    f"network_degradation needs an end time, got until={self.until!r}"
                )
            if not 0.0 < self.factor <= 1.0:
                raise ValueError(f"degradation factor must be in (0, 1], got {self.factor!r}")
        if self.kind == "straggler":
            if self.until is None:
                raise ValueError(f"straggler injection needs a window end, got until={self.until!r}")
            if self.factor <= 1.0:
                raise ValueError(f"straggler slowdown factor must be > 1, got {self.factor!r}")
        if self.kind in self.TRANSPORT_KINDS and self.until is None:
            raise ValueError(f"{self.kind} needs an end time, got until={self.until!r}")
        if self.kind in ("message_loss", "message_duplication") and not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"{self.kind} probability (factor) must be in (0, 1], got {self.factor!r}"
            )

    def covers_submission(self, tenant: str, time: float) -> bool:
        """Whether a straggler window applies to a tenant submission."""
        if self.kind != "straggler":
            return False
        if self.tenant and self.tenant != tenant:
            return False
        assert self.until is not None
        return self.at <= time < self.until

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> FaultSpec:
        return cls(**data)


# ----------------------------------------------------------------------
# device→cloud transport
# ----------------------------------------------------------------------
@dataclass
class TransportSpec:
    """Device→cloud channel behaviour for the whole scenario.

    Describes the :class:`~repro.cloud.transport.ChannelModel` every
    task's uploads traverse: base delivery latency plus uniform jitter,
    steady-state loss/duplication probabilities, and the device-side
    retry policy (capped exponential backoff, ``max_attempts`` sends,
    then the upload is abandoned).  Scheduled impairments come from the
    fault plan (``message_loss`` / ``message_duplication`` /
    ``service_outage`` kinds) and stack on top of the base rates.

    ``deadline_s`` is the default per-round aggregation deadline for
    tenants that do not set their own: rounds close at the deadline with
    the partial fold and late uploads count as dropped.
    """

    latency_s: float = 0.0
    jitter_s: float = 0.0
    loss_prob: float = 0.0
    dup_prob: float = 0.0
    retry_base_s: float = 2.0
    retry_cap_s: float = 60.0
    max_attempts: int = 4
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError(
                f"transport latency/jitter must be >= 0, got "
                f"latency_s={self.latency_s!r}, jitter_s={self.jitter_s!r}"
            )
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(f"transport loss_prob must be in [0, 1), got {self.loss_prob!r}")
        if not 0.0 <= self.dup_prob <= 1.0:
            raise ValueError(f"transport dup_prob must be in [0, 1], got {self.dup_prob!r}")
        if self.retry_base_s <= 0 or self.retry_cap_s <= 0:
            raise ValueError(
                f"transport retry backoff must be > 0, got "
                f"retry_base_s={self.retry_base_s!r}, retry_cap_s={self.retry_cap_s!r}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"transport max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"transport deadline_s must be > 0, got {self.deadline_s!r}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> TransportSpec:
        return cls(**data)


# ----------------------------------------------------------------------
# the scenario
# ----------------------------------------------------------------------
@dataclass
class ScenarioSpec:
    """A complete multi-tenant platform run, as plain data.

    Attributes
    ----------
    name / description:
        Identification (the name prefixes every generated task id).
    seed:
        Master seed: platform streams, arrival draws, dataset seeds.
    horizon_s:
        Nominal arrival-window length (documentation + CLI display; the
        run itself ends when every task finishes).
    max_time:
        Hard simulated-time guard for the run.
    tenants / population / faults:
        The workload, who generates it, and what goes wrong.
    transport:
        Optional device→cloud :class:`TransportSpec` (lossy channel,
        retries, default round deadline).  ``None`` keeps the ideal
        lossless exactly-once uplink — unless the fault plan schedules
        transport windows, which imply a default channel.
    cluster_nodes:
        Logical-tier size, in 20-CPU/30-GB nodes (the paper's shape).
    deviceflow_capacity:
        Dispatcher transmission capacity (messages/second).
    extra_high_phones / extra_low_phones:
        Synthetic MSP phones added on top of the default 30-phone fleet
        for scenarios with heavy physical-tier demand.
    batch:
        Drive the run on the wave-scheduled fast paths (default) or the
        legacy per-device generators — bit-identical results either way.
    alarms:
        Live :class:`~repro.observability.AlarmRule` watches evaluated
        during the run (``alarm_raised`` / ``alarm_cleared`` monitor
        events, summarized in the report).
    slas:
        Scenario-wide service-level objectives; an SLA with an empty
        ``tenant`` applies to every tenant.  Tenants carry their own
        ``slas`` list too.  All are checked live (where a streaming
        signal exists) and against the final report.
    autoscale:
        Optional :class:`~repro.observability.AutoscaleSpec` bound to one
        of ``alarms`` — raise/clear transitions of that rule drive
        cluster scale-up/scale-down during the run.
    """

    name: str
    tenants: list[TenantSpec]
    description: str = ""
    seed: int = 0
    horizon_s: float = 3600.0
    max_time: float = 1e8
    population: PopulationSpec = field(default_factory=PopulationSpec)
    faults: list[FaultSpec] = field(default_factory=list)
    cluster_nodes: int = 10
    deviceflow_capacity: float = 700.0
    extra_high_phones: int = 0
    extra_low_phones: int = 0
    batch: bool = True
    transport: TransportSpec | None = None
    alarms: list[AlarmRule] = field(default_factory=list)
    slas: list[SLASpec] = field(default_factory=list)
    autoscale: AutoscaleSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if self.horizon_s <= 0 or self.max_time <= 0:
            raise ValueError("horizon_s and max_time must be positive")
        if self.cluster_nodes < 1:
            raise ValueError("cluster_nodes must be >= 1")
        if self.extra_high_phones < 0 or self.extra_low_phones < 0:
            raise ValueError("extra phone counts must be >= 0")
        alarm_names = [a.name for a in self.alarms]
        if len(set(alarm_names)) != len(alarm_names):
            raise ValueError(f"duplicate alarm rule names: {alarm_names}")
        for rule in self.alarms:
            if rule.tenant and rule.tenant not in names:
                raise ValueError(
                    f"alarm {rule.name!r} watches unknown tenant {rule.tenant!r}"
                )
        for sla in self.slas:
            if sla.tenant and sla.tenant not in names:
                raise ValueError(
                    f"SLA on {sla.metric!r} names unknown tenant {sla.tenant!r}"
                )
        if self.autoscale is not None and self.autoscale.alarm not in alarm_names:
            raise ValueError(
                f"autoscale policy references unknown alarm {self.autoscale.alarm!r}"
            )

    def all_slas(self) -> list[SLASpec]:
        """Scenario-wide SLAs plus every tenant's own, tenant pinned."""
        merged = list(self.slas)
        for tenant in self.tenants:
            merged.extend(replace(sla, tenant=tenant.name) for sla in tenant.slas)
        return merged

    @property
    def total_devices(self) -> int:
        """Simulated devices across every tenant submission."""
        total = 0
        for tenant in self.tenants:
            n_tasks = len(tenant.arrival.times) if tenant.arrival.kind == "trace" else tenant.arrival.count
            total += tenant.devices_per_task * n_tasks
        return total

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> ScenarioSpec:
        data = dict(data)
        data["tenants"] = [TenantSpec.from_dict(t) for t in data.get("tenants", [])]
        if "population" in data:
            data["population"] = PopulationSpec.from_dict(data["population"])
        data["faults"] = [FaultSpec.from_dict(f) for f in data.get("faults", [])]
        if data.get("transport") is not None:
            data["transport"] = TransportSpec.from_dict(data["transport"])
        if "alarms" in data:
            data["alarms"] = [AlarmRule.from_dict(a) for a in data["alarms"]]
        if "slas" in data:
            data["slas"] = [SLASpec.from_dict(s) for s in data["slas"]]
        if data.get("autoscale") is not None:
            data["autoscale"] = AutoscaleSpec.from_dict(data["autoscale"])
        return cls(**data)
