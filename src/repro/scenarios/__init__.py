"""Declarative multi-tenant scenario engine.

SimDC's pitch is a platform that mirrors *production* device-cloud
populations — timezones, networks, user actions, dropout (§V, Fig. 3).
This package turns that pitch into a first-class subsystem: a scenario is
a plain-data description of "a day of traffic on a real deployment" —

* a **device-population recipe** (timezone / network / availability /
  dropout mixtures drawn from :mod:`repro.behavior`),
* a set of **tenants**, each a :class:`~repro.scheduler.task.TaskSpec`
  template plus an arrival process (Poisson, deterministic cadence, or a
  trace of timestamps) and a declarative DeviceFlow dispatch recipe, and
* a **fault plan** (timed phone crashes/recoveries, network-tier
  degradation windows, straggler injection, plus transport-level
  message-loss / duplication / service-outage windows), and
* an optional **transport recipe** (:class:`TenantSpec` deadlines and a
  :class:`TransportSpec` lossy device→cloud channel with retry/backoff),

and the :class:`ScenarioRunner` replays the whole thing on one simulated
clock — submissions scheduled as simulator events, faults applied through
the kernel, everything on the batched fast path — then distils the run
into a :class:`ScenarioReport` of per-tenant KPIs.

Specs serialize to/from plain dicts, so YAML/JSON configs load trivially;
``python -m repro.scenarios run <name>`` runs the built-in library.
"""

from repro.observability import AlarmRule, AutoscaleSpec, SLASpec
from repro.scenarios.engine import ScenarioRunner, run_scenario
from repro.scenarios.kpis import ScenarioReport, StatSummary, TenantKPIs, build_report
from repro.scenarios.library import SCENARIOS, build_scenario
from repro.scenarios.spec import (
    ArrivalSpec,
    DispatchSpec,
    FaultSpec,
    GradeSpec,
    PopulationSpec,
    ScenarioSpec,
    TenantSpec,
    TransportSpec,
)

__all__ = [
    "SCENARIOS",
    "AlarmRule",
    "ArrivalSpec",
    "AutoscaleSpec",
    "DispatchSpec",
    "FaultSpec",
    "GradeSpec",
    "PopulationSpec",
    "SLASpec",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "StatSummary",
    "TenantKPIs",
    "TenantSpec",
    "TransportSpec",
    "build_report",
    "build_scenario",
    "run_scenario",
]
