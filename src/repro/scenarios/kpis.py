"""Scenario KPIs: distilling a platform run into per-tenant numbers.

The report is assembled from the shared :class:`~repro.cloud.monitor.Monitor`
event log (submission → scheduling latency), the task results held by the
Task Manager (makespans, per-round aggregation records, DeviceFlow loss
counters) and the scenario's own submission ledger.  Everything is plain
data with a deterministic JSON rendering, so two runs of the same spec and
seed must produce byte-identical reports — the scenario-level determinism
contract the tests enforce.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.observability import evaluate_slas
from repro.scheduler.task import TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.platform import SimDC
    from repro.observability import AlarmEngine, AutoscalePolicy
    from repro.scenarios.spec import ScenarioSpec

#: Monitor event kinds the observability loop emits (counted like faults).
OBSERVABILITY_KINDS = (
    "alarm_raised",
    "alarm_cleared",
    "sla_violation",
    "sla_recovered",
    "autoscale_up",
    "autoscale_down",
)


@dataclass
class StatSummary:
    """Five-number summary of one KPI distribution."""

    n: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    max: float = 0.0

    @classmethod
    def of(cls, values: Sequence[float]) -> StatSummary:
        if not len(values):
            return cls()
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            n=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.quantile(arr, 0.5)),
            p95=float(np.quantile(arr, 0.95)),
            max=float(arr.max()),
        )


@dataclass
class TenantKPIs:
    """One tenant's end-to-end experience of the scenario."""

    tenant: str
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Seconds from submission to the scheduler granting resources.
    queue_wait: StatSummary = field(default_factory=StatSummary)
    #: Seconds from task start to completion (execution only).
    makespan: StatSummary = field(default_factory=StatSummary)
    #: Seconds from submission to completion (what the tenant feels).
    turnaround: StatSummary = field(default_factory=StatSummary)
    #: Seconds between successive aggregations within each task.
    round_duration: StatSummary = field(default_factory=StatSummary)
    #: Device updates that should have arrived vs. actually aggregated.
    updates_expected: int = 0
    updates_aggregated: int = 0
    #: Updates DeviceFlow lost (transmission failures + discards).
    dropout_lost: int = 0
    #: Transport-layer totals (zero when no channel/deadline was armed):
    #: channel retries, duplicate deliveries dropped by the dedup table,
    #: uploads that missed the round deadline, uploads abandoned after
    #: exhausting the retry budget.
    transport_retries: int = 0
    transport_duplicates: int = 0
    transport_late_drops: int = 0
    transport_abandoned: int = 0
    #: Mean final test accuracy over completed numeric tasks (None when
    #: the tenant runs time-only tasks).
    final_accuracy: float | None = None
    #: Resource-time footprint (for utilization and fairness accounting).
    bundle_seconds: float = 0.0
    phone_seconds: float = 0.0


@dataclass
class ScenarioReport:
    """Everything a scenario run reports back."""

    scenario: str
    seed: int
    batch: bool
    #: Simulated time when the last task finished.
    finished_at: float = 0.0
    total_tasks: int = 0
    total_devices: int = 0
    tenants: dict[str, TenantKPIs] = field(default_factory=dict)
    #: Jain fairness index over per-tenant mean slowdowns (1.0 = every
    #: tenant suffers the same queueing stretch relative to its work).
    fairness: float = 1.0
    #: Fraction of bundle-capacity-time the logical tier spent frozen.
    bundle_utilization: float = 0.0
    #: Per-grade fraction of phone-time reserved by tasks.
    phone_utilization: dict[str, float] = field(default_factory=dict)
    #: Fault-plan events that actually fired, by monitor kind.
    fault_events: dict[str, int] = field(default_factory=dict)
    #: Per-rule raise/clear counts and final state from the alarm engine.
    alarms: dict[str, dict] = field(default_factory=dict)
    #: Observability events that fired (alarm/SLA/autoscale kinds).
    alarm_events: dict[str, int] = field(default_factory=dict)
    #: Autoscaler action totals, or ``None`` when no policy was armed.
    autoscale: dict | None = None
    #: Final SLA verdicts: one row per (tenant, objective); see
    #: :func:`repro.observability.evaluate_slas` for the row shape.
    slas: list[dict] = field(default_factory=list)
    #: Whether every SLA row holds (the CLI's ``--sla`` exit code).
    sla_ok: bool = True

    def sla_violations(self) -> list[dict]:
        """The SLA rows that failed."""
        return [row for row in self.slas if not row["ok"]]

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        """Deterministic rendering (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def summary_lines(self) -> list[str]:
        """Human-readable report (the CLI's output)."""
        lines = [
            f"scenario {self.scenario} (seed {self.seed}, "
            f"{'batched' if self.batch else 'legacy'} path)",
            f"  {self.total_tasks} tasks / {self.total_devices} simulated devices, "
            f"finished at t={self.finished_at:.0f}s",
            f"  fairness (Jain over tenant slowdowns): {self.fairness:.3f}; "
            f"bundle utilization {self.bundle_utilization:.1%}",
        ]
        if self.phone_utilization:
            util = ", ".join(f"{g}={u:.1%}" for g, u in sorted(self.phone_utilization.items()))
            lines.append(f"  phone utilization: {util}")
        if self.fault_events:
            fired = ", ".join(f"{k}={v}" for k, v in sorted(self.fault_events.items()))
            lines.append(f"  faults fired: {fired}")
        retries = sum(k.transport_retries for k in self.tenants.values())
        duplicates = sum(k.transport_duplicates for k in self.tenants.values())
        late = sum(k.transport_late_drops for k in self.tenants.values())
        abandoned = sum(k.transport_abandoned for k in self.tenants.values())
        if retries or duplicates or late or abandoned:
            lines.append(
                f"  transport: {retries} retries, {duplicates} duplicates dropped, "
                f"{late} late-dropped, {abandoned} abandoned"
            )
        if self.alarm_events:
            fired = ", ".join(f"{k}={v}" for k, v in sorted(self.alarm_events.items()))
            lines.append(f"  observability events: {fired}")
        if self.autoscale is not None:
            a = self.autoscale
            lines.append(
                f"  autoscale[{a['alarm']}]: {a['scale_ups']} up / "
                f"{a['scale_downs']} down, {a['extra_nodes_left']} extra left"
            )
        for row in self.slas:
            value = "n/a" if row["value"] is None else f"{row['value']:.4g}"
            bound = "<=" if row["direction"] == "max" else ">="
            verdict = "ok" if row["ok"] else "VIOLATED"
            lines.append(
                f"  SLA {row['tenant']}: {row['metric']} {bound} "
                f"{row['limit']:g} (value {value}) {verdict}"
            )
        header = (
            f"  {'tenant':<16} {'done':>9} {'q-wait p50/p95':>16} "
            f"{'makespan p50':>12} {'rounds p50':>10} {'lost':>6} {'final acc':>9}"
        )
        lines.append(header)
        for name in sorted(self.tenants):
            k = self.tenants[name]
            acc = f"{k.final_accuracy:.4f}" if k.final_accuracy is not None else "-"
            lines.append(
                f"  {name:<16} {k.completed:>4}/{k.submitted:<4} "
                f"{k.queue_wait.p50:>7.1f}/{k.queue_wait.p95:<8.1f} "
                f"{k.makespan.p50:>12.1f} {k.round_duration.p50:>10.1f} "
                f"{k.dropout_lost:>6} {acc:>9}"
            )
        return lines


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in (0, 1]."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0 or not np.any(arr):
        return 1.0
    return float((arr.sum() ** 2) / (arr.size * (arr**2).sum()))


def build_report(
    spec: ScenarioSpec,
    platform: SimDC,
    submissions: dict[str, list[tuple[str, float]]],
    finished_at: float,
    batch: bool | None = None,
    alarms: AlarmEngine | None = None,
    autoscaler: AutoscalePolicy | None = None,
) -> ScenarioReport:
    """Aggregate one finished run into a :class:`ScenarioReport`.

    ``submissions`` maps tenant name to its ``(task_id, submit_time)``
    ledger (the engine records it while scheduling the arrival events).
    ``batch`` records the execution mode actually used (the runner may
    override the spec's); it is display metadata, never a KPI input.
    ``alarms`` / ``autoscaler`` are the run's live observability objects
    (their summaries and the authoritative final SLA check land in the
    report).
    """
    report = ScenarioReport(
        scenario=spec.name,
        seed=spec.seed,
        batch=spec.batch if batch is None else batch,
        finished_at=finished_at,
    )
    total_bundles = platform.resource_manager.total_bundles()
    phones_by_grade = platform.resource_manager.phones_by_grade()
    results = platform.results  # one snapshot; the property copies the dict
    span = max(finished_at, 1e-9)
    phone_seconds_by_grade: dict[str, float] = {}
    slowdowns: list[float] = []

    for tenant in spec.tenants:
        ledger = submissions.get(tenant.name, [])
        kpis = TenantKPIs(tenant=tenant.name, submitted=len(ledger))
        queue_waits: list[float] = []
        makespans: list[float] = []
        turnarounds: list[float] = []
        round_durations: list[float] = []
        accuracies: list[float] = []
        for task_id, submit_time in ledger:
            result = results.get(task_id)
            if result is None:
                continue
            if result.state is TaskState.FAILED:
                kpis.failed += 1
                continue
            kpis.completed += 1
            queue_waits.append(result.started_at - submit_time)
            makespans.append(result.makespan)
            turnarounds.append(result.finished_at - submit_time)
            previous = result.started_at
            for record in result.rounds:
                round_durations.append(record.time - previous)
                previous = record.time
                kpis.updates_aggregated += record.n_updates
            kpis.updates_expected += tenant.devices_per_task * tenant.rounds
            if result.flow_stats is not None:
                kpis.dropout_lost += result.flow_stats.dropped
            transport = getattr(result, "transport", None)
            if transport is not None:
                kpis.transport_retries += transport["retries"]
                kpis.transport_duplicates += transport["duplicate_drops"]
                kpis.transport_late_drops += transport["late_drops"]
                kpis.transport_abandoned += transport["abandoned"]
            if result.rounds and result.rounds[-1].test_accuracy is not None:
                accuracies.append(result.rounds[-1].test_accuracy)
            task_bundles = sum(g.bundles for g in tenant.grades)
            kpis.bundle_seconds += task_bundles * result.makespan
            for grade in tenant.grades:
                seconds = (grade.n_phones + grade.n_benchmark) * result.makespan
                kpis.phone_seconds += seconds
                phone_seconds_by_grade[grade.grade] = (
                    phone_seconds_by_grade.get(grade.grade, 0.0) + seconds
                )
        kpis.queue_wait = StatSummary.of(queue_waits)
        kpis.makespan = StatSummary.of(makespans)
        kpis.turnaround = StatSummary.of(turnarounds)
        kpis.round_duration = StatSummary.of(round_durations)
        if accuracies:
            kpis.final_accuracy = float(np.mean(accuracies))
        report.tenants[tenant.name] = kpis
        report.total_tasks += kpis.submitted
        report.total_devices += tenant.devices_per_task * kpis.submitted
        if makespans:
            # Slowdown: how much queueing stretched the tenant's work.
            slowdowns.append(float(np.mean(turnarounds)) / max(float(np.mean(makespans)), 1e-9))

    report.fairness = jain_index(slowdowns)
    if total_bundles > 0:
        used = sum(k.bundle_seconds for k in report.tenants.values())
        report.bundle_utilization = used / (total_bundles * span)
    for grade, seconds in sorted(phone_seconds_by_grade.items()):
        fleet = phones_by_grade.get(grade, 0)
        if fleet > 0:
            report.phone_utilization[grade] = seconds / (fleet * span)
    for kind, count in platform.monitor.summary().items():
        if kind.startswith("fault_"):
            report.fault_events[kind] = count
        elif kind in OBSERVABILITY_KINDS:
            report.alarm_events[kind] = count
    if alarms is not None:
        report.alarms = alarms.summary()
    if autoscaler is not None:
        report.autoscale = autoscaler.summary()
    report.slas = evaluate_slas(spec.all_slas(), report.tenants)
    report.sla_ok = all(row["ok"] for row in report.slas)
    return report
