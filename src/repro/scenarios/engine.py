"""The scenario engine: replaying a declarative spec on a live platform.

:class:`ScenarioRunner` stands up one :class:`~repro.core.platform.SimDC`
deployment per run, schedules every tenant submission *as a simulator
event* (``SimDC.submit(..., at=...)`` rides the Task Manager's deferred
path), arms the fault plan as kernel events, and drives the whole thing to
idle on the batched fast path.  Nothing here executes outside the
simulated clock, so a scenario is exactly as deterministic as the platform
itself: same spec + same seed ⇒ byte-identical
:class:`~repro.scenarios.kpis.ScenarioReport`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.cloud.transport import ChannelModel, ChannelWindow
from repro.cluster.cost import LogicalCostModel
from repro.cluster.resources import NodeSpec
from repro.core.config import PlatformConfig
from repro.core.platform import SimDC
from repro.observability import AlarmEngine, AutoscalePolicy, attach_live_slas
from repro.observability.tracing import Trace, Tracer, assemble_trace
from repro.phones.cost import PhysicalCostModel
from repro.phones.specs import DEFAULT_LOCAL_FLEET, build_fleet
from repro.scenarios.kpis import ScenarioReport, build_report
from repro.scenarios.spec import FaultSpec, ScenarioSpec, TransportSpec

#: FaultSpec transport kinds → ChannelWindow kinds.
_WINDOW_KIND = {
    "message_loss": "loss",
    "message_duplication": "duplication",
    "service_outage": "outage",
}


class FaultInjector:
    """Applies a scenario's fault plan to a live platform via the kernel.

    Every fault (and its recovery) is a scheduled simulator event, so
    faults interleave deterministically with submissions, rounds and
    samplers.  Each firing is logged on the platform monitor as a
    ``fault_*`` event for the report.
    """

    def __init__(self, platform: SimDC) -> None:
        self.platform = platform
        self._down: set[str] = set()
        self._active_degradations: list[FaultSpec] = []

    def arm(self, faults: list[FaultSpec]) -> None:
        """Schedule every fault event on the platform's clock."""
        sim = self.platform.sim
        for fault in faults:
            if fault.kind == "phone_crash":
                state: dict[str, Any] = {}
                sim.schedule_at(fault.at, self._crash_phones, fault, state)
                if fault.until is not None:
                    sim.schedule_at(fault.until, self._recover_phones, fault, state)
            elif fault.kind == "network_degradation":
                sim.schedule_at(fault.at, self._degrade_network, fault)
                assert fault.until is not None
                sim.schedule_at(fault.until, self._restore_network, fault)
            # Straggler windows act at submission time (the engine scales
            # the affected tasks' cost models); log the window open so the
            # report counts it even when no submission lands inside.
            elif fault.kind == "straggler":
                sim.schedule_at(fault.at, self._log_straggler_window, fault)
            # Transport windows are baked into the channel model at
            # build time (probabilities must be known before the first
            # upload is planned); log the window opening for the report.
            elif fault.kind in FaultSpec.TRANSPORT_KINDS:
                sim.schedule_at(fault.at, self._log_transport_window, fault)

    # ------------------------------------------------------------------
    def _crash_phones(self, fault: FaultSpec, state: dict) -> None:
        platform = self.platform
        candidates = [
            phone
            for phone in sorted(platform.phones, key=lambda p: (p.is_msp, p.serial))
            if phone.spec.grade == fault.grade
            and phone.serial not in platform._busy_registry
            and phone.serial not in self._down
        ]
        # Churn takes idle handsets; remote (MSP) phones drop first — the
        # flakier pool in the paper's deployment model.
        victims = candidates[-fault.count :] if candidates else []
        state["victims"] = victims
        platform.resource_manager.remove_phones(victims)
        for phone in victims:
            platform._busy_registry.add(phone.serial)
            self._down.add(phone.serial)
            platform.monitor.log(
                "fault_phone_crash", serial=phone.serial, grade=fault.grade
            )

    def _recover_phones(self, fault: FaultSpec, state: dict) -> None:
        platform = self.platform
        for phone in state.get("victims", []):
            platform._busy_registry.discard(phone.serial)
            platform.resource_manager.add_phones([phone])
            self._down.discard(phone.serial)
            platform.monitor.log(
                "fault_phone_recover", serial=phone.serial, grade=fault.grade
            )
        # A freed phone may unblock a queued, phone-starved task now.
        platform.task_manager.notify_resources_changed()

    def _apply_degradations(self) -> float:
        """Effective capacity scale: active windows stack multiplicatively."""
        scale = 1.0
        for fault in self._active_degradations:
            scale *= fault.factor
        self.platform.deviceflow.set_capacity_scale(scale)
        return scale

    def _degrade_network(self, fault: FaultSpec) -> None:
        self._active_degradations.append(fault)
        scale = self._apply_degradations()
        self.platform.monitor.log("fault_network_degraded", factor=fault.factor, scale=scale)

    def _restore_network(self, fault: FaultSpec) -> None:
        # Remove by identity, not equality: two degradation windows with
        # identical fields are distinct scheduled faults, and ``remove``'s
        # ``==`` scan would pop the *first* window when the second expires
        # (restoring capacity early) and then raise when the first ends.
        for i, active in enumerate(self._active_degradations):
            if active is fault:
                del self._active_degradations[i]
                break
        scale = self._apply_degradations()
        self.platform.monitor.log("fault_network_restored", factor=fault.factor, scale=scale)

    def _log_straggler_window(self, fault: FaultSpec) -> None:
        self.platform.monitor.log(
            "fault_straggler_window",
            tenant=fault.tenant or "*",
            factor=fault.factor,
            until=fault.until,
        )

    def _log_transport_window(self, fault: FaultSpec) -> None:
        self.platform.monitor.log(
            f"fault_{fault.kind}",
            tenant=fault.tenant or "*",
            factor=fault.factor,
            until=fault.until,
        )


class ScenarioRunner:
    """Builds the platform for a spec and replays the scenario on it.

    Parameters
    ----------
    spec:
        The declarative scenario.
    batch:
        Optional override of the spec's execution mode (the differential
        tests run the same spec both ways).
    cloud_blocks:
        Optional override of the cloud-tier ingestion granularity (see
        :class:`~repro.core.config.PlatformConfig`); ``None`` follows
        ``batch``.
    tracer:
        Optional :class:`~repro.observability.tracing.Tracer` armed on
        the platform; after :meth:`run`, :meth:`trace` assembles the
        run's span tree.  ``None`` (default) keeps every instrumentation
        point compiled down to a skipped ``if``.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        batch: bool | None = None,
        cloud_blocks: bool | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.spec = spec
        self.batch = spec.batch if batch is None else bool(batch)
        self.cloud_blocks = cloud_blocks
        self.tracer = tracer
        self.platform = self._build_platform()
        self.faults = FaultInjector(self.platform)
        #: tenant name -> [(task_id, submit_time)] ledger for the report.
        self.submissions: dict[str, list[tuple[str, float]]] = {}
        self._tenant_names = {tenant.name for tenant in spec.tenants}
        # The live observability loop: alarms watch the monitor stream,
        # SLAs piggyback as pure-threshold watches, and the autoscaler
        # (when configured) turns alarm transitions into scaling actions.
        self.alarms = AlarmEngine(
            self.platform.monitor, rules=spec.alarms, scope_of=self._tenant_of_task
        )
        attach_live_slas(self.alarms, spec.all_slas())
        self.autoscaler: AutoscalePolicy | None = None
        if spec.autoscale is not None:
            self.autoscaler = AutoscalePolicy(
                spec.autoscale,
                self.platform.monitor,
                self.platform.resource_manager,
                self.platform.task_manager,
            )

    def _tenant_of_task(self, task_id: str) -> str:
        """Map a scenario task id back to its tenant (alarm scoping)."""
        prefix = self.spec.name + "."
        if not task_id.startswith(prefix):
            return ""
        tenant = task_id[len(prefix):].rsplit(".", 1)[0]
        return tenant if tenant in self._tenant_names else ""

    # ------------------------------------------------------------------
    def _build_channel(self) -> ChannelModel | None:
        """The device→cloud channel: transport spec + fault-plan windows.

        ``None`` when the scenario declares no transport behaviour at
        all — the platform then skips the channel layer entirely and
        stays byte-identical to pre-transport runs.  Transport fault
        kinds without an explicit :class:`TransportSpec` imply a default
        (otherwise lossless) channel carrying just those windows.
        """
        spec = self.spec
        windows = [
            ChannelWindow(
                kind=_WINDOW_KIND[fault.kind],
                at=fault.at,
                until=fault.until,
                prob=fault.factor if fault.kind != "service_outage" else 1.0,
                tenant=fault.tenant,
            )
            for fault in spec.faults
            if fault.kind in FaultSpec.TRANSPORT_KINDS
        ]
        if spec.transport is None and not windows:
            return None
        transport = spec.transport or TransportSpec()
        return ChannelModel(
            latency_s=transport.latency_s,
            jitter_s=transport.jitter_s,
            loss_prob=transport.loss_prob,
            dup_prob=transport.dup_prob,
            retry_base_s=transport.retry_base_s,
            retry_cap_s=transport.retry_cap_s,
            max_attempts=transport.max_attempts,
            windows=windows,
        )

    def _build_platform(self) -> SimDC:
        spec = self.spec
        local_fleet = tuple(DEFAULT_LOCAL_FLEET) + tuple(
            build_fleet(spec.extra_high_phones, spec.extra_low_phones, prefix="SCN")
        )
        config = PlatformConfig(
            seed=spec.seed,
            cluster_nodes=[NodeSpec(cpus=20, memory_gb=30)] * spec.cluster_nodes,
            local_fleet=local_fleet,
            deviceflow_capacity=spec.deviceflow_capacity,
            batch=self.batch,
            cloud_blocks=self.cloud_blocks,
            channel=self._build_channel(),
            tracer=self.tracer,
        )
        return SimDC(config)

    def _straggler_factor(self, tenant: str, submit_time: float) -> float:
        """Combined slowdown for a submission (overlapping windows stack)."""
        factor = 1.0
        for fault in self.spec.faults:
            if fault.covers_submission(tenant, submit_time):
                factor *= fault.factor
        return factor

    def _slowed_costs(self, factor: float) -> tuple[LogicalCostModel, PhysicalCostModel]:
        """Cost models with per-device durations scaled by ``factor``."""
        logical = self.platform.config.logical_cost
        physical = self.platform.config.physical_cost
        assert logical is not None and physical is not None
        return (
            replace(logical, alpha={g: a * factor for g, a in logical.alpha.items()}),
            replace(physical, beta={g: b * factor for g, b in physical.beta.items()}),
        )

    # ------------------------------------------------------------------
    def schedule(self) -> int:
        """Arm every submission and fault event; returns the task count.

        Idempotence guard: a runner replays its spec exactly once.
        """
        if self.submissions:
            raise RuntimeError("scenario already scheduled")
        spec = self.spec
        default_deadline = spec.transport.deadline_s if spec.transport is not None else None
        n_tasks = 0
        for tenant in spec.tenants:
            ledger: list[tuple[str, float]] = []
            arrival_rng = self.platform.streams.get(f"scenario.arrival.{tenant.name}")
            times = tenant.arrival.submission_times(arrival_rng)
            for index, submit_time in enumerate(times):
                task = tenant.build_task(spec.name, index, spec.seed, spec.population)
                if task.deadline_s is None and default_deadline is not None:
                    task.deadline_s = default_deadline
                slowdown = self._straggler_factor(tenant.name, submit_time)
                options: dict[str, Any] = {"channel_scope": tenant.name}
                if slowdown > 1.0:
                    logical, physical = self._slowed_costs(slowdown)
                    options["logical_cost"] = logical
                    options["physical_cost"] = physical
                self.platform.submit(task, at=submit_time, **options)
                ledger.append((task.task_id, submit_time))
                n_tasks += 1
            self.submissions[tenant.name] = ledger
        self.faults.arm(spec.faults)
        return n_tasks

    def run(self) -> ScenarioReport:
        """Replay the scenario to idle and distil the report."""
        self.schedule()
        finished_at = self.platform.run_until_idle(
            max_time=self.spec.max_time, batch=self.batch
        )
        # Flush trailing fault events (e.g. a recovery scheduled after the
        # last completion) so the platform ends in its healthy state.
        self.platform.run(batch=self.batch)
        return build_report(
            self.spec,
            self.platform,
            self.submissions,
            finished_at,
            batch=self.batch,
            alarms=self.alarms,
            autoscaler=self.autoscaler,
        )

    def trace(self) -> Trace:
        """Assemble the run's span tree (requires a tracer to be armed)."""
        if self.tracer is None:
            raise RuntimeError(
                "no tracer armed: construct the runner with "
                "ScenarioRunner(spec, tracer=Tracer())"
            )
        return assemble_trace(
            self.platform.monitor,
            self.tracer,
            name=self.spec.name,
            tenant_of=self._tenant_of_task,
        )


def run_scenario(
    spec: ScenarioSpec,
    batch: bool | None = None,
    cloud_blocks: bool | None = None,
    tracer: Tracer | None = None,
) -> ScenarioReport:
    """One-call convenience: build, replay, report."""
    return ScenarioRunner(spec, batch=batch, cloud_blocks=cloud_blocks, tracer=tracer).run()
