"""Machine-learning substrate: logistic-regression CTR training + FedAvg.

The paper's workload is click-through-rate prediction with logistic
regression (lr 1e-3, 10 local epochs, FedAvg aggregation).  This package
implements that workload in pure numpy, including the two *numeric
backends* that stand in for the paper's PyMNN (server-side) and C++ MNN
(device-side) operator implementations: identical math with different
floating-point precision and accumulation order, producing the small
(<0.5%) accuracy deviations the paper studies in Fig. 6.
"""

from repro.ml.backends import DEVICE_BACKEND, SERVER_BACKEND, NumericBackend
from repro.ml.client import FLClient
from repro.ml.fedavg import FedAvgAggregator, ModelUpdate, fedavg
from repro.ml.metrics import accuracy, log_loss, roc_auc
from repro.ml.model import LogisticRegressionModel
from repro.ml.operators import (
    DownloadModelOp,
    EvalOp,
    Operator,
    OperatorContext,
    OperatorFlow,
    TrainOp,
    UploadUpdateOp,
    standard_fl_flow,
)
from repro.ml.optimizer import SGD
from repro.ml.server import RoundRecord, SynchronousTrainer

__all__ = [
    "DEVICE_BACKEND",
    "DownloadModelOp",
    "EvalOp",
    "FLClient",
    "FedAvgAggregator",
    "LogisticRegressionModel",
    "ModelUpdate",
    "NumericBackend",
    "Operator",
    "OperatorContext",
    "OperatorFlow",
    "RoundRecord",
    "SERVER_BACKEND",
    "SGD",
    "SynchronousTrainer",
    "TrainOp",
    "UploadUpdateOp",
    "accuracy",
    "fedavg",
    "log_loss",
    "roc_auc",
    "standard_fl_flow",
]
