"""Machine-learning substrate: logistic-regression CTR training + FedAvg.

The paper's workload is click-through-rate prediction with logistic
regression (lr 1e-3, 10 local epochs, FedAvg aggregation).  This package
implements that workload in pure numpy, including the two *numeric
backends* that stand in for the paper's PyMNN (server-side) and C++ MNN
(device-side) operator implementations: identical math with different
floating-point precision and accumulation order, producing the small
(<0.5%) accuracy deviations the paper studies in Fig. 6.
"""

from repro.ml.backends import DEVICE_BACKEND, SERVER_BACKEND, NumericBackend
from repro.ml.client import BlockTrainer, FLClient
from repro.ml.fedavg import FedAvgAggregator, FedAvgPartial, ModelUpdate, fedavg
from repro.ml.metrics import accuracy, block_metrics, log_loss, roc_auc
from repro.ml.model import LogisticRegressionModel
from repro.ml.operators import (
    BlockOperatorContext,
    DownloadModelOp,
    EvalOp,
    Operator,
    OperatorContext,
    OperatorFlow,
    TrainOp,
    UploadUpdateOp,
    standard_fl_flow,
)
from repro.ml.optimizer import SGD
from repro.ml.server import RoundRecord, SynchronousTrainer

__all__ = [
    "BlockOperatorContext",
    "BlockTrainer",
    "DEVICE_BACKEND",
    "DownloadModelOp",
    "EvalOp",
    "FLClient",
    "FedAvgAggregator",
    "FedAvgPartial",
    "LogisticRegressionModel",
    "ModelUpdate",
    "NumericBackend",
    "Operator",
    "OperatorContext",
    "OperatorFlow",
    "RoundRecord",
    "SERVER_BACKEND",
    "SGD",
    "SynchronousTrainer",
    "TrainOp",
    "UploadUpdateOp",
    "accuracy",
    "block_metrics",
    "fedavg",
    "log_loss",
    "roc_auc",
    "standard_fl_flow",
]
