"""FedAvg aggregation (McMahan et al., 2017) as used by the paper.

Besides the flat :func:`fedavg`, this module implements *partial*
aggregation for sharded execution: each worker folds its devices' updates
into a compact :class:`FedAvgPartial` — a ``(weighted_sum, total_samples)``
pair — and the parent merges partials into the new global model.

Partition invariance
--------------------
Floating-point addition is not associative, so naively summing per-shard
sums would make the global weights depend on the shard layout.  The
weighted sum here is therefore accumulated *exactly*: every per-update
product ``n_k * w_k`` is folded into a small error-free expansion of
float64 components (Knuth two-sum, after Shewchuk's adaptive-precision
arithmetic), merging partials concatenates exact values, and the final
per-dimension rounding happens once via ``math.fsum`` (correctly rounded).
Any partition of the same update set — including the trivial one-shard
partition used by the flat :func:`fedavg` — therefore produces
bit-identical global weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np


@dataclass
class ModelUpdate:
    """One device's locally-trained parameters plus aggregation weight.

    Attributes
    ----------
    device_id:
        Producing device.
    round_index:
        Collaboration round the update belongs to.
    weights / bias:
        Locally-trained parameters (full-model FedAvg, as in the paper).
    n_samples:
        Local dataset size; FedAvg weights updates proportionally.  Zero is
        allowed (a device that lost its shard mid-round still reports) and
        contributes nothing to the aggregate.
    metadata:
        Free-form extras (grade, tier, timings) carried to the cloud.
    """

    device_id: str
    round_index: int
    weights: np.ndarray
    bias: float
    n_samples: int
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_samples < 0:
            raise ValueError("n_samples must be >= 0")
        self.weights = np.asarray(self.weights, dtype=np.float64)

    def payload_bytes(self) -> int:
        """Wire size of this update (weights + bias + small envelope)."""
        return int(self.weights.nbytes + 8 + 64)

    @staticmethod
    def wire_size(feature_dim: int) -> int:
        """:meth:`payload_bytes` of an update with ``feature_dim`` weights.

        The batched execution tiers size their uploads from the plan's
        dimensionality without materializing update objects; this is the
        single source of truth for the float64-weights + bias + envelope
        wire format.
        """
        return int(feature_dim * 8 + 8 + 64)


def _two_sum(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Knuth's branch-free TwoSum: ``a + b`` plus its exact rounding error."""
    s = a + b
    bb = s - a
    err = (a - (s - bb)) + (b - bb)
    return s, err


class _ExactVectorSum:
    """Error-free running sum of float64 vectors.

    The value is represented as a list of float64 component vectors whose
    per-dimension mathematical sum is *exactly* the sum of everything added
    so far — each :meth:`add` threads the new vector through the existing
    components with TwoSum, which never loses a bit.  Because the value is
    exact, it is independent of insertion order and of how the summands
    were grouped, which is what makes sharded FedAvg partition-invariant.
    """

    __slots__ = ("components",)

    #: Distill the expansion once it grows past this many components.
    _MAX_COMPONENTS = 32

    def __init__(self, components: list[np.ndarray] | None = None) -> None:
        self.components: list[np.ndarray] = list(components or [])

    def add(self, vector: np.ndarray) -> None:
        """Fold one float64 vector into the exact sum."""
        carry = vector
        survivors: list[np.ndarray] = []
        for component in self.components:
            carry, err = _two_sum(carry, component)
            if np.any(err):
                survivors.append(err)
        survivors.append(carry)
        self.components = survivors
        if len(self.components) > self._MAX_COMPONENTS:
            self._distill()

    def add_rows(self, rows: np.ndarray) -> None:
        """Fold every row of an ``(n, dim)`` array into the exact sum.

        Equivalent to ``for row in rows: self.add(row)`` but runs the
        accumulation across 64 independent lanes (row ``i`` goes to lane
        ``i % 64``), so the per-row Python loop collapses into
        ``n / 64`` vectorized TwoSum sweeps.  Lane sums are then folded
        into the scalar expansion one by one — every step is an exact
        TwoSum, so the represented value (the only thing rounding ever
        sees) is independent of the lane layout.
        """
        rows = np.asarray(rows, dtype=np.float64)
        n_rows = len(rows)
        lanes = 64
        if n_rows < 2 * lanes:
            for row in rows:
                self.add(row)
            return
        steps = -(-n_rows // lanes)
        padded = np.zeros((steps * lanes, rows.shape[1]), dtype=np.float64)
        padded[:n_rows] = rows
        stacked = padded.reshape(steps, lanes, rows.shape[1])

        def fold(batch: np.ndarray, components: list[np.ndarray]) -> list[np.ndarray]:
            carry = batch
            survivors = []
            for component in components:
                carry, err = _two_sum(carry, component)
                if np.any(err):
                    survivors.append(err)
            survivors.append(carry)
            return survivors

        lane_components: list[np.ndarray] = []
        for step in range(steps):
            lane_components = fold(stacked[step], lane_components)
            # With dense random signs every TwoSum leaves a nonzero error
            # somewhere in the (lanes, dim) batch, so without compression
            # the expansion grows by one component per step (quadratic
            # TwoSums overall).  Re-folding it into itself preserves the
            # represented value exactly and collapses it back to a few
            # near-nonoverlapping components.
            if len(lane_components) > 8:
                refolded: list[np.ndarray] = []
                for component in lane_components:
                    refolded = fold(component, refolded)
                lane_components = refolded
        for component in lane_components:
            for lane_row in component:
                self.add(lane_row)

    def _distill(self) -> None:
        """Re-fold the components into themselves (value-preserving)."""
        components, self.components = self.components, []
        for component in components:
            self.add(component)

    def merge(self, other: _ExactVectorSum) -> None:
        """Fold another exact sum in (still exact)."""
        for component in other.components:
            self.add(component)

    def round_to_float64(self, dim: int) -> np.ndarray:
        """The correctly-rounded float64 value of the exact sum."""
        if not self.components:
            return np.zeros(dim, dtype=np.float64)
        stacked = np.stack(self.components)
        return np.array(
            [math.fsum(stacked[:, i]) for i in range(stacked.shape[1])],
            dtype=np.float64,
        )


@dataclass
class FedAvgPartial:
    """Per-shard fold of a set of updates: exact weighted sum + counters.

    ``components`` is an ``(m, dim + 1)`` float64 array — the error-free
    expansion of ``sum_k n_k * [w_k | b_k]`` (bias in the last column).
    ``dim`` is ``-1`` for an empty partial (no updates seen yet), so empty
    shards merge cleanly with any weight shape.
    """

    components: np.ndarray
    total_samples: int
    n_updates: int
    dim: int

    @classmethod
    def empty(cls) -> FedAvgPartial:
        """The identity element of :meth:`merge`."""
        return cls(components=np.zeros((0, 0)), total_samples=0, n_updates=0, dim=-1)

    @classmethod
    def from_updates(cls, updates: Iterable[ModelUpdate]) -> FedAvgPartial:
        """Fold an update iterable; shape-checks like flat :func:`fedavg`."""
        updates = list(updates)
        if not updates:
            return cls.empty()
        dims = {update.weights.shape for update in updates}
        if len(dims) != 1:
            raise ValueError(f"updates disagree on weight shape: {dims}")
        shape = dims.pop()
        if len(shape) != 1:
            raise ValueError(f"update weights must be 1-D, got shape {shape}")
        (dim,) = shape
        stacked = np.empty((len(updates), dim + 1), dtype=np.float64)
        samples = np.empty(len(updates), dtype=np.float64)
        for row, update in enumerate(updates):
            stacked[row, :dim] = update.weights
            stacked[row, dim] = update.bias
            samples[row] = float(update.n_samples)
        return cls._from_stacked(
            stacked, samples, int(sum(u.n_samples for u in updates)), len(updates)
        )

    @classmethod
    def from_arrays(
        cls, weights: np.ndarray, biases: np.ndarray, n_samples: np.ndarray
    ) -> FedAvgPartial:
        """Fold columnar updates: ``weights (k, dim)``, ``biases (k,)``, ``n_samples (k,)``.

        Produces the same partial as :meth:`from_updates` over the
        row-by-row :class:`ModelUpdate` equivalents.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("weights must be 2-D (updates x dim)")
        if len(weights) == 0:
            return cls.empty()
        if np.any(np.asarray(n_samples) < 0):
            raise ValueError("n_samples must be >= 0")
        stacked = np.column_stack([weights, np.asarray(biases, dtype=np.float64)])
        samples = np.asarray(n_samples, dtype=np.float64)
        return cls._from_stacked(stacked, samples, int(np.sum(n_samples)), len(weights))

    @classmethod
    def _from_stacked(
        cls, stacked: np.ndarray, samples: np.ndarray, total: int, count: int
    ) -> FedAvgPartial:
        # The per-update product rounds once (elementwise, so identical for
        # any grouping of updates into partials); the running sum is exact.
        products = stacked * samples[:, None]
        accumulator = _ExactVectorSum()
        accumulator.add_rows(products)
        components = (
            np.stack(accumulator.components)
            if accumulator.components
            else np.zeros((0, stacked.shape[1]))
        )
        return cls(
            components=components,
            total_samples=total,
            n_updates=count,
            dim=stacked.shape[1] - 1,
        )

    @staticmethod
    def merge(partials: Sequence["FedAvgPartial"]) -> FedAvgPartial:
        """Fold shard partials into one (exact, hence order-independent)."""
        filled = [p for p in partials if p.dim >= 0]
        if not filled:
            return FedAvgPartial.empty()
        dims = {p.dim for p in filled}
        if len(dims) != 1:
            raise ValueError(f"partials disagree on weight dimension: {dims}")
        accumulator = _ExactVectorSum()
        for partial in filled:
            accumulator.merge(_ExactVectorSum(list(partial.components)))
        components = (
            np.stack(accumulator.components)
            if accumulator.components
            else np.zeros((0, filled[0].dim + 1))
        )
        return FedAvgPartial(
            components=components,
            total_samples=sum(p.total_samples for p in filled),
            n_updates=sum(p.n_updates for p in filled),
            dim=filled[0].dim,
        )

    def finalize(self) -> tuple[np.ndarray, float]:
        """Correctly-rounded ``(weights, bias)`` of the weighted average."""
        if self.n_updates == 0:
            raise ValueError("cannot finalize an empty FedAvg partial")
        if self.total_samples <= 0:
            raise ValueError("fedavg requires a positive total sample count")
        summed = _ExactVectorSum(list(self.components)).round_to_float64(self.dim + 1)
        averaged = summed / float(self.total_samples)
        return averaged[:-1], float(averaged[-1])


def fedavg(updates: Iterable[ModelUpdate]) -> tuple[np.ndarray, float]:
    """Sample-weighted average of model updates.

    Implements ``w = sum_k p_k w_k`` with ``p_k`` proportional to each
    client's dataset size, the exact optimisation objective of §II-A.
    Computed through :class:`FedAvgPartial`, so a flat call is bit-identical
    to merging per-shard partials over any partition of ``updates``.
    """
    updates = list(updates)
    if not updates:
        raise ValueError("fedavg requires at least one update")
    return FedAvgPartial.from_updates(updates).finalize()


class FedAvgAggregator:
    """Stateful accumulator used by the cloud aggregation service.

    Updates stream in (possibly shaped by DeviceFlow); :meth:`aggregate`
    folds everything received so far into a new global model and resets
    the buffer for the next round.  Sharded workers call :meth:`partial`
    instead and ship the compact result to the parent, which folds shard
    partials with :meth:`merge`.
    """

    def __init__(self) -> None:
        self._pending: list[ModelUpdate] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_samples(self) -> int:
        """Total training samples represented by buffered updates."""
        return sum(update.n_samples for update in self._pending)

    @property
    def pending_devices(self) -> list[str]:
        """Device ids with a buffered update, in arrival order."""
        return [update.device_id for update in self._pending]

    def add(self, update: ModelUpdate) -> None:
        """Buffer one incoming update."""
        if not isinstance(update, ModelUpdate):
            raise TypeError(f"expected ModelUpdate, got {type(update).__name__}")
        self._pending.append(update)

    def aggregate(self) -> tuple[np.ndarray, float, int]:
        """Fold the buffer; returns ``(weights, bias, n_updates)``.

        Raises ``ValueError`` when nothing is buffered — callers (the
        aggregation triggers) are expected to check :meth:`__len__` first.
        """
        weights, bias = fedavg(self._pending)
        count = len(self._pending)
        self._pending.clear()
        return weights, bias, count

    def partial(self) -> FedAvgPartial:
        """Fold the buffer into a shippable partial and clear it.

        Unlike :meth:`aggregate` this is total: an empty buffer yields the
        empty partial, so shards without numeric devices merge cleanly.
        """
        result = FedAvgPartial.from_updates(self._pending)
        self._pending.clear()
        return result

    @staticmethod
    def merge(partials: Sequence[FedAvgPartial]) -> tuple[np.ndarray, float, int]:
        """Merge shard partials; returns ``(weights, bias, n_updates)``.

        Bit-identical to :meth:`aggregate` over the concatenated update
        set, for *any* partition of the updates into partials.
        """
        merged = FedAvgPartial.merge(partials)
        weights, bias = merged.finalize()
        return weights, bias, merged.n_updates

    def clear(self) -> None:
        """Drop buffered updates without aggregating."""
        self._pending.clear()
