"""FedAvg aggregation (McMahan et al., 2017) as used by the paper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np


@dataclass
class ModelUpdate:
    """One device's locally-trained parameters plus aggregation weight.

    Attributes
    ----------
    device_id:
        Producing device.
    round_index:
        Collaboration round the update belongs to.
    weights / bias:
        Locally-trained parameters (full-model FedAvg, as in the paper).
    n_samples:
        Local dataset size; FedAvg weights updates proportionally.
    metadata:
        Free-form extras (grade, tier, timings) carried to the cloud.
    """

    device_id: str
    round_index: int
    weights: np.ndarray
    bias: float
    n_samples: int
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.weights = np.asarray(self.weights, dtype=np.float64)

    def payload_bytes(self) -> int:
        """Wire size of this update (weights + bias + small envelope)."""
        return int(self.weights.nbytes + 8 + 64)


def fedavg(updates: Iterable[ModelUpdate]) -> tuple[np.ndarray, float]:
    """Sample-weighted average of model updates.

    Implements ``w = sum_k p_k w_k`` with ``p_k`` proportional to each
    client's dataset size, the exact optimisation objective of §II-A.
    """
    updates = list(updates)
    if not updates:
        raise ValueError("fedavg requires at least one update")
    dims = {update.weights.shape for update in updates}
    if len(dims) != 1:
        raise ValueError(f"updates disagree on weight shape: {dims}")
    total = float(sum(update.n_samples for update in updates))
    weights = np.zeros_like(updates[0].weights)
    bias = 0.0
    for update in updates:
        proportion = update.n_samples / total
        weights += proportion * update.weights
        bias += proportion * update.bias
    return weights, bias


class FedAvgAggregator:
    """Stateful accumulator used by the cloud aggregation service.

    Updates stream in (possibly shaped by DeviceFlow); :meth:`aggregate`
    folds everything received so far into a new global model and resets
    the buffer for the next round.
    """

    def __init__(self) -> None:
        self._pending: list[ModelUpdate] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_samples(self) -> int:
        """Total training samples represented by buffered updates."""
        return sum(update.n_samples for update in self._pending)

    @property
    def pending_devices(self) -> list[str]:
        """Device ids with a buffered update, in arrival order."""
        return [update.device_id for update in self._pending]

    def add(self, update: ModelUpdate) -> None:
        """Buffer one incoming update."""
        if not isinstance(update, ModelUpdate):
            raise TypeError(f"expected ModelUpdate, got {type(update).__name__}")
        self._pending.append(update)

    def aggregate(self) -> tuple[np.ndarray, float, int]:
        """Fold the buffer; returns ``(weights, bias, n_updates)``.

        Raises ``ValueError`` when nothing is buffered — callers (the
        aggregation triggers) are expected to check :meth:`__len__` first.
        """
        weights, bias = fedavg(self._pending)
        count = len(self._pending)
        self._pending.clear()
        return weights, bias, count

    def clear(self) -> None:
        """Drop buffered updates without aggregating."""
        self._pending.clear()
