"""Logistic-regression CTR model over hashed categorical features."""

from __future__ import annotations

import struct

import numpy as np

from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.metrics import accuracy, log_loss, roc_auc
from repro.ml.optimizer import SGD

#: Serialization header: magic, version, feature dim.
_HEADER = struct.Struct("<4sII")
_MAGIC = b"SDLR"


class LogisticRegressionModel:
    """The paper's benchmark CTR model.

    Parameters are kept as float64 master copies; the forward pass runs in
    the configured :class:`~repro.ml.backends.NumericBackend`, which is how
    the "same operator, different implementation" effect of §VI-B2 enters.

    Parameters
    ----------
    feature_dim:
        Hash-bucket count; must match the dataset encoder.
    backend:
        Numeric backend used for forward passes and training.
    """

    def __init__(self, feature_dim: int, backend: NumericBackend = SERVER_BACKEND) -> None:
        if feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        self.feature_dim = int(feature_dim)
        self.backend = backend
        self.weights = np.zeros(self.feature_dim, dtype=np.float64)
        self.bias = 0.0

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Raw logits for an ``(n, n_fields)`` index batch."""
        return self.backend.gather_scores(self.weights, self.bias, features)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Click probabilities in ``[0, 1]``."""
        return self.backend.sigmoid(self.decision_scores(features)).astype(np.float64)

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        """Accuracy, log-loss and AUC on a labelled batch."""
        probabilities = self.predict_proba(features)
        return {
            "accuracy": accuracy(labels, probabilities),
            "log_loss": log_loss(labels, probabilities),
            "auc": roc_auc(labels, probabilities),
        }

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit_local(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 10,
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        l2: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Train in place with the paper's local-SGD recipe."""
        optimizer = SGD(learning_rate=learning_rate, l2=l2, batch_size=batch_size)
        self.weights, self.bias = optimizer.run_epochs(
            self.weights, self.bias, features, labels, epochs, rng=rng, backend=self.backend
        )

    # ------------------------------------------------------------------
    # parameters and serialization
    # ------------------------------------------------------------------
    def get_params(self) -> tuple[np.ndarray, float]:
        """Copy of ``(weights, bias)``."""
        return self.weights.copy(), self.bias

    def set_params(self, weights: np.ndarray, bias: float) -> None:
        """Install new parameters (validating dimensionality)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.feature_dim,):
            raise ValueError(
                f"weights shape {weights.shape} != ({self.feature_dim},)"
            )
        self.weights = weights.copy()
        self.bias = float(bias)

    def clone(self, backend: NumericBackend | None = None) -> LogisticRegressionModel:
        """A deep copy, optionally re-targeted at another backend."""
        other = LogisticRegressionModel(self.feature_dim, backend or self.backend)
        other.set_params(self.weights, self.bias)
        return other

    def serialize(self) -> bytes:
        """Binary wire format used for storage uploads and message sizing.

        A 4096-dim float64 model serialises to 32 780 bytes — together
        with the message envelope this lands on the ~33 KB per-round
        communication volume Table I reports.
        """
        header = _HEADER.pack(_MAGIC, 1, self.feature_dim)
        return header + self.weights.tobytes() + struct.pack("<d", self.bias)

    @classmethod
    def deserialize(
        cls, payload: bytes, backend: NumericBackend = SERVER_BACKEND
    ) -> LogisticRegressionModel:
        """Inverse of :meth:`serialize`."""
        magic, version, feature_dim = _HEADER.unpack_from(payload)
        if magic != _MAGIC:
            raise ValueError("not a serialized LogisticRegressionModel")
        if version != 1:
            raise ValueError(f"unsupported model version {version}")
        offset = _HEADER.size
        weights = np.frombuffer(
            payload, dtype=np.float64, count=feature_dim, offset=offset
        ).copy()
        (bias,) = struct.unpack_from("<d", payload, offset + feature_dim * 8)
        model = cls(feature_dim, backend)
        model.set_params(weights, bias)
        return model

    def payload_size(self) -> int:
        """Size in bytes of the serialized model."""
        return _HEADER.size + self.feature_dim * 8 + 8
