"""Federated-learning clients: local training on device shards.

:class:`FLClient` runs one device's local loop; :class:`BlockTrainer`
runs a whole block of devices (one logical-tier wave) through the same
loop as stacked NumPy matrices, bit-identical per device.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.avazu import DeviceDataset
from repro.ml.backends import SERVER_BACKEND, NumericBackend
from repro.ml.fedavg import ModelUpdate
from repro.ml.model import LogisticRegressionModel
from repro.ml.optimizer import SGD


class FLClient:
    """Runs the paper's local-training loop for one device.

    Parameters
    ----------
    dataset:
        The device's local shard (never leaves the client, per FL).
    feature_dim:
        Model dimensionality, must match the shard's encoder.
    backend:
        Numeric backend — ``SERVER_BACKEND`` when this client is emulated
        by the logical simulation, ``DEVICE_BACKEND`` when it represents a
        physical phone.
    epochs / learning_rate / batch_size:
        Local-SGD recipe (paper defaults: 10 epochs, lr 1e-3).
    rng:
        Shuffling source; pass a seeded generator for reproducibility.
    """

    def __init__(
        self,
        dataset: DeviceDataset,
        feature_dim: int,
        backend: NumericBackend = SERVER_BACKEND,
        epochs: int = 10,
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
    ) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.dataset = dataset
        self.feature_dim = int(feature_dim)
        self.backend = backend
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.rng = rng

    @property
    def device_id(self) -> str:
        """Identifier of the device this client runs on."""
        return self.dataset.device_id

    @property
    def n_samples(self) -> int:
        """Local dataset size (the FedAvg weight)."""
        return self.dataset.n_samples

    def local_train(
        self, global_weights: np.ndarray, global_bias: float, round_index: int
    ) -> ModelUpdate:
        """Refine the global model on local data; return the update."""
        model = LogisticRegressionModel(self.feature_dim, self.backend)
        model.set_params(global_weights, global_bias)
        model.fit_local(
            self.dataset.features,
            self.dataset.labels,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            rng=self.rng,
        )
        weights, bias = model.get_params()
        return ModelUpdate(
            device_id=self.device_id,
            round_index=round_index,
            weights=weights,
            bias=bias,
            n_samples=self.n_samples,
            metadata={"backend": self.backend.name},
        )

    def evaluate(self, weights: np.ndarray, bias: float) -> dict[str, float]:
        """Local-shard metrics for a given global model."""
        model = LogisticRegressionModel(self.feature_dim, self.backend)
        model.set_params(weights, bias)
        return model.evaluate(self.dataset.features, self.dataset.labels)


class BlockTrainer:
    """Vectorized local-SGD over a block of devices (one wave of actors).

    Devices are grouped by shard size so each group trains as one stacked
    ``(n_devices, dim)`` weight matrix through
    :meth:`~repro.ml.optimizer.SGD.run_epochs_block`; results land back in
    block order.  Per device the math is bit-identical to
    :meth:`FLClient.local_train` with the same generator — the vectorized
    path is a pure execution-strategy change, which is what lets the
    logical tier swap it in under the batched kernel without perturbing
    seeded experiments.
    """

    def __init__(
        self,
        feature_dim: int,
        backend: NumericBackend = SERVER_BACKEND,
        epochs: int = 10,
        learning_rate: float = 1e-3,
        batch_size: int = 32,
    ) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.feature_dim = int(feature_dim)
        self.backend = backend
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)

    def train(
        self,
        weights: np.ndarray,
        biases: np.ndarray,
        datasets: Sequence[DeviceDataset],
        rngs: Sequence[Optional[np.random.Generator]] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Refine per-device parameters in place of the per-device loop.

        ``weights`` is ``(n_devices, feature_dim)`` and ``biases``
        ``(n_devices,)`` — usually the broadcast global model.  Returns the
        updated ``(weights, biases)`` pair in the same device order.
        """
        weights = np.array(weights, dtype=np.float64, copy=True)
        biases = np.array(biases, dtype=np.float64, copy=True)
        if len(datasets) != len(weights):
            raise ValueError("datasets and weights must align")
        optimizer = SGD(learning_rate=self.learning_rate, batch_size=self.batch_size)
        groups: dict[int, list[int]] = {}
        for position, dataset in enumerate(datasets):
            groups.setdefault(dataset.n_samples, []).append(position)
        for positions in groups.values():
            stacked_features = np.stack([datasets[i].features for i in positions])
            stacked_labels = np.stack([datasets[i].labels for i in positions])
            group_rngs = None if rngs is None else [rngs[i] for i in positions]
            trained_weights, trained_biases = optimizer.run_epochs_block(
                weights[positions],
                biases[positions],
                stacked_features,
                stacked_labels,
                self.epochs,
                rngs=group_rngs,
                backend=self.backend,
            )
            weights[positions] = trained_weights
            biases[positions] = trained_biases
        return weights, biases

    def train_from_global(
        self,
        global_weights: np.ndarray,
        global_bias: float,
        datasets: Sequence[DeviceDataset],
        rngs: Sequence[Optional[np.random.Generator]] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Broadcast one global model over the block, then :meth:`train`."""
        global_weights = np.asarray(global_weights, dtype=np.float64)
        if global_weights.shape != (self.feature_dim,):
            raise ValueError(
                f"weights shape {global_weights.shape} != ({self.feature_dim},)"
            )
        stacked = np.tile(global_weights, (len(datasets), 1))
        biases = np.full(len(datasets), float(global_bias), dtype=np.float64)
        return self.train(stacked, biases, datasets, rngs)
